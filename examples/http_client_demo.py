"""Real traffic over a socket: the HTTP front-end vs the embedded client.

Starts the stdlib HTTP/JSON front-end (``repro.api.http``, the machinery
behind ``python -m repro serve``) on an ephemeral port, drives it with
the stdlib :class:`repro.api.HttpClient` — queries at different
consistency levels, a conditional ingest, a scheduled (read-coalesced)
request sequence, stats — and verifies the protocol's core promise: an
answer served over HTTP is **bit-identical** to the embedded client's
for the same snapshot version.

Run:  PYTHONPATH=src python examples/http_client_demo.py
Docs: docs/api.md
"""

from __future__ import annotations

import threading

from repro import ConflictError, DynamicDiGraph, PPRService, ServeConfig
from repro.api import HttpClient, make_server
from repro.graph.generators import erdos_renyi_graph
from repro.utils.rng import ensure_rng


def main() -> None:
    # A small random social graph, served through the gateway's HTTP seam.
    edges = erdos_renyi_graph(60, 400, rng=ensure_rng(29))
    service = PPRService(
        DynamicDiGraph(map(tuple, edges.tolist())),
        serve=ServeConfig(cache_capacity=16, admission_batch=4, top_k=5),
    )
    server = make_server(service.gateway, port=0)  # port 0: OS picks one
    threading.Thread(target=server.serve_forever, daemon=True).start()
    http = HttpClient(server.url)
    print(f"serving {service} on {server.url}\n")

    health = http.healthz()
    print(f"GET /v1/healthz -> {health['status']},"
          f" n={health['num_vertices']} m={health['num_edges']}")

    # One user's recommendations, fresh; then a conditional write.
    answer = http.query({"source": 0, "k": 3})
    top = ", ".join(f"v{e['vertex']}:{e['estimate']:.4f}" for e in answer["entries"])
    print(f"POST /v1/query  -> top-3 for u0 [{'cold' if answer['cold'] else 'hit'}]:"
          f" {top}")
    acknowledged = http.ingest([[0, 1], [1, 0]], expect_version=0)
    print(f"POST /v1/ingest -> version {acknowledged['previous_version']}"
          f" -> {acknowledged['snapshot_version']}")
    try:
        http.ingest([[2, 3]], expect_version=0)  # the version moved
    except ConflictError as exc:
        print(f"stale expect_version -> CONFLICT: {exc}")

    # Consistency levels: a bounded read may serve the pre-write state.
    stale = http.query({"source": 0, "k": 3,
                        "consistency": {"level": "bounded", "bound": 5}})
    fresh = http.query({"source": 0, "k": 3})
    print(f"bounded(5) read -> version {stale['snapshot_version']},"
          f" fresh read -> version {fresh['snapshot_version']}")

    # A scheduled sequence: reads coalesce between the write barriers.
    burst = [{"source": s, "k": 3, "consistency": "any"} for s in (0, 7, 0, 7, 0)]
    responses = http.query_many(burst + [{"op": "stats"}])
    coalesced = responses[-1]["stats"]["gateway"]["reads_coalesced"]
    print(f"scheduled burst of {len(burst)} reads -> {coalesced} duplicates"
          f" answered by one certify each")

    # The protocol promise: HTTP floats are the embedded client's floats.
    over_http = http.query({"source": 0, "k": 5})
    embedded = service.api.top_k(0, k=5)
    assert over_http["snapshot_version"] == embedded.snapshot_version
    assert [(e["vertex"], e["estimate"]) for e in over_http["entries"]] == [
        (e.vertex, e.estimate) for e in embedded.entries
    ], "HTTP answer diverged from the embedded client"
    print("\nHTTP top-5 is bit-identical to the embedded client's"
          f" at version {embedded.snapshot_version}")

    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
