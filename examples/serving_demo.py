"""Serving top-k PPR queries while the graph keeps changing.

A miniature who-to-follow deployment (the workload of the paper's
Section 6): one :class:`repro.serve.PPRService` owns the dynamic graph
and answers recommendation queries for a mix of users from maintained
state, while a sliding stream of follow/unfollow events is ingested
between query bursts. Traffic flows through the typed gateway API's
embedded :class:`repro.api.Client` (the canonical entry point — the same
protocol ``python -m repro serve`` exposes over HTTP; see docs/api.md).
Demonstrates cold admission, LRU residency, lazy per-query refresh, the
always-fresh hub tier, and the freshness contract (served answers match
a from-scratch recomputation at the same ε).

Run:  PYTHONPATH=src python examples/serving_demo.py
Docs: docs/serving.md
"""

from __future__ import annotations

from repro.bench.serving import topk_matches
from repro.bench.workloads import WorkloadSpec, default_config, prepare_workload
from repro.config import Backend, ServeConfig
from repro.core.certify import certified_top_k
from repro.core.push_parallel import parallel_local_push
from repro.core.state import PPRState
from repro.graph.csr import CSRGraph
from repro.serve import PPRService


def main() -> None:
    prepared = prepare_workload(WorkloadSpec(dataset="youtube"))
    config = default_config(epsilon=1e-5).with_(backend=Backend.NUMPY)
    graph = prepared.initial_graph()
    service = PPRService(
        graph,
        config,
        ServeConfig(cache_capacity=8, admission_batch=4, num_hubs=4, top_k=5),
    )
    client = service.api  # the typed gateway's embedded client
    print(f"workload: {prepared.describe()}")
    print(f"service:  {service}\n")

    # A small user mix: the workload source plus a few of the hub vertices'
    # neighbors — admitted cold on first query, resident afterwards.
    users = [prepared.source] + service.hubs[:3]
    for user in users:
        answer = client.top_k(user)
        kind = "cold admission" if answer.cold else "cache hit"
        top = ", ".join(f"v{e.vertex}:{e.estimate:.4f}" for e in answer.entries[:3])
        print(f"query u{user:<6d} [{kind:>14s}]  top-3: {top}")

    # Ingest stream batches between query bursts; answers stay ε-fresh.
    window = prepared.new_window()
    for slide in window.slides(3):
        client.ingest(list(slide.updates))
        answer = client.top_k(prepared.source)
        print(
            f"\nslide {slide.step}: ingested {len(slide.updates)} updates"
            f" -> version {answer.snapshot_version},"
            f" query arrived {answer.staleness} updates stale,"
            f" answered fresh"
        )

    # Freshness contract: the served ranking matches a from-scratch
    # vectorized push at the same epsilon on the same graph.
    served = client.top_k(prepared.source)
    fresh = PPRState.initial(prepared.source, graph.capacity)
    parallel_local_push(
        fresh, graph, config, seeds=[prepared.source], csr=CSRGraph.from_digraph(graph)
    )
    reference = certified_top_k(fresh, 5)
    assert topk_matches(list(served.entries), reference, config.epsilon), (
        "served top-k diverged from fresh recomputation"
    )
    print("\nserved top-5 matches a from-scratch recomputation at the same ε")

    print("\n" + service.metrics().describe())


if __name__ == "__main__":
    main()
