"""Local community detection by PPR sweep cut, kept fresh on a dynamic graph.

The PageRank-Nibble family (Andersen-Chung-Lang; reference [6] of the
paper) finds the community of a seed vertex by sorting vertices by their
degree-normalized PPR score and sweeping for the minimum-conductance
prefix. On an *undirected* graph the reverse-PPR vector the library
maintains serves directly: ``pi_v(s) / deg(v)`` is the classic sweep
ordering.

This example maintains the vector under edge updates and shows the
detected community following the graph: two planted communities, then a
merge as cross edges stream in.

Run:  python examples/local_community.py
"""

from __future__ import annotations

import numpy as np

from repro import DynamicDiGraph, DynamicPPRTracker, PPRConfig
from repro.graph.update import EdgeOp, EdgeUpdate


def planted_partition(rng: np.random.Generator, sizes=(12, 12), p_in=0.5, p_out=0.02):
    """Two dense blocks with sparse cross edges (undirected)."""
    pairs = []
    offsets = np.cumsum([0, *sizes])
    n = offsets[-1]
    for i in range(n):
        for j in range(i + 1, n):
            same = any(
                offsets[k] <= i < offsets[k + 1] and offsets[k] <= j < offsets[k + 1]
                for k in range(len(sizes))
            )
            if rng.random() < (p_in if same else p_out):
                pairs.append((i, j))
    return pairs, offsets


def undirected_updates(pairs, op=EdgeOp.INSERT):
    out = []
    for u, v in pairs:
        out.append(EdgeUpdate(u, v, op))
        out.append(EdgeUpdate(v, u, op))
    return out


def sweep_cut(graph: DynamicDiGraph, scores: np.ndarray) -> tuple[set[int], float]:
    """Minimum-conductance prefix of the degree-normalized score ordering."""
    degrees = graph.out_degree_array(len(scores)).astype(float)
    order = np.argsort(-np.divide(scores, np.maximum(degrees, 1.0)))
    order = [int(v) for v in order if scores[v] > 0]
    total_volume = float(degrees.sum())
    best, best_phi = set(), 1.0
    prefix: set[int] = set()
    volume = 0.0
    boundary = 0.0
    for v in order:
        prefix.add(v)
        volume += degrees[v]
        for u, mult in graph.out_neighbors(v):
            boundary += -mult if u in prefix else mult
        denom = min(volume, total_volume - volume)
        if denom <= 0:
            break
        phi = boundary / denom
        if phi < best_phi:
            best_phi = phi
            best = set(prefix)
    return best, best_phi


def show(name: str, community: set[int], phi: float, offsets) -> None:
    a = sorted(v for v in community if v < offsets[1])
    b = sorted(v for v in community if v >= offsets[1])
    print(f"{name}: conductance {phi:.3f}")
    print(f"  members in block A: {a}")
    print(f"  members in block B: {b}")


def main() -> None:
    rng = np.random.default_rng(11)
    pairs, offsets = planted_partition(rng)
    graph = DynamicDiGraph()
    graph.apply_batch(undirected_updates(pairs))

    seed = 0
    tracker = DynamicPPRTracker(
        graph, source=seed, config=PPRConfig(alpha=0.1, epsilon=1e-9)
    )
    community, phi = sweep_cut(graph, tracker.estimate_vector())
    show(f"community of vertex {seed} (planted partition)", community, phi, offsets)
    assert max(community) < offsets[1], "community should stay within block A"

    # Stream in a merge: many cross-community edges arrive.
    cross = [(int(rng.integers(0, 12)), int(rng.integers(12, 24))) for _ in range(40)]
    cross = list({(u, v) for u, v in cross})
    tracker.apply_batch(undirected_updates(cross))
    merged, phi = sweep_cut(graph, tracker.estimate_vector())
    show("after 40 cross edges stream in (blocks merge)", merged, phi, offsets)
    assert any(v >= offsets[1] for v in merged), "merged community spans both blocks"


if __name__ == "__main__":
    main()
