"""Quickstart: maintain a Personalized PageRank vector on a changing graph.

Demonstrates the core loop of the library:

1. build a graph and a :class:`DynamicPPRTracker` for a source vertex;
2. feed it batches of edge insertions/deletions;
3. query up-to-date PPR estimates after every batch — each one is
   guaranteed within ``epsilon`` of the exact value.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DynamicDiGraph,
    DynamicPPRTracker,
    PPRConfig,
    deletions,
    ground_truth_ppr,
    insertions,
)
from repro.graph.generators import rmat_graph


def main() -> None:
    # A small scale-free graph to start from.
    edges = rmat_graph(200, 1000, rng=7)
    graph = DynamicDiGraph(map(tuple, edges.tolist()))
    source = int(edges[0, 0])

    config = PPRConfig(alpha=0.15, epsilon=1e-6)
    tracker = DynamicPPRTracker(graph, source=source, config=config)
    print(f"tracking PPR to source {source} on {tracker.graph!r}")
    print(f"initial push: {tracker.initial_stats.push.pushes} push operations")

    # Stream a few update batches: the estimates stay epsilon-accurate.
    rng = np.random.default_rng(1)
    for step in range(3):
        inserts = [
            (int(rng.integers(0, 200)), int(rng.integers(0, 200))) for _ in range(20)
        ]
        inserts = [(u, v) for u, v in inserts if u != v]
        victims = [
            (u, v)
            for u, v, _ in list(tracker.graph.unique_edges())[:5]
        ]
        batch = insertions(inserts) + deletions(victims)
        stats = tracker.apply_batch(batch)
        truth = ground_truth_ppr(tracker.graph, source, config.alpha)
        error = float(np.abs(tracker.estimate_vector() - truth).max())
        print(
            f"batch {step + 1}: {len(batch):3d} updates, "
            f"{stats.push.pushes:5d} pushes over {stats.push.num_iterations:3d}"
            f" iterations, max error {error:.2e} (eps = {config.epsilon:g})"
        )
        assert error <= config.epsilon

    print("\ntop-5 vertices by PPR w.r.t. the source:")
    for vertex, value in tracker.top_k(5):
        print(f"  vertex {vertex:4d}: {value:.6f}")


if __name__ == "__main__":
    main()
