"""Streaming throughput on a paper-dataset analog (a miniature Figure 5).

Replays sliding-window slides of the Youtube analog through the
sequential baseline (CPU-Seq) and the parallel local update (CPU-MT and
GPU cost models), reporting simulated edges/second for each — the
experiment behind the paper's headline speedups.

Run:  python examples/streaming_throughput.py
"""

from __future__ import annotations

from repro.bench import Approach, WorkloadSpec, prepare_workload, run_approach
from repro.bench.workloads import default_config
from repro.utils.tables import format_table


def main() -> None:
    spec = WorkloadSpec(dataset="youtube", batch_fraction=0.01)
    prepared = prepare_workload(spec)
    print(f"workload: {prepared.describe()}\n")

    rows = []
    for approach in (Approach.CPU_BASE, Approach.CPU_SEQ, Approach.LIGRA,
                     Approach.CPU_MT, Approach.GPU):
        result = run_approach(prepared, approach, default_config(), num_slides=3)
        rows.append(
            [
                approach.value,
                f"{result.throughput:,.0f}",
                f"{result.mean_latency * 1e3:.3f}",
                f"{result.wall_time:.2f}",
            ]
        )
    print(
        format_table(
            ["approach", "throughput (edges/s, simulated)", "latency (ms/slide)", "python wall (s)"],
            rows,
            title="Streaming throughput, youtube analog",
        )
    )
    print(
        "\nThe parallel local update sustains an order of magnitude more"
        "\nstream edges per second than the sequential baseline — the"
        "\npaper's Figure 5 in miniature."
    )


if __name__ == "__main__":
    main()
