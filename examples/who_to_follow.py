"""Audience discovery on a live social graph ("who will find this account?").

The library maintains the *contribution* PPR vector to a target account s:
``pi_v(s)`` is the probability that a random browse starting from user v
ends at s. Users with high ``pi_v(s)`` are the ones most likely to
discover s — the reverse-PPR signal behind follower recommendation
systems (cf. Twitter's WTF), here kept fresh under a stream of
follow/unfollow events.

Run:  python examples/who_to_follow.py
"""

from __future__ import annotations

import numpy as np

from repro import DynamicPPRTracker, EdgeOp, LabeledDiGraph, PPRConfig

CELEBRITY = "star_coder"

#: Two loose communities plus the target account.
FOLLOWS = [
    # community A follows each other and the celebrity
    ("alice", "bob"), ("bob", "alice"), ("alice", "carol"), ("carol", "alice"),
    ("bob", "carol"), ("carol", "bob"), ("alice", CELEBRITY), ("bob", CELEBRITY),
    # community B is initially separate
    ("dan", "erin"), ("erin", "dan"), ("erin", "frank"), ("frank", "erin"),
    ("dan", "frank"), ("frank", "dan"),
    # the celebrity follows back one fan
    (CELEBRITY, "alice"),
]


def print_ranking(graph: LabeledDiGraph, tracker: DynamicPPRTracker, note: str) -> None:
    scores = [
        (label, tracker.estimate(graph.id_of(label)))
        for label in graph.labels()
        if label != CELEBRITY
    ]
    scores.sort(key=lambda pair: -pair[1])
    print(f"\n{note}")
    print(f"likelihood of discovering @{CELEBRITY} (reverse PPR):")
    for label, score in scores:
        bar = "#" * int(round(score * 200))
        print(f"  {label:10s} {score:.4f} {bar}")


def main() -> None:
    graph = LabeledDiGraph(FOLLOWS)
    tracker = DynamicPPRTracker(
        graph.graph,
        source=graph.id_of(CELEBRITY),
        config=PPRConfig(alpha=0.15, epsilon=1e-8),
    )
    print_ranking(graph, tracker, "initial graph (community B is isolated)")
    assert tracker.estimate(graph.id_of("dan")) == 0.0

    # A bridge forms: erin follows carol, then dan follows the celebrity.
    tracker.apply_batch([graph.update_for("erin", "carol", EdgeOp.INSERT)])
    print_ranking(graph, tracker, "after erin -> carol (a bridge to community B)")
    assert tracker.estimate(graph.id_of("erin")) > 0.0

    tracker.apply_batch([graph.update_for("dan", CELEBRITY, EdgeOp.INSERT)])
    print_ranking(graph, tracker, f"after dan -> {CELEBRITY} (a direct follow)")

    # An unfollow: alice drops the celebrity; her discovery odds collapse.
    before = tracker.estimate(graph.id_of("alice"))
    tracker.apply_batch([graph.update_for("alice", CELEBRITY, EdgeOp.DELETE)])
    after = tracker.estimate(graph.id_of("alice"))
    print_ranking(graph, tracker, f"after alice unfollows (was {before:.4f}, now {after:.4f})")
    assert after < before


if __name__ == "__main__":
    main()
