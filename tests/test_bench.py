"""Tests for the benchmark harness (workloads, runners, figure drivers).

These use the smallest dataset analog (youtube) with one slide so the
whole file stays fast while still exercising every code path the real
benchmarks use.
"""

from __future__ import annotations

import pytest

from repro import ConfigError
from repro.bench.figures import (
    fig9_resources,
    fig10_scalability,
)
from repro.bench.harness import Approach, run_approach, speedup_table
from repro.bench.workloads import (
    WorkloadSpec,
    default_config,
    prepare_workload,
)
from repro.config import PushVariant


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(dataset="nope")
        with pytest.raises(ConfigError):
            WorkloadSpec(batch_fraction=0.0)
        with pytest.raises(ConfigError):
            WorkloadSpec(source_top_k=0)

    def test_preparation_cached_and_deterministic(self):
        a = prepare_workload(WorkloadSpec(dataset="youtube"))
        b = prepare_workload(WorkloadSpec(dataset="youtube"))
        assert a is b
        assert a.window_size > 0
        assert a.batch_size == max(1, round(a.window_size * 0.01))
        assert a.undirected  # youtube is undirected

    def test_source_is_high_degree(self):
        prepared = prepare_workload(WorkloadSpec(dataset="youtube", source_top_k=10))
        g = prepared.initial_graph()
        degrees = sorted(
            (g.out_degree(v) for v in g.vertices()), reverse=True
        )
        assert g.out_degree(prepared.source) >= degrees[9]

    def test_fresh_replays_identical(self):
        prepared = prepare_workload(WorkloadSpec(dataset="youtube"))
        w1, w2 = prepared.new_window(), prepared.new_window()
        s1, s2 = w1.slide(), w2.slide()
        assert s1.updates == s2.updates

    def test_updates_per_slide_counts_directions(self):
        prepared = prepare_workload(WorkloadSpec(dataset="youtube"))
        assert prepared.updates_per_slide == 4 * prepared.batch_size  # undirected


class TestRunApproach:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare_workload(WorkloadSpec(dataset="youtube"))

    def test_all_approaches_run(self, prepared):
        config = default_config()
        results = {}
        for approach in Approach:
            res = run_approach(prepared, approach, config, num_slides=1)
            assert len(res.slide_latencies) == 1
            assert res.stream_edges_consumed == prepared.batch_size
            assert res.throughput > 0
            results[approach] = res
        # Figure 5's headline ordering at a glance.
        assert results[Approach.CPU_MT].throughput > results[Approach.CPU_SEQ].throughput
        assert results[Approach.CPU_SEQ].throughput >= results[Approach.CPU_BASE].throughput
        table = speedup_table(results, Approach.CPU_SEQ)
        assert table[Approach.CPU_SEQ] == pytest.approx(1.0)
        assert table[Approach.CPU_MT] > 1.0

    def test_variant_affects_trace(self, prepared):
        config = default_config()
        opt = run_approach(
            prepared, Approach.CPU_MT, config, num_slides=1, variant=PushVariant.OPT
        )
        vanilla = run_approach(
            prepared, Approach.CPU_MT, config, num_slides=1, variant=PushVariant.VANILLA
        )
        assert vanilla.push_stats.dedup_checks > 0
        assert opt.push_stats.dedup_checks == 0
        assert vanilla.mean_latency > opt.mean_latency

    def test_num_slides_validation(self, prepared):
        with pytest.raises(ConfigError):
            run_approach(prepared, Approach.CPU_SEQ, default_config(), num_slides=0)


class TestFigureDrivers:
    def test_fig9_trends(self):
        result = fig9_resources(fractions=(0.001, 0.01), num_slides=1)
        assert len(result.rows) == 2
        batches = result.column("batch")
        assert batches[0] < batches[1]  # sorted ascending
        wo = result.column("WO")
        l2 = result.column("L2DCM")
        stl = result.column("STL")
        assert wo[1] > wo[0]
        assert l2[1] > l2[0]
        assert stl[1] > stl[0]
        assert "Figure 9" in result.table()

    def test_fig10_scaling_monotone(self):
        result = fig10_scalability(core_counts=(1, 8, 40), num_slides=1)
        throughput = result.column("throughput")
        assert throughput[0] < throughput[1] < throughput[2]
        scaling = result.column("scaling")
        assert scaling[0] == pytest.approx(1.0)
        # Sub-linear at the top end (Amdahl, per the cost model).
        assert scaling[2] < 40.0
