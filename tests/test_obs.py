"""The observability layer (:mod:`repro.obs`).

Contracts under test:

1. **sampling** — the decision happens once at ingress, with a
   deterministic accumulator: exactly ``sample_rate`` of ingresses mint
   a trace, in a reproducible pattern, no RNG;
2. **bounded memory** — finished spans live in a fixed-size ring and the
   slow-query log is a fixed-size ring: a burst of any size costs
   O(capacity), never O(burst);
3. **propagation** — contexts attach to frozen request dataclasses,
   survive pickling (the cluster pipes), and replica-side spans drain
   through the outbox into the coordinator's one queryable trace;
4. **fault tolerance** — a replica SIGKILLed mid-request still yields a
   complete trace: the crash is an event, the respawn a span, and the
   retried execution arrives from the new worker process;
5. **one clock** — spans, ``Timer``, and ``repro.parallel.metrics`` all
   read the same monotonic source, so their numbers are comparable.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time

import pytest

from repro import obs
from repro.api.requests import TopKQuery
from repro.cluster import PPRCluster
from repro.config import ApiConfig, ClusterConfig, ObsConfig, ServeConfig
from repro.errors import ConfigError
from repro.obs import clock
from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    format_tree,
    read_jsonl,
    span_children,
)
from repro.obs.histograms import DEFAULT_BUCKETS, Histogram, HistogramRegistry
from repro.obs.slowlog import SlowQueryLog

from tests.test_cluster import fresh_service


def enable(**changes) -> None:
    obs.configure(ObsConfig(enabled=True, sample_rate=1.0).with_(**changes))


class TestObsConfig:
    def test_defaults_are_disabled_tracing(self):
        config = ObsConfig()
        assert not config.enabled
        assert config.sample_rate == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_rate": -0.1},
            {"sample_rate": 1.5},
            {"ring_capacity": 0},
            {"slowlog_capacity": 0},
            {"slowlog_threshold_ms": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ObsConfig(**kwargs)

    def test_with_returns_modified_copy(self):
        config = ObsConfig(enabled=True, export_path="/tmp/x.jsonl")
        stripped = config.with_(export_path=None)
        assert stripped.enabled and stripped.export_path is None
        assert config.export_path == "/tmp/x.jsonl"


class TestSampling:
    def test_accumulator_samples_exactly_the_configured_fraction(self):
        enable(sample_rate=0.25)
        decisions = [obs.ingress("t").ctx is not None for _ in range(100)]
        assert sum(decisions) == 25
        # Deterministic: every 4th ingress, reproducibly — no RNG.
        assert decisions == [(i % 4) == 3 for i in range(100)]

    def test_rate_zero_never_samples_rate_one_always_does(self):
        enable(sample_rate=0.0)
        assert all(obs.ingress("t").ctx is None for _ in range(50))
        enable(sample_rate=1.0)
        assert all(obs.ingress("t").ctx is not None for _ in range(50))

    def test_disabled_tracer_is_inert(self):
        obs.reset()
        ing = obs.ingress("http.request")
        assert ing.ctx is None and ing.trace_id is None
        with ing:
            assert obs.span("x") is obs.NOOP_SPAN
            obs.event("nothing")  # swallowed
        obs.record_span("x", start=0.0, duration=1.0)
        snap = obs.snapshot()["tracing"]
        assert snap["traces_started"] == 0
        assert snap["spans_finished"] == 0

    def test_unsampled_request_attaches_no_context(self):
        obs.reset()
        request = TopKQuery(source=0, k=3)
        obs.attach(request, None)
        assert obs.trace_of(request) is None
        assert obs.TRACE_ATTR not in request.__dict__


class TestSpans:
    def test_parent_child_linkage_and_attrs(self):
        enable()
        with obs.ingress("root", route="/v1/query") as ing:
            with obs.span("child") as child:
                child.set(k=5)
                with obs.span("grand"):
                    pass
        spans = obs.trace(ing.trace_id)
        by_name = {span["name"]: span for span in spans}
        assert set(by_name) == {"root", "child", "grand"}
        assert by_name["root"]["parent_id"] is None
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["grand"]["parent_id"] == by_name["child"]["span_id"]
        assert by_name["root"]["attrs"] == {"route": "/v1/query"}
        assert by_name["child"]["attrs"] == {"k": 5}
        assert len({span["span_id"] for span in spans}) == 3
        # Ids embed the pid, so worker spans can never collide.
        assert all(
            span["span_id"].startswith(f"{os.getpid():x}-") for span in spans
        )

    def test_exceptions_mark_the_span_and_propagate(self):
        enable()
        with pytest.raises(ValueError):
            with obs.ingress("boom") as ing:
                raise ValueError("nope")
        (span,) = obs.trace(ing.trace_id)
        assert span["attrs"]["error"] == "ValueError"
        assert span["duration"] >= 0.0

    def test_activate_adopts_a_shipped_context(self):
        enable()
        ctx = obs.TraceContext(trace_id="t" * 16, span_id="dead-beef")
        assert obs.current() is None
        with obs.activate(ctx):
            assert obs.current() == ctx
            with obs.span("shipped"):
                pass
        assert obs.current() is None
        (span,) = obs.trace(ctx.trace_id)
        assert span["parent_id"] == ctx.span_id
        # activate(None) must be a harmless no-op (unsampled requests).
        with obs.activate(None):
            assert obs.current() is None

    def test_event_attaches_to_open_span_or_becomes_point_span(self):
        enable()
        with obs.ingress("root") as ing:
            obs.event("replica-crashed", replica=1)
            with obs.activate(obs.current()):  # context without open span
                obs.event("floating", detail="x")
        spans = obs.trace(ing.trace_id)
        by_name = {span["name"]: span for span in spans}
        assert by_name["root"]["events"][0]["name"] == "replica-crashed"
        assert by_name["root"]["events"][0]["replica"] == 1
        assert by_name["floating"]["duration"] == 0.0

    def test_ring_bounds_retained_spans(self):
        enable(ring_capacity=8)
        with obs.ingress("burst") as ing:
            for _ in range(100):
                with obs.span("step"):
                    pass
        snap = obs.snapshot()["tracing"]
        assert snap["ring_depth"] == 8
        assert snap["spans_finished"] == 101  # counted even when dropped
        assert len(obs.trace(ing.trace_id)) == 8

    def test_contexts_pickle_with_their_request(self):
        request = TopKQuery(source=0, k=3)
        ctx = obs.TraceContext(trace_id="abc123", span_id="1-2")
        obs.attach(request, ctx)
        clone = pickle.loads(pickle.dumps(request))
        assert obs.trace_of(clone) == ctx
        # The ride-along attribute never perturbs dataclass equality
        # (read-coalescing dedup compares requests).
        assert clone == TopKQuery(source=0, k=3)

    def test_outbox_drains_for_shipping_and_ingests_remotely(self):
        obs.configure(ObsConfig(enabled=True), outbox=True)
        with obs.ingress("replica.work") as ing:
            with obs.span("inner"):
                pass
        records = obs.drain()
        assert [record["name"] for record in records] == ["inner", "replica.work"]
        assert obs.drain() == []  # popped, not copied
        # The coordinator adopts shipped spans into its own ring.
        enable()
        obs.ingest_spans(records)
        assert {s["name"] for s in obs.trace(ing.trace_id)} == {
            "inner",
            "replica.work",
        }
        assert obs.snapshot()["histograms"]["inner"]["count"] == 1


class TestHistograms:
    def test_buckets_are_cumulative_with_inf_overflow(self):
        histogram = Histogram(bounds=(0.001, 0.01, 0.1))
        for seconds in (0.0005, 0.005, 0.05, 5.0):
            histogram.observe(seconds)
        assert histogram.cumulative() == [1, 2, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.0555)

    def test_observation_on_a_bound_lands_in_that_le_bucket(self):
        histogram = Histogram(bounds=(0.001, 0.01))
        histogram.observe(0.001)
        assert histogram.counts == [1, 0, 0]  # le="0.001" includes 0.001

    def test_registry_creates_stages_on_demand(self):
        registry = HistogramRegistry()
        registry.observe("request.top_k", 0.002)
        registry.observe("queue.wait", 0.0001)
        registry.observe("request.top_k", 0.2)
        snapshot = registry.to_dict()
        assert list(snapshot) == ["queue.wait", "request.top_k"]  # sorted
        assert snapshot["request.top_k"]["count"] == 2
        assert len(DEFAULT_BUCKETS) + 1 == len(snapshot["queue.wait"]["counts"])

    def test_measured_envelope_is_always_on(self):
        # Tracing disabled: the envelope still feeds histogram + slowlog.
        obs.configure(ObsConfig(slowlog_threshold_ms=0.0))
        with obs.measured("request.top_k", trace_id="t1", source=7):
            pass
        assert obs.snapshot()["histograms"]["request.top_k"]["count"] == 1
        entry = obs.slow()[-1]
        assert entry["stage"] == "request.top_k"
        assert entry["trace_id"] == "t1" and entry["source"] == 7
        assert entry["status"] == "OK"

    def test_measured_records_error_status_and_reraises(self):
        obs.configure(ObsConfig(slowlog_threshold_ms=0.0))
        with pytest.raises(ValueError):
            with obs.measured("request.score"):
                raise ValueError("nope")
        assert obs.slow()[-1]["status"] == "ValueError"


class TestSlowQueryLog:
    def test_burst_cannot_grow_the_log_unbounded(self):
        # The regression the ring exists for: the moment the system
        # degrades, *every* request crosses the threshold — the log must
        # stay O(capacity) however large the burst.
        log = SlowQueryLog(capacity=16, threshold_ms=1.0)
        for i in range(10_000):
            log.record(stage="request.top_k", duration_s=0.5, source=i)
        assert len(log) == 16
        assert log.recorded == 10_000
        entries = log.entries()
        assert len(entries) == 16
        assert entries[-1]["source"] == 9_999  # newest retained

    def test_under_threshold_requests_are_ignored(self):
        log = SlowQueryLog(capacity=4, threshold_ms=10.0)
        assert log.record(stage="x", duration_s=0.001) is False
        assert log.record(stage="x", duration_s=0.5) is True
        assert len(log) == 1 and log.recorded == 1

    def test_entries_refilter_by_threshold(self):
        log = SlowQueryLog(capacity=8, threshold_ms=1.0)
        log.record(stage="fast", duration_s=0.002)
        log.record(stage="slow", duration_s=0.2)
        assert [e["stage"] for e in log.entries(threshold_ms=100.0)] == ["slow"]


class TestExport:
    SPANS = [
        {
            "trace_id": "t1", "span_id": "a-1", "parent_id": None,
            "name": "http.request", "start": 1.0, "duration": 0.05,
            "pid": 100, "attrs": {"route": "/v1/query"}, "events": [],
        },
        {
            "trace_id": "t1", "span_id": "a-2", "parent_id": "a-1",
            "name": "engine.query", "start": 1.01, "duration": 0.03,
            "pid": 101, "attrs": {},
            "events": [{"name": "replica-crashed", "at": 1.02}],
        },
    ]

    def test_chrome_trace_document_shape(self):
        document = chrome_trace(self.SPANS)
        assert document["displayTimeUnit"] == "ms"
        first, second = document["traceEvents"]
        assert first["ph"] == "X" and first["cat"] == "repro"
        assert first["ts"] == pytest.approx(1.0e6)  # microseconds
        assert first["dur"] == pytest.approx(0.05e6)
        assert second["pid"] == 101
        assert second["args"]["parent_id"] == "a-1"
        assert second["args"]["events"][0]["name"] == "replica-crashed"
        assert json.loads(json.dumps(document)) == document

    def test_jsonl_sink_roundtrip(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        obs.configure(ObsConfig(enabled=True, export_path=str(sink)))
        with obs.ingress("http.request") as ing:
            with obs.span("engine.query"):
                pass
        obs.reset()  # closes the sink
        records = read_jsonl(sink)
        assert {record["name"] for record in records} == {
            "http.request",
            "engine.query",
        }
        assert all(record["trace_id"] == ing.trace_id for record in records)
        out = tmp_path / "trace.json"
        assert export_chrome_trace(records, out) == 2
        assert json.loads(out.read_text())["traceEvents"]

    def test_format_tree_indents_children_and_marks_events(self):
        lines = format_tree(self.SPANS).splitlines()
        assert lines[0].startswith("http.request")
        assert lines[1].startswith("  engine.query")
        assert "!replica-crashed" in lines[1]

    def test_span_children_groups_roots_under_none(self):
        grouped = span_children(self.SPANS)
        assert [s["span_id"] for s in grouped[None]] == ["a-1"]
        assert [s["span_id"] for s in grouped["a-1"]] == ["a-2"]


class TestOneClock:
    def test_single_monotonic_source(self):
        # Satellite of the ISSUE: bench and serve timings must come off
        # the same clock so they are directly comparable.
        from repro.parallel import metrics
        from repro.utils.timer import Timer

        assert clock.now is time.perf_counter
        assert metrics.now is clock.now
        timer = Timer()
        with timer:
            pass
        assert timer.elapsed >= 0.0

    def test_span_timestamps_come_from_the_shared_clock(self):
        enable()
        before = clock.now()
        with obs.ingress("t") as ing:
            pass
        after = clock.now()
        (span,) = obs.trace(ing.trace_id)
        assert before <= span["start"] <= after


class TestClusterTracePropagation:
    def test_sigkilled_replica_yields_complete_trace_with_crash_event(self):
        config = ApiConfig(
            obs=ObsConfig(enabled=True, sample_rate=1.0, slowlog_threshold_ms=0.0)
        )
        with PPRCluster(
            fresh_service(), ClusterConfig(replicas=2), config
        ) as cluster:
            client = cluster.api
            assert client.top_k(0, k=3).ok  # warm both the path and replica 0

            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGKILL)
            answer = client.top_k(0, k=3)  # detects the corpse mid-request
            assert answer.ok
            assert cluster.gateway.counters["respawns"] == 1

            entry = obs.slow()[-1]
            assert entry["trace_id"] is not None
            spans = obs.trace(entry["trace_id"])
            names = {span["name"] for span in spans}
            # The respawn is a span on the primary's trace...
            assert "cluster.respawn" in names
            # ...the crash itself an event (or point span) inside it.
            markers = [
                event
                for span in spans
                for event in span["events"]
                if event["name"] == "replica-crashed"
            ]
            assert markers or "replica-crashed" in names
            # The retried execution arrives from the *new* worker, so the
            # trace is complete: ingress through replica-side engine work.
            assert {"client.request", "gateway.execute", "engine.query"} <= names
            assert len({span["pid"] for span in spans}) >= 2
            ids = {span["span_id"] for span in spans}
            assert all(
                span["parent_id"] in ids
                for span in spans
                if span["parent_id"] is not None
            )

    def test_replica_spans_fold_into_one_coordinator_trace(self):
        config = ApiConfig(obs=ObsConfig(enabled=True, slowlog_threshold_ms=0.0))
        service = fresh_service(admission_batch=4)
        with PPRCluster(service, ClusterConfig(replicas=2), config) as cluster:
            assert cluster.api.ingest([(2, 3)]).ok
            entry = next(
                e for e in obs.slow() if e["stage"] == "cluster.ingest"
            )
            # APPLIED frames (carrying the replica spans) are absorbed
            # pipelined; FRESH reads barrier each replica to head first.
            assert cluster.api.top_k(0, k=3).ok
            assert cluster.api.top_k(1, k=3).ok
            assert cluster.gateway.replica_versions() == [1, 1]
            spans = obs.trace(entry["trace_id"])
            names = {span["name"] for span in spans}
            assert "cluster.ship_wal" in names
            assert "replica.apply" in names  # shipped back through the outbox
            # Both replicas applied the delta under the same trace.
            apply_pids = {
                span["pid"] for span in spans if span["name"] == "replica.apply"
            }
            assert len(apply_pids) == 2
