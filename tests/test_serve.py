"""Serving-layer tests: LRU cache, admission pool, PPRService semantics.

Covers the acceptance points of the serving layer: cache eviction order,
snapshot-version consistency under interleaved ingests and queries, and
equivalence of served top-k answers with fresh ``certified_top_k``
computations on the same graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Backend,
    ConfigError,
    DynamicDiGraph,
    PPRConfig,
    PPRService,
    RefreshPolicy,
    ServeConfig,
    insertions,
)
from repro.bench.serving import topk_matches
from repro.core.certify import certified_top_k
from repro.core.hub_index import DynamicHubIndex
from repro.core.invariant import check_invariant
from repro.core.state import PPRState
from repro.core.tracker import DynamicPPRTracker, MultiSourceTracker
from repro.graph.csr import CSRGraph
from repro.graph.stream import SlidingWindow
from repro.serve import AdmissionPool, ResidentSource, SourceCache

from tests.conftest import random_graph


def _entry(source: int, capacity: int = 8) -> ResidentSource:
    return ResidentSource(PPRState.initial(source, capacity), version=0, updates_reflected=0)


NUMPY_CONFIG = PPRConfig(epsilon=1e-6, backend=Backend.NUMPY, workers=4)


# ---------------------------------------------------------------------- #
# SourceCache
# ---------------------------------------------------------------------- #


class TestSourceCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigError):
            SourceCache(0)

    def test_evicts_least_recently_used_first(self):
        cache = SourceCache(capacity=3)
        for s in (1, 2, 3):
            assert cache.put(_entry(s)) == []
        assert cache.get(1).source == 1  # 1 becomes MRU; 2 is now LRU
        evicted = cache.put(_entry(4))
        assert [e.source for e in evicted] == [2]
        assert cache.sources() == [3, 1, 4]  # LRU -> MRU

    def test_eviction_order_follows_query_sequence(self):
        cache = SourceCache(capacity=2)
        cache.put(_entry(10))
        cache.put(_entry(20))
        cache.get(10)
        cache.get(20)
        cache.get(10)  # order now: 20 (LRU), 10 (MRU)
        assert [e.source for e in cache.put(_entry(30))] == [20]
        assert [e.source for e in cache.put(_entry(40))] == [10]
        assert cache.evictions == 2

    def test_readmission_replaces_in_place(self):
        cache = SourceCache(capacity=2)
        cache.put(_entry(1))
        cache.put(_entry(2))
        fresh = _entry(1)
        assert cache.put(fresh) == []
        assert cache.peek(1) is fresh
        assert len(cache) == 2

    def test_hit_miss_counters_and_peek_neutrality(self):
        cache = SourceCache(capacity=2)
        cache.put(_entry(1))
        assert cache.get(1) is not None
        assert cache.get(9) is None
        cache.peek(1)  # must not count
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_explicit_evict(self):
        cache = SourceCache(capacity=2)
        cache.put(_entry(1))
        assert cache.evict(1).source == 1
        assert cache.evict(1) is None
        assert cache.evictions == 1


# ---------------------------------------------------------------------- #
# AdmissionPool
# ---------------------------------------------------------------------- #


class TestAdmissionPool:
    def test_request_is_idempotent_while_pending(self):
        pool = AdmissionPool(NUMPY_CONFIG, batch_size=4)
        pool.request(3)
        pool.request(3)
        assert pool.pending == [3]

    def test_admit_batches_share_snapshot_and_converge(self, rng):
        graph = random_graph(rng)
        csr = CSRGraph.from_digraph(graph)
        pool = AdmissionPool(NUMPY_CONFIG, batch_size=2)
        for s in (0, 1, 2):
            pool.request(s)
        first = pool.admit(graph, csr)
        assert sorted(first) == [0, 1]
        assert pool.pending == [2]
        rest = pool.drain(graph, csr)
        assert sorted(rest) == [2]
        assert pool.batches == 2
        for state in {**first, **rest}.values():
            assert state.residual_linf() <= NUMPY_CONFIG.epsilon

    def test_admitted_state_matches_tracker(self, rng):
        graph = random_graph(rng)
        pool = AdmissionPool(NUMPY_CONFIG)
        pool.request(5)
        state = pool.admit(graph.copy(), CSRGraph.from_digraph(graph))[5]
        tracker = DynamicPPRTracker(graph.copy(), 5, NUMPY_CONFIG)
        assert state.allclose(tracker.state, atol=1e-9)


# ---------------------------------------------------------------------- #
# PPRService
# ---------------------------------------------------------------------- #


def _service(graph, **serve_kwargs) -> PPRService:
    return PPRService(graph, NUMPY_CONFIG, ServeConfig(**serve_kwargs))


class TestPPRService:
    def test_cold_then_warm_query(self, rng):
        service = _service(random_graph(rng), cache_capacity=4)
        first = service.query(0, k=3)
        second = service.query(0, k=3)
        assert first.cold and not second.cold
        assert first.vertices == second.vertices
        assert service.is_resident(0)

    def test_lru_eviction_through_query_path(self, rng):
        service = _service(random_graph(rng), cache_capacity=2)
        for s in (0, 1, 2):
            service.query(s)
        assert not service.is_resident(0)
        assert service.resident_sources() == [1, 2]
        assert service.query(0).cold  # readmitted from scratch

    def test_snapshot_version_advances_and_answers_track_it(self, rng):
        graph = random_graph(rng)
        service = _service(graph.copy(), cache_capacity=4)
        assert service.query(0).snapshot_version == 0
        service.ingest(insertions([(0, 5), (5, 9)]))
        service.ingest(insertions([(9, 0)]))
        answer = service.query(0)
        assert service.graph_version == 2
        assert answer.snapshot_version == 2
        assert answer.staleness_updates == 3

    def test_interleaved_updates_and_queries_stay_consistent(self, rng):
        graph = random_graph(rng)
        service = _service(graph, cache_capacity=4)
        sources = [0, 1, 2]
        for step, s in enumerate(sources):
            service.query(s)
            service.ingest(insertions([(s, 10 + step), (10 + step, s)]))
        for s in sources:
            answer = service.query(s)
            assert answer.snapshot_version == service.graph_version
            entry = service.cache.peek(s)
            assert entry.version == service.graph_version
            assert entry.state.residual_linf() <= NUMPY_CONFIG.epsilon
            assert check_invariant(entry.state, graph, NUMPY_CONFIG.alpha, tol=1e-8)

    def test_served_topk_matches_fresh_certified_top_k(self, rng):
        graph = random_graph(rng)
        service = _service(graph.copy(), cache_capacity=4)
        reference_graph = graph.copy()
        service.query(3)
        updates = insertions([(3, 7), (7, 11), (11, 3), (5, 3)])
        service.ingest(updates)
        served = service.query(3, k=5)

        tracker = DynamicPPRTracker(reference_graph, 3, NUMPY_CONFIG)
        tracker.apply_batch(updates)
        fresh = certified_top_k(tracker.state, 5)
        assert topk_matches(served.entries, fresh, NUMPY_CONFIG.epsilon)
        served_est = {e.vertex: e.estimate for e in served.entries}
        for entry in fresh:
            if entry.vertex in served_est:
                assert served_est[entry.vertex] == pytest.approx(
                    entry.estimate, abs=2 * NUMPY_CONFIG.epsilon
                )

    def test_eager_refresh_serves_with_zero_staleness(self, rng):
        graph = random_graph(rng)
        service = PPRService(
            graph,
            NUMPY_CONFIG,
            ServeConfig(cache_capacity=4, refresh=RefreshPolicy.EAGER),
        )
        service.query(0)
        traces = service.ingest(insertions([(0, 4), (4, 8)]))
        assert 0 in traces  # the resident push ran at ingest
        answer = service.query(0)
        assert answer.staleness_updates == 0

    def test_query_many_admits_cold_sources_in_shared_batches(self, rng):
        graph = random_graph(rng)
        service = _service(graph, cache_capacity=8, admission_batch=4)
        answers = service.query_many([0, 1, 2, 3, 4, 0], k=3)
        assert [a.cold for a in answers] == [True] * 5 + [False]
        metrics = service.metrics()
        assert metrics.cold_admissions == 5
        assert metrics.admission_batches == 2  # 4 + 1 with batch size 4
        assert metrics.snapshot_rebuilds == 1  # one shared snapshot overall

    def test_query_for_unknown_vertex_admits_a_new_user(self, rng):
        """A query for an id beyond the graph's capacity must not crash.

        Regression: admission used the cached capacity-sized snapshot,
        so a brand-new user's id indexed out of bounds.
        """
        graph = random_graph(rng)
        service = _service(graph, cache_capacity=4)
        service.query(0)  # populate the snapshot cache at the old capacity
        new_user = graph.capacity + 50
        answer = service.query(new_user)
        assert answer.cold
        assert answer.vertices[0] == new_user  # isolated: only self mass
        # v1 follows the new user: v1 now contributes to (discovers) them.
        service.ingest(insertions([(1, new_user)]))
        followers = service.query(new_user, k=3)
        assert 1 in followers.vertices

    def test_query_many_with_unknown_vertices(self, rng):
        service = _service(random_graph(rng), cache_capacity=8)
        new_users = [200, 201]
        answers = service.query_many(new_users + [0], k=2)
        assert all(a.cold for a in answers)
        assert answers[0].vertices[0] == 200

    def test_pool_rejects_stale_snapshot(self, rng):
        graph = random_graph(rng)
        stale = CSRGraph.from_digraph(graph)
        pool = AdmissionPool(NUMPY_CONFIG)
        pool.request(graph.capacity + 10)  # grows the graph past the snapshot
        with pytest.raises(ConfigError):
            pool.admit(graph, stale)

    def test_prefetched_unknown_vertex_survives_query_many_drain(self, rng):
        """Regression: query_many's drain admits prefetched new-user ids too."""
        service = _service(random_graph(rng), cache_capacity=8)
        service.prefetch(500)  # id beyond the graph's capacity
        answers = service.query_many([0], k=2)
        assert answers[0].cold
        assert service.is_resident(500)

    def test_admission_batch_wider_than_cache_still_answers(self, rng):
        """Regression: the queried source must not be LRU-evicted by its
        own admission batch when admission_batch > cache_capacity."""
        service = _service(random_graph(rng), cache_capacity=2, admission_batch=8)
        for s in (3, 4, 5, 6, 7, 8):
            service.prefetch(s)
        answer = service.query(0)
        assert answer.cold
        assert service.is_resident(0)

    def test_query_many_counts_cold_sources_as_misses(self, rng):
        service = _service(random_graph(rng), cache_capacity=8)
        service.query_many([0, 1, 2], k=2)
        metrics = service.metrics()
        assert metrics.cache_misses == 3
        assert metrics.cache_hits == 0

    def test_pending_seeds_bounded_by_distinct_touched_vertices(self, rng):
        service = _service(random_graph(rng), cache_capacity=4)
        service.query(0)
        for _ in range(5):  # same endpoints touched over and over
            service.ingest(insertions([(1, 2)]))
            service.ingest([])  # empty batches must not grow anything either
        entry = service.cache.peek(0)
        assert entry.pending_seeds == {1}
        service.query(0)
        assert entry.pending_seeds == set()

    def test_prefetch_rides_next_admission_batch(self, rng):
        service = _service(random_graph(rng), cache_capacity=4, admission_batch=4)
        service.prefetch(7)
        assert not service.is_resident(7)
        service.query(1)  # cold query drains the pending batch too
        assert service.is_resident(7)
        assert not service.query(7).cold

    def test_ingest_accepts_window_slide_and_external_snapshot(self, rng):
        edges = rng.integers(0, 30, size=(400, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        window = SlidingWindow(edges, batch_size=10)
        graph = DynamicDiGraph(map(tuple, window.initial_edges.tolist()))
        service = _service(graph, cache_capacity=4)
        service.query(int(edges[0, 0]))
        slide = window.slide()
        service.ingest(slide)
        service.set_snapshot(window.snapshot(capacity=service.graph.capacity))
        rebuilds_before = service.metrics().snapshot_rebuilds
        answer = service.query(int(edges[0, 0]))
        assert answer.snapshot_version == 1
        # the installed snapshot was used; no extra rebuild happened
        assert service.metrics().snapshot_rebuilds == rebuilds_before

    def test_hub_tier_matches_standalone_hub_index(self, rng):
        graph = random_graph(rng)
        reference_graph = graph.copy()
        service = PPRService(
            graph, NUMPY_CONFIG, ServeConfig(cache_capacity=4, num_hubs=3)
        )
        updates = insertions([(0, 9), (9, 4), (4, 0)])
        service.ingest(updates)

        standalone = DynamicHubIndex(
            reference_graph, hubs=service.hubs, config=NUMPY_CONFIG
        )
        standalone.apply_batch(updates)
        for hub in service.hubs:
            for v in range(10):
                assert service.hub_index.contribution(v, hub) == pytest.approx(
                    standalone.contribution(v, hub), abs=2 * NUMPY_CONFIG.epsilon
                )
        assert service.rank_for_hub(service.hubs[0], 3)
        assert service.hub_scores(0)

    def test_hub_accessors_raise_without_hub_tier(self, rng):
        service = _service(random_graph(rng))
        with pytest.raises(ConfigError):
            service.hub_scores(0)
        with pytest.raises(ConfigError):
            service.rank_for_hub(0, 3)

    def test_metrics_sample_buffers_are_bounded(self, rng):
        service = _service(random_graph(rng), cache_capacity=4)
        metrics = service.metrics()
        metrics.MAX_SAMPLES = 10  # shadow the class attribute for the test
        service.query(0)
        for _ in range(30):
            service.query(0)
        assert len(metrics.staleness_samples) <= 10
        assert len(metrics.query_seconds) <= 10
        assert metrics.queries == 31  # lifetime counter is untrimmed

    def test_metrics_staleness_percentiles(self, rng):
        service = _service(random_graph(rng), cache_capacity=4)
        service.query(0)
        service.ingest(insertions([(0, 3)]))
        service.query(0)
        metrics = service.metrics()
        assert metrics.queries == 2
        assert metrics.staleness_percentile(100) >= 1
        assert "staleness" in metrics.describe()


# ---------------------------------------------------------------------- #
# ServeConfig validation
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cache_capacity": 0},
        {"admission_batch": 0},
        {"refresh": "lazy"},
        {"num_hubs": -1},
        {"top_k": 0},
    ],
)
def test_serve_config_rejects_bad_values(kwargs):
    with pytest.raises(ConfigError):
        ServeConfig(**kwargs)


def test_serve_config_with_replaces_fields():
    cfg = ServeConfig().with_(cache_capacity=128, refresh=RefreshPolicy.EAGER)
    assert cfg.cache_capacity == 128
    assert cfg.refresh is RefreshPolicy.EAGER


# ---------------------------------------------------------------------- #
# shared-snapshot hooks grown for the serving layer
# ---------------------------------------------------------------------- #


def test_sliding_window_snapshot_matches_digraph_rebuild(rng):
    edges = rng.integers(0, 25, size=(300, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    window = SlidingWindow(edges, batch_size=8)
    graph = DynamicDiGraph(map(tuple, window.initial_edges.tolist()))
    for _ in range(3):
        for update in window.slide().updates:
            graph.apply(update)
    hook = window.snapshot(capacity=graph.capacity)
    rebuilt = CSRGraph.from_digraph(graph)
    assert hook.num_edges == rebuilt.num_edges
    np.testing.assert_array_equal(hook.dout, rebuilt.dout)
    for v in range(graph.capacity):
        assert sorted(hook.in_neighbors(v)) == sorted(rebuilt.in_neighbors(v))


def test_tracker_apply_batch_accepts_external_snapshot(rng):
    graph = random_graph(rng)
    with_hook = DynamicPPRTracker(graph.copy(), 0, NUMPY_CONFIG)
    without = DynamicPPRTracker(graph.copy(), 0, NUMPY_CONFIG)
    updates = insertions([(0, 6), (6, 12)])
    plain = without.apply_batch(updates)
    snapshot_graph = graph.copy()
    snapshot_graph.apply_batch(updates)
    hooked = with_hook.apply_batch(
        updates, snapshot=CSRGraph.from_digraph(snapshot_graph)
    )
    assert with_hook.state.allclose(without.state, atol=1e-12)
    assert hooked.push.pushes == plain.push.pushes


def test_multi_source_tracker_top_k_and_snapshot(rng):
    graph = random_graph(rng)
    tracker = MultiSourceTracker(graph, [0, 1], NUMPY_CONFIG)
    updates = insertions([(1, 8), (8, 0)])
    snapshot_graph = graph.copy()
    snapshot_graph.apply_batch(updates)
    tracker.apply_batch(updates, snapshot=CSRGraph.from_digraph(snapshot_graph))
    top = tracker.top_k(0, 3)
    assert len(top) == 3
    assert top[0][0] == 0  # the source dominates its own PPR vector
