"""Tests for the shared utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_vertex_id,
)


class TestRng:
    def test_ensure_rng_from_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_ensure_rng_from_seed_deterministic(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_type_error(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]

    def test_spawn_independent(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = [c.random() for c in children]
        assert len(set(draws)) == 4

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestTables:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001234]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len({len(l) for l in lines[3:4]}) == 1

    def test_scientific_for_extremes(self):
        text = format_table(["x"], [[1e-9], [1e9]])
        assert "e-09" in text and "e+09" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert len(t.laps) == 2
        assert t.elapsed >= 0
        assert t.mean == pytest.approx(t.elapsed / 2)
        t.reset()
        assert t.elapsed == 0 and not t.laps


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.0) == 1.0
        with pytest.raises(ConfigError):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ConfigError):
            check_non_negative("x", -1)

    def test_check_fraction(self):
        assert check_fraction("x", 0.5) == 0.5
        with pytest.raises(ConfigError):
            check_fraction("x", 1.0)
        assert check_fraction("x", 1.0, inclusive=True) == 1.0
        with pytest.raises(ConfigError):
            check_fraction("x", 1.1, inclusive=True)

    def test_check_vertex_id(self):
        assert check_vertex_id("v", 3) == 3
        with pytest.raises(ConfigError):
            check_vertex_id("v", -1)
        with pytest.raises(ConfigError):
            check_vertex_id("v", True)
