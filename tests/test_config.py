"""Tests for configuration objects."""

from __future__ import annotations

import pytest

from repro import Backend, ConfigError, PPRConfig, Phase, PushVariant


class TestPPRConfig:
    def test_defaults(self):
        config = PPRConfig()
        assert config.alpha == 0.15
        assert config.variant is PushVariant.OPT
        assert config.backend is Backend.PURE

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1, 1.5])
    def test_bad_alpha(self, alpha):
        with pytest.raises(ConfigError):
            PPRConfig(alpha=alpha)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -1e-6])
    def test_bad_epsilon(self, epsilon):
        with pytest.raises(ConfigError):
            PPRConfig(epsilon=epsilon)

    def test_bad_workers(self):
        with pytest.raises(ConfigError):
            PPRConfig(workers=0)

    def test_bad_enums(self):
        with pytest.raises(ConfigError):
            PPRConfig(variant="opt")  # type: ignore[arg-type]
        with pytest.raises(ConfigError):
            PPRConfig(backend="numpy")  # type: ignore[arg-type]

    def test_with_(self):
        base = PPRConfig()
        changed = base.with_(epsilon=1e-8, workers=4)
        assert changed.epsilon == 1e-8
        assert changed.workers == 4
        assert base.epsilon == PPRConfig().epsilon  # immutable original

    def test_describe(self):
        text = PPRConfig().describe()
        assert "alpha=0.15" in text
        assert "opt" in text

    def test_frozen(self):
        with pytest.raises(Exception):
            PPRConfig().alpha = 0.5  # type: ignore[misc]


class TestPushVariant:
    def test_table3_matrix(self):
        # Table 3 of the paper, verbatim.
        assert PushVariant.OPT.eager and PushVariant.OPT.local_duplicate_detection
        assert PushVariant.EAGER.eager and not PushVariant.EAGER.local_duplicate_detection
        assert (
            not PushVariant.DUPDETECT.eager
            and PushVariant.DUPDETECT.local_duplicate_detection
        )
        assert (
            not PushVariant.VANILLA.eager
            and not PushVariant.VANILLA.local_duplicate_detection
        )


class TestPhase:
    def test_exceeds_threshold_strictness(self):
        # pushCond is strict: r == epsilon does not activate.
        assert not Phase.POS.exceeds(0.1, 0.1)
        assert not Phase.NEG.exceeds(-0.1, 0.1)
