"""Tests for the labeled graph wrapper."""

from __future__ import annotations

import pytest

from repro import EdgeOp, LabeledDiGraph, VertexError


class TestLabeling:
    def test_intern_stable(self):
        g = LabeledDiGraph()
        a = g.intern("alice")
        assert g.intern("alice") == a
        assert g.label_of(a) == "alice"

    def test_edges_by_label(self):
        g = LabeledDiGraph([("a", "b"), ("b", "c")])
        assert g.has_edge("a", "b")
        assert not g.has_edge("c", "a")
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_remove_edge(self):
        g = LabeledDiGraph([("a", "b")])
        upd = g.remove_edge("a", "b")
        assert upd.op is EdgeOp.DELETE
        assert not g.has_edge("a", "b")

    def test_unknown_label_raises(self):
        g = LabeledDiGraph()
        with pytest.raises(VertexError):
            g.id_of("ghost")
        with pytest.raises(VertexError):
            g.label_of(5)

    def test_update_for_does_not_apply(self):
        g = LabeledDiGraph()
        upd = g.update_for("x", "y", EdgeOp.INSERT)
        assert not g.has_edge("x", "y")  # only built, not applied
        g.graph.apply(upd)
        assert g.has_edge("x", "y")

    def test_contains_and_labels(self):
        g = LabeledDiGraph([("a", "b")])
        assert "a" in g and "zz" not in g
        assert list(g.labels()) == ["a", "b"]

    def test_has_edge_unknown_labels(self):
        assert not LabeledDiGraph().has_edge("p", "q")

    def test_integration_with_tracker(self):
        from repro import DynamicPPRTracker, PPRConfig

        g = LabeledDiGraph([("alice", "bob"), ("bob", "carol"), ("carol", "alice")])
        tracker = DynamicPPRTracker(
            g.graph, source=g.id_of("alice"), config=PPRConfig(epsilon=1e-6)
        )
        tracker.apply_batch([g.update_for("dave", "alice", EdgeOp.INSERT)])
        assert tracker.estimate(g.id_of("dave")) > 0
