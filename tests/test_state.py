"""Unit tests for PPRState."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigError, PPRState


class TestConstruction:
    def test_initial_state(self):
        state = PPRState.initial(2, capacity=5)
        assert state.r.tolist() == [0, 0, 1, 0, 0]
        assert state.p.tolist() == [0, 0, 0, 0, 0]

    def test_capacity_covers_source(self):
        state = PPRState(7)
        assert state.capacity >= 8

    def test_negative_source_rejected(self):
        with pytest.raises(ConfigError):
            PPRState(-1)


class TestCapacityGrowth:
    def test_grow_preserves_values(self):
        state = PPRState.initial(0, 4)
        state.p[3] = 0.5
        state.ensure_capacity(100)
        assert state.capacity >= 100
        assert state.p[3] == 0.5
        assert state.r[0] == 1.0
        assert state.p[99] == 0.0

    def test_never_shrinks(self):
        state = PPRState.initial(0, 64)
        state.ensure_capacity(2)
        assert state.capacity == 64

    def test_amortized_doubling(self):
        state = PPRState.initial(0, 16)
        state.ensure_capacity(17)
        assert state.capacity >= 32


class TestQueries:
    def test_out_of_range_reads_are_zero(self):
        state = PPRState.initial(0, 4)
        assert state.estimate(100) == 0.0
        assert state.residual(-5) == 0.0

    def test_norms(self):
        state = PPRState.initial(0, 4)
        state.r[1] = -0.5
        assert state.residual_linf() == 1.0
        assert state.residual_l1() == 1.5

    def test_active_vertices(self):
        state = PPRState.initial(0, 4)
        state.r[2] = -0.2
        assert state.active_vertices(0.1).tolist() == [0, 2]
        assert state.active_vertices(1.5).tolist() == []

    def test_top_k(self):
        state = PPRState.initial(0, 5)
        state.p[:] = [0.1, 0.5, 0.2, 0.0, 0.4]
        assert state.top_k(2) == [(1, 0.5), (4, 0.4)]
        assert len(state.top_k(100)) == 5
        with pytest.raises(ConfigError):
            state.top_k(0)

    def test_estimate_sum(self):
        state = PPRState.initial(0, 3)
        state.p[:] = [0.25, 0.25, 0.5]
        assert state.estimate_sum() == pytest.approx(1.0)


class TestCopyCompare:
    def test_copy_independent(self):
        a = PPRState.initial(0, 4)
        b = a.copy()
        b.p[1] = 9.0
        assert a.p[1] == 0.0
        assert not a.allclose(b)

    def test_allclose_pads_capacity(self):
        a = PPRState.initial(0, 4)
        b = PPRState.initial(0, 32)
        assert a.allclose(b)

    def test_allclose_different_source(self):
        assert not PPRState.initial(0, 4).allclose(PPRState.initial(1, 4))

    def test_repr(self):
        assert "source=0" in repr(PPRState.initial(0, 4))
