"""Unit tests for invariant restoration (Algorithm 1) and the checker."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DynamicDiGraph,
    EdgeOp,
    EdgeUpdate,
    PPRConfig,
    PPRState,
    check_invariant,
    invariant_violation,
    parallel_local_push,
    restore_invariant,
)
from repro.core.invariant import apply_and_restore, restore_batch
from repro.graph.generators import erdos_renyi_graph
from repro.graph.update import insertions


def converged_state(graph, source, config):
    state = PPRState.initial(source, graph.capacity)
    parallel_local_push(state, graph, config, seeds=[source])
    return state


class TestInitialState:
    def test_initial_state_satisfies_invariant(self, paper_graph):
        # p = 0, r = e_s satisfies Eq. 2 on any graph.
        state = PPRState.initial(1, paper_graph.capacity)
        assert check_invariant(state, paper_graph, alpha=0.5)

    def test_initial_state_on_empty_graph(self):
        g = DynamicDiGraph()
        g.add_vertex(0)
        state = PPRState.initial(0, 1)
        assert check_invariant(state, g, alpha=0.15)


class TestRestoreInsert:
    def test_insert_preserves_invariant(self, paper_graph, paper_config):
        state = converged_state(paper_graph, 1, paper_config)
        update = EdgeUpdate(1, 2, EdgeOp.INSERT)
        paper_graph.apply(update)
        assert invariant_violation(state, paper_graph, 0.5) > 1e-6  # broken
        restore_invariant(state, paper_graph, update, 0.5)
        assert check_invariant(state, paper_graph, 0.5)

    def test_insert_from_dangling_vertex(self):
        # u starts with dout=0; the general formula must still repair Eq. 2.
        g = DynamicDiGraph([(0, 1), (1, 0)])
        g.add_vertex(5)
        config = PPRConfig(alpha=0.3, epsilon=1e-6)
        state = converged_state(g, 0, config)
        update = EdgeUpdate(5, 0, EdgeOp.INSERT)
        g.apply(update)
        restore_invariant(state, g, update, 0.3)
        assert check_invariant(state, g, 0.3)

    def test_insert_introducing_new_vertices(self):
        g = DynamicDiGraph([(0, 1)])
        config = PPRConfig(alpha=0.3, epsilon=1e-6)
        state = converged_state(g, 0, config)
        update = EdgeUpdate(7, 9, EdgeOp.INSERT)
        g.apply(update)
        restore_invariant(state, g, update, 0.3)
        assert state.capacity >= 10
        assert check_invariant(state, g, 0.3)

    def test_insert_at_source_vertex(self, paper_graph, paper_config):
        # The alpha * 1{u=s} indicator term must fire for u == s.
        state = converged_state(paper_graph, 1, paper_config)
        update = EdgeUpdate(1, 3, EdgeOp.INSERT)
        paper_graph.apply(update)
        restore_invariant(state, paper_graph, update, 0.5)
        assert check_invariant(state, paper_graph, 0.5)


class TestRestoreDelete:
    def test_delete_preserves_invariant(self, paper_graph, paper_config):
        state = converged_state(paper_graph, 1, paper_config)
        update = EdgeUpdate(3, 2, EdgeOp.DELETE)
        paper_graph.apply(update)
        restore_invariant(state, paper_graph, update, 0.5)
        assert check_invariant(state, paper_graph, 0.5)

    def test_delete_last_out_edge(self, paper_graph, paper_config):
        # dout(u) -> 0: Eq. 2 pins R(u) = (alpha 1{u=s} - P(u)) / alpha.
        state = converged_state(paper_graph, 1, paper_config)
        update = EdgeUpdate(4, 3, EdgeOp.DELETE)  # v4's only out-edge
        paper_graph.apply(update)
        restore_invariant(state, paper_graph, update, 0.5)
        assert paper_graph.out_degree(4) == 0
        assert check_invariant(state, paper_graph, 0.5)

    def test_delete_last_out_edge_of_source(self):
        g = DynamicDiGraph([(0, 1), (1, 0)])
        config = PPRConfig(alpha=0.4, epsilon=1e-6)
        state = converged_state(g, 0, config)
        update = EdgeUpdate(0, 1, EdgeOp.DELETE)
        g.apply(update)
        restore_invariant(state, g, update, 0.4)
        assert check_invariant(state, g, 0.4)
        # Dangling source: P(s) + alpha R(s) = alpha.
        assert state.p[0] + 0.4 * state.r[0] == pytest.approx(0.4)

    def test_insert_then_delete_is_identity(self, paper_graph, paper_config):
        state = converged_state(paper_graph, 1, paper_config)
        before_r = state.r.copy()
        update = EdgeUpdate(1, 2, EdgeOp.INSERT)
        paper_graph.apply(update)
        d1 = restore_invariant(state, paper_graph, update, 0.5)
        inverse = update.inverse()
        paper_graph.apply(inverse)
        d2 = restore_invariant(state, paper_graph, inverse, 0.5)
        assert d1 == pytest.approx(-d2)
        assert np.allclose(state.r[: len(before_r)], before_r)


class TestBatchHelpers:
    def test_restore_batch_touches_and_change(self, paper_graph, paper_config):
        state = converged_state(paper_graph, 1, paper_config)
        touched, change = restore_batch(
            paper_graph, state, insertions([(1, 2), (4, 1)]), 0.5
        )
        assert touched == [1, 4]
        assert change == pytest.approx(0.09375 + 0.15625)
        assert check_invariant(state, paper_graph, 0.5)

    def test_apply_and_restore_multi_state(self, paper_graph, paper_config):
        s1 = converged_state(paper_graph, 1, paper_config)
        s2 = converged_state(paper_graph, 2, paper_config)
        deltas = apply_and_restore(
            paper_graph, [s1, s2], EdgeUpdate(1, 2, EdgeOp.INSERT), 0.5
        )
        assert len(deltas) == 2
        assert check_invariant(s1, paper_graph, 0.5)
        assert check_invariant(s2, paper_graph, 0.5)


class TestRandomizedInvariantPreservation:
    @pytest.mark.parametrize("alpha", [0.15, 0.5, 0.85])
    def test_long_random_update_sequence(self, alpha, rng):
        edges = erdos_renyi_graph(15, 40, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        state = PPRState.initial(0, g.capacity)
        present = {tuple(e) for e in edges.tolist()}
        for _ in range(300):
            u, v = int(rng.integers(0, 15)), int(rng.integers(0, 15))
            if (u, v) in present and rng.random() < 0.5:
                update = EdgeUpdate(u, v, EdgeOp.DELETE)
                present.discard((u, v))
            else:
                update = EdgeUpdate(u, v, EdgeOp.INSERT)
                present.add((u, v))
            g.apply(update)
            restore_invariant(state, g, update, alpha)
        assert invariant_violation(state, g, alpha) < 1e-9
