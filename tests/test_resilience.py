"""Client-side resilience primitives (:mod:`repro.api.resilience`).

Three deterministic building blocks — no RNG, no clock reads — so retry
schedules and breaker transitions replay identically across runs:
jitter (golden-ratio walk), bounded exponential backoff, and the
request-counted per-replica circuit breaker.
"""

from __future__ import annotations

import pytest

from repro.api.resilience import CircuitBreaker, DeterministicJitter, RetryPolicy
from repro.errors import ConfigError


class TestDeterministicJitter:
    def test_sequence_is_reproducible(self):
        a, b = DeterministicJitter(), DeterministicJitter()
        assert [a.next() for _ in range(32)] == [b.next() for _ in range(32)]

    def test_values_stay_in_unit_interval(self):
        jitter = DeterministicJitter()
        values = [jitter.next() for _ in range(256)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_walk_is_spread_not_clustered(self):
        # Low-discrepancy property: each third of [0,1) gets its share.
        jitter = DeterministicJitter()
        values = [jitter.next() for _ in range(300)]
        for lo in (0.0, 1 / 3, 2 / 3):
            in_bin = sum(1 for v in values if lo <= v < lo + 1 / 3)
            assert 80 <= in_bin <= 120


class TestRetryPolicy:
    def test_backoff_grows_exponentially_to_the_cap(self):
        policy = RetryPolicy(
            attempts=5, base_backoff_s=0.1, multiplier=2.0,
            max_backoff_s=0.5, jitter=0.0,
        )
        waits = [policy.backoff_s(n, 0.0) for n in (1, 2, 3, 4)]
        assert waits == [0.1, 0.2, 0.4, 0.5]  # capped at max_backoff_s

    def test_jitter_only_shortens_the_wait(self):
        policy = RetryPolicy(base_backoff_s=1.0, multiplier=1.0, jitter=0.5)
        assert policy.backoff_s(1, 0.0) == 1.0
        assert policy.backoff_s(1, 1.0) == 0.5
        assert 0.5 <= policy.backoff_s(1, 0.3) <= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_backoff_s": -0.1},
            {"multiplier": 0.5},
            {"base_backoff_s": 1.0, "max_backoff_s": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_config_is_typed(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=2)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_denies_and_denials_advance_the_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=3)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        # The cooldown's last denial converts into the half-open probe.
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # held until the probe's outcome

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_full_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.denials == 0  # the cooldown restarts from scratch

    def test_to_dict_is_json_safe(self):
        breaker = CircuitBreaker()
        breaker.record_failure()
        assert breaker.to_dict() == {
            "state": "closed", "failures": 1, "denials": 0,
        }

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0}, {"cooldown": 0},
    ])
    def test_invalid_config_is_typed(self, kwargs):
        with pytest.raises(ConfigError):
            CircuitBreaker(**kwargs)
