"""Tests for the simulated profiling metrics (Figure 9's substitution)."""

from __future__ import annotations

from repro import profile_cpu, profile_gpu
from repro.config import Phase
from repro.core.stats import IterationRecord, PushStats


def trace(frontier, edges, iters=5):
    stats = PushStats()
    for _ in range(iters):
        stats.record(
            IterationRecord(
                phase=Phase.POS,
                frontier_size=frontier,
                edge_traversals=edges,
                atomic_adds=edges,
            )
        )
    return stats


class TestGPUProfile:
    def test_occupancy_rises_with_batch(self):
        small = profile_gpu(trace(100, 1_000))
        large = profile_gpu(trace(10_000, 200_000))
        assert large.warp_occupancy > small.warp_occupancy

    def test_load_efficiency_falls_with_batch(self):
        small = profile_gpu(trace(100, 1_000))
        large = profile_gpu(trace(10_000, 200_000))
        assert large.global_load_efficiency < small.global_load_efficiency

    def test_bounded(self):
        prof = profile_gpu(trace(10**6, 10**8, iters=2))
        assert 0.0 <= prof.warp_occupancy <= 1.0
        assert 0.0 <= prof.global_load_efficiency <= 1.0

    def test_empty_trace(self):
        prof = profile_gpu(PushStats())
        assert prof.warp_occupancy == 0.0


class TestCPUProfile:
    def test_miss_rates_rise_with_batch(self):
        small = profile_cpu(trace(100, 1_000))
        large = profile_cpu(trace(50_000, 2_000_000))
        assert large.l2_miss_rate > small.l2_miss_rate
        assert large.l3_miss_rate > small.l3_miss_rate
        assert large.stall_ratio > small.stall_ratio

    def test_l3_larger_than_l2_capacity_effect(self):
        # A mid-size working set should thrash L2 well before L3.
        prof = profile_cpu(trace(5_000, 100_000))
        assert prof.l2_miss_rate > prof.l3_miss_rate

    def test_bounded(self):
        prof = profile_cpu(trace(10**6, 10**8, iters=2))
        assert 0.0 <= prof.l2_miss_rate <= 1.0
        assert 0.0 <= prof.l3_miss_rate <= 1.0
        assert 0.0 <= prof.stall_ratio <= 0.95
