"""Tests for the real multiprocessing BSP backend (correctness only).

A single test keeps the suite fast: process-pool startup dominates at this
scale (the backend exists to demonstrate the BSP decomposition, not speed
— see module docs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Backend,
    DynamicDiGraph,
    PPRConfig,
    PPRState,
    PushVariant,
    ground_truth_ppr,
    max_estimate_error,
    parallel_local_push,
)
from repro.graph.generators import erdos_renyi_graph


@pytest.mark.parametrize("variant", [PushVariant.VANILLA, PushVariant.DUPDETECT])
def test_multiprocess_matches_numpy(variant):
    rng = np.random.default_rng(17)
    edges = erdos_renyi_graph(30, 150, rng=rng)
    g = DynamicDiGraph(map(tuple, edges.tolist()))
    results = []
    for backend in (Backend.NUMPY, Backend.MULTIPROCESS):
        config = PPRConfig(
            alpha=0.2, epsilon=1e-4, variant=variant, backend=backend, workers=2
        )
        state = PPRState.initial(0, g.capacity)
        stats = parallel_local_push(state, g, config, seeds=[0])
        results.append((state, stats))
    (s_np, st_np), (s_mp, st_mp) = results
    assert s_np.allclose(s_mp, atol=1e-9)
    assert st_np.pushes == st_mp.pushes
    truth = ground_truth_ppr(g, 0, 0.2)
    assert max_estimate_error(s_mp.p, truth) <= 1e-4
