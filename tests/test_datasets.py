"""Tests for the paper-dataset analogs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigError, DATASETS
from repro.graph.datasets import (
    dataset_edges,
    get_spec,
    load_dataset,
    top_degree_vertices,
)


class TestRegistry:
    def test_all_five_paper_datasets_present(self):
        assert set(DATASETS) == {"pokec", "livejournal", "youtube", "orkut", "twitter"}

    def test_directedness_matches_paper(self):
        assert DATASETS["pokec"].directed
        assert DATASETS["livejournal"].directed
        assert DATASETS["twitter"].directed
        assert not DATASETS["youtube"].directed
        assert not DATASETS["orkut"].directed

    def test_average_degree_preserved(self):
        # The analog's average degree should be within 2x of the paper's
        # (that is the scaling contract in DESIGN.md).
        for spec in DATASETS.values():
            paper_deg = spec.paper_edges / spec.paper_vertices
            analog_deg = spec.average_degree
            assert 0.5 <= analog_deg / paper_deg <= 2.0, spec.name

    def test_scale_factor(self):
        assert DATASETS["twitter"].scale_factor == pytest.approx(1000.0)

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            get_spec("facebook")


class TestGeneration:
    def test_edges_deterministic_and_cached(self):
        a = dataset_edges("youtube")
        b = dataset_edges("youtube")
        assert a is b  # lru_cache
        assert not a.flags.writeable

    def test_edge_counts_close_to_spec(self):
        spec = get_spec("youtube")
        edges = dataset_edges("youtube")
        # Undirected canonicalization may drop a few duplicates.
        assert len(edges) >= 0.9 * spec.num_edges

    def test_undirected_edges_canonical(self):
        edges = dataset_edges("youtube")
        assert (edges[:, 0] <= edges[:, 1]).all()

    def test_load_dataset_directed(self):
        g = load_dataset("youtube")
        # Undirected dataset: both directions materialized.
        edges = dataset_edges("youtube")
        u, v = int(edges[0, 0]), int(edges[0, 1])
        assert g.has_edge(u, v) and g.has_edge(v, u)


class TestTopDegree:
    def test_top_degree_ordering(self):
        edges = np.array([[0, 1], [0, 2], [0, 3], [1, 2], [2, 3]])
        top = top_degree_vertices(edges, 2)
        assert top[0] == 0
        with pytest.raises(ConfigError):
            top_degree_vertices(edges, 0)
