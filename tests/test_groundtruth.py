"""Unit tests for the ground-truth solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DynamicDiGraph,
    ground_truth_linear,
    ground_truth_ppr,
    max_estimate_error,
)
from repro.graph.generators import cycle_graph, erdos_renyi_graph, star_graph


class TestClosedForms:
    def test_isolated_source(self):
        g = DynamicDiGraph()
        g.add_vertex(0)
        p = ground_truth_ppr(g, 0, alpha=0.3)
        assert p[0] == pytest.approx(0.3)

    def test_two_cycle(self):
        # 0 <-> 1, source 0: p(0) = a + (1-a) p(1); p(1) = (1-a) p(0).
        g = DynamicDiGraph([(0, 1), (1, 0)])
        a = 0.3
        p = ground_truth_ppr(g, 0, a)
        expected0 = a / (1 - (1 - a) ** 2)
        assert p[0] == pytest.approx(expected0, abs=1e-10)
        assert p[1] == pytest.approx((1 - a) * expected0, abs=1e-10)

    def test_star_toward_source(self):
        # Every leaf points at the center 0: p(leaf) = (1-a) * p(0) = (1-a) a.
        g = DynamicDiGraph(map(tuple, star_graph(5, inward=True).tolist()))
        a = 0.15
        p = ground_truth_ppr(g, 0, a)
        assert p[0] == pytest.approx(a)  # center is dangling
        for leaf in range(1, 6):
            assert p[leaf] == pytest.approx((1 - a) * a, abs=1e-10)

    def test_cycle_uniform_decay(self):
        # On a directed n-cycle, p(v) = a (1-a)^{dist(v -> s)} / (1-(1-a)^n).
        g = DynamicDiGraph(map(tuple, cycle_graph(4).tolist()))
        a = 0.5
        p = ground_truth_ppr(g, 0, a)
        denom = 1 - (1 - a) ** 4
        for v in range(4):
            dist = (0 - v) % 4
            assert p[v] == pytest.approx(a * (1 - a) ** dist / denom, abs=1e-10)


class TestSolverAgreement:
    @pytest.mark.parametrize("alpha", [0.15, 0.5])
    def test_power_vs_linear(self, alpha, rng):
        edges = erdos_renyi_graph(40, 200, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        a = ground_truth_ppr(g, 3, alpha)
        b = ground_truth_linear(g, 3, alpha)
        assert np.abs(a - b).max() < 1e-9

    def test_with_dangling_vertices(self, rng):
        g = DynamicDiGraph([(0, 1), (1, 2), (3, 2)])  # 2 is dangling
        a = ground_truth_ppr(g, 0, 0.2)
        b = ground_truth_linear(g, 0, 0.2)
        assert np.abs(a - b).max() < 1e-10
        assert a[2] == pytest.approx(0.0)  # 2 never reaches 0

    def test_values_bounded(self, rng):
        edges = erdos_renyi_graph(30, 120, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        p = ground_truth_ppr(g, 0, 0.15)
        assert (p >= -1e-15).all()
        assert (p <= 1.0 + 1e-12).all()


class TestMaxEstimateError:
    def test_unequal_lengths_padded(self):
        assert max_estimate_error(np.array([1.0]), np.array([1.0, 0.5])) == 0.5

    def test_empty(self):
        assert max_estimate_error(np.array([]), np.array([])) == 0.0
