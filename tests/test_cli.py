"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["track", "facebook"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("pokec", "livejournal", "youtube", "orkut", "twitter"):
            assert name in out

    def test_figure_fig9(self, capsys):
        assert main(["figure", "fig9", "--dataset", "youtube", "--slides", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "WO" in out

    def test_ablation_frontier(self, capsys):
        assert main(["ablation", "frontier", "--dataset", "youtube"]) == 0
        out = capsys.readouterr().out
        assert "sync_dedup_checks" in out
        assert "vanilla" in out and "opt" in out

    def test_track(self, capsys):
        assert main(["track", "youtube", "--slides", "1", "--epsilon", "1e-4"]) == 0
        out = capsys.readouterr().out
        assert "slide 1" in out
        assert "certified top-5" in out
