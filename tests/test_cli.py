"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["track", "facebook"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("pokec", "livejournal", "youtube", "orkut", "twitter"):
            assert name in out

    def test_figure_fig9(self, capsys):
        assert main(["figure", "fig9", "--dataset", "youtube", "--slides", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "WO" in out

    def test_ablation_frontier(self, capsys):
        assert main(["ablation", "frontier", "--dataset", "youtube"]) == 0
        out = capsys.readouterr().out
        assert "sync_dedup_checks" in out
        assert "vanilla" in out and "opt" in out

    def test_track(self, capsys):
        assert main(["track", "youtube", "--slides", "1", "--epsilon", "1e-4"]) == 0
        out = capsys.readouterr().out
        assert "slide 1" in out
        assert "certified top-5" in out


class TestStoreCommands:
    """The durable-store trio: checkpoint a workload, inspect, recover."""

    def _checkpoint(self, root, slides: int = 4) -> list[str]:
        return [
            "store-checkpoint",
            "youtube",
            "--root",
            str(root),
            "--slides",
            str(slides),
            "--sources",
            "6",
            "--interval",
            "3",
        ]

    def test_checkpoint_then_inspect_then_recover_verifies(self, capsys, tmp_path):
        root = tmp_path / "store"
        assert main(self._checkpoint(root)) == 0
        out = capsys.readouterr().out
        assert "persisted youtube" in out
        assert "served top-5 transcript" in out
        assert (root / "served_topk.txt").exists()
        assert (root / "checkpoints").is_dir()
        assert (root / "wal").is_dir()

        assert main(["store-inspect", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "Checkpoints" in out and "WAL segments" in out
        assert "checkpoint-" in out
        # slides=4, interval=3: one batch lives in the WAL tail, clean.
        assert "wal-" in out and "clean" in out

        assert main(["store-recover", "--root", str(root), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "recovered v3 -> v4 (1 batches" in out
        assert "verify: OK" in out

    def test_recover_without_transcript_still_serves(self, capsys, tmp_path):
        root = tmp_path / "store"
        assert main(self._checkpoint(root)) == 0
        capsys.readouterr()
        (root / "served_topk.txt").unlink()
        assert main(["store-recover", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "resident sources:" in out

    def test_verify_honors_transcript_depth_not_default_k(self, capsys, tmp_path):
        """A store checkpointed at --k 7 must verify with default flags."""
        root = tmp_path / "store"
        assert main(self._checkpoint(root) + ["--k", "7"]) == 0
        capsys.readouterr()
        assert main(["store-recover", "--root", str(root), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verify: OK" in out
        assert " 6 " in out  # rank 6 rows served, matching the transcript

    def test_recover_verify_fails_on_tampered_transcript(self, capsys, tmp_path):
        root = tmp_path / "store"
        assert main(self._checkpoint(root)) == 0
        transcript = root / "served_topk.txt"
        lines = transcript.read_text().splitlines()
        lines[0] = lines[0].rsplit(" ", 1)[0] + " 0.123456"
        transcript.write_text("\n".join(lines) + "\n")
        assert main(["store-recover", "--root", str(root), "--verify"]) == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_inspect_missing_root_fails(self, capsys, tmp_path):
        assert main(["store-inspect", "--root", str(tmp_path / "nope")]) == 1
        assert "not found" in capsys.readouterr().err

    def test_recover_empty_store_fails(self, capsys, tmp_path):
        assert main(["store-recover", "--root", str(tmp_path)]) == 1
        assert "recovery failed" in capsys.readouterr().err

    def test_store_checkpoint_requires_root(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store-checkpoint", "youtube"])
