"""Deterministic fault injection and primary failover.

Three layers under test:

1. **the chaos subsystem itself** (:mod:`repro.chaos`) — plans are
   validated, JSON round-trip clean, and fire deterministically on exact
   visit counts with per-replica scoping;
2. **failover** — a dead primary (chaos CRASH, fsync fence, or the
   ``kill_primary`` hook) promotes the most-caught-up replica under a
   bumped epoch with zero acked-write loss; stale-epoch (zombie) frames
   are fenced; FRESH reads degrade to a typed 503 during the window
   while ANY keeps serving; readiness tracks the whole arc;
3. **client resilience** — read hedging masks a wedged owner, circuit
   breakers eject a failing replica from the read rotation and let it
   back in after cooldown.

Bit-identity caveat: a resident source refreshed *incrementally* is not
bit-identical to a from-scratch computation at the same version (float
accumulation order), so oracle comparisons here either query sources
untouched during the run or mirror the exact access pattern.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro import DynamicDiGraph, PPRService, chaos
from repro.api.requests import (
    ANY,
    FRESH,
    Deadline,
    Health,
    IngestBatch,
    Ready,
    TopKQuery,
)
from repro.chaos import Fault, FaultKind, FaultPlan
from repro.cluster import PPRCluster, messages
from repro.config import ClusterConfig, ServeConfig, StoreConfig
from repro.errors import ConfigError
from repro.graph import insertions
from repro.store.recovery import recover_service
from repro.store.wal import pack_record

EDGES = [(1, 0), (2, 0), (2, 1), (0, 2), (3, 1), (4, 3), (1, 4), (3, 0)]


def fresh_service(**serve_kwargs) -> PPRService:
    return PPRService(DynamicDiGraph(EDGES), serve=ServeConfig(**serve_kwargs))


def entries_of(response):
    return [(e.vertex, e.estimate) for e in response.entries]


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            faults=(
                Fault("wal.fsync", FaultKind.ERROR, at=3, message="disk gone"),
                Fault("cluster.ship", FaultKind.DROP, at=2, count=2, replica=1),
            ),
            name="torn-disk",
        )
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert len(plan) == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"site": ""},
            {"site": "x", "at": 0},
            {"site": "x", "count": 0},
            {"site": "x", "replica": -1},
        ],
    )
    def test_invalid_fault_is_typed(self, kwargs):
        with pytest.raises(ConfigError):
            Fault(kind=FaultKind.ERROR, **kwargs)

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            Fault.from_dict({"site": "x", "kind": "meteor"})

    def test_plan_rejects_non_fault_entries(self):
        with pytest.raises(ConfigError):
            FaultPlan(faults=({"site": "x"},))  # type: ignore[arg-type]


class TestInjector:
    def test_fires_on_the_exact_visit_window(self):
        chaos.install(
            FaultPlan(faults=(Fault("s", FaultKind.DROP, at=3, count=2),))
        )
        fired = [chaos.fire("s") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_no_plan_is_a_no_op(self):
        chaos.reset()
        assert chaos.fire("anything") is None
        chaos.check("anything")  # must not raise

    def test_replica_scoping(self):
        plan = FaultPlan(faults=(Fault("s", FaultKind.DROP, replica=1),))
        chaos.install(plan, replica=0)
        assert chaos.fire("s") is None  # wrong process: counter untouched
        chaos.install(plan, replica=1)
        assert chaos.fire("s") is not None

    def test_coordinator_context_passes_replica_explicitly(self):
        chaos.install(
            FaultPlan(faults=(Fault("ship", FaultKind.DROP, replica=2),))
        )
        assert chaos.fire("ship", replica=0) is None
        assert chaos.fire("ship", replica=2) is not None

    def test_reinstall_resets_counters_deterministically(self):
        plan = FaultPlan(faults=(Fault("s", FaultKind.DROP, at=2),))
        for _ in range(2):
            chaos.install(plan)
            assert chaos.fire("s") is None
            assert chaos.fire("s") is not None

    def test_check_raises_oserror_with_the_scripted_message(self):
        chaos.install(
            FaultPlan(faults=(Fault("io", FaultKind.ERROR, message="boom"),))
        )
        with pytest.raises(OSError, match="boom"):
            chaos.check("io")

    def test_injected_log_records_firing_order_and_context(self):
        chaos.install(
            FaultPlan(
                faults=(
                    Fault("a", FaultKind.DROP),
                    Fault("b", FaultKind.DUP),
                )
            )
        )
        chaos.fire("b", seq=7)
        chaos.fire("a")
        log = chaos.injected()
        assert [(e["site"], e["kind"]) for e in log] == [
            ("b", "dup"), ("a", "drop"),
        ]
        assert log[0]["seq"] == 7


class TestFailover:
    def test_primary_crash_promotes_with_zero_acked_write_loss(self, tmp_path):
        root = str(tmp_path / "store")
        chaos.install(
            FaultPlan(
                faults=(Fault("primary.apply", FaultKind.CRASH, at=3),),
                name="kill-primary",
            )
        )
        service = fresh_service(store=StoreConfig(root=root))
        acked: list[tuple[int, int]] = []
        with PPRCluster(service, ClusterConfig(replicas=3)) as cluster:
            for i in range(6):
                edge = (20 + i, i % 5)
                response = cluster.api.ingest([edge])
                # The write that kills the primary is itself forwarded to
                # the promoted node: every single ack survives the crash.
                assert response.ok
                acked.append(edge)
            gateway = cluster.gateway
            assert gateway.epoch == 1
            assert gateway._primary_index is not None
            assert gateway.counters["failovers"] == 1
            ready = cluster.api.ready()
            assert ready.ready and ready.primary.startswith("replica-")

            # Post-heal FRESH answers are bit-identical to a
            # single-process oracle fed the acked writes, at the same
            # version (sources untouched during the run: no resident
            # state to diverge on).
            answer = cluster.api.top_k(3, k=5, consistency=FRESH)
            oracle = fresh_service()
            for edge in acked:
                oracle.ingest(insertions([edge]))
            expected = oracle.gateway.submit(
                TopKQuery(source=3, k=5, consistency=FRESH)
            )
            assert answer.snapshot_version == expected.snapshot_version == 6
            assert entries_of(answer) == entries_of(expected)

    def test_fsync_fence_degrades_then_fails_over(self, tmp_path):
        root = str(tmp_path / "store")
        chaos.install(
            FaultPlan(
                faults=(Fault("wal.fsync", FaultKind.ERROR, at=3),),
                name="disk-gone",
            )
        )
        service = fresh_service(store=StoreConfig(root=root))
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            gateway = cluster.gateway
            acked = []
            for i in range(2):
                edge = (20 + i, i)
                assert cluster.api.ingest([edge]).ok
                acked.append(edge)

            # Third append hits the injected fsync error: the frame is
            # rolled back, the store fenced, the write surfaces as a
            # typed STORE failure — and is NOT acked.
            failed = cluster.gateway.submit(
                IngestBatch(updates=tuple(insertions([(30, 0)])))
            )
            assert not failed.ok and failed.error.code == "STORE"
            assert service.store.failed
            assert gateway._head == 2  # acked head did not advance

            # Degraded window: no write authority yet. FRESH reads give
            # a typed 503, ANY keeps serving, readiness says degraded.
            fresh = cluster.gateway.submit(
                TopKQuery(source=0, k=3, consistency=FRESH)
            )
            assert not fresh.ok and fresh.error.code == "CLUSTER"
            assert cluster.gateway.submit(
                TopKQuery(source=0, k=3, consistency=ANY)
            ).ok
            ready = cluster.api.ready()
            assert not ready.ready
            assert ready.status == "degraded" and ready.primary is None
            # Liveness stays green throughout: the process is fine.
            assert cluster.gateway.submit(Health()).ok

            # The next write performs the failover and lands on the
            # promoted primary, which now owns the store.
            edge = (31, 1)
            assert cluster.api.ingest([edge]).ok
            acked.append(edge)
            assert gateway.epoch >= 1 and gateway._primary_index is not None
            ready = cluster.api.ready()
            assert ready.ready and ready.epoch == gateway.epoch

        # Everything acked — and nothing more — is durable: recovery
        # lands exactly at the acked head, bit-identical to an oracle.
        recovered = recover_service(root, attach=False)
        assert recovered.graph_version == len(acked) == 3
        oracle = fresh_service()
        for edge in acked:
            oracle.ingest(insertions([edge]))
        assert entries_of(recovered.query(3, k=5)) == entries_of(
            oracle.query(3, k=5)
        )

    def test_zombie_epoch_frame_is_fenced(self):
        service = fresh_service()
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            gateway = cluster.gateway
            assert cluster.api.ingest([(20, 0)]).ok
            gateway.kill_primary()
            assert cluster.api.ingest([(21, 1)]).ok  # triggers promotion
            assert gateway.epoch == 1
            victim = 1 - gateway._primary_index

            # A zombie coordinator still stamping the old epoch: the
            # replica must refuse the frame, not fork its history.
            handle = gateway.replicas[victim]
            before = gateway.replica_versions()[victim]
            zombie = pack_record(
                before + 1, tuple(insertions([(99, 0)])), epoch=0
            )
            handle.send((messages.APPLY, zombie, None))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                gateway._drain_acks()
                if handle.applied_version >= before:
                    break
                time.sleep(0.02)
            assert gateway.replica_versions()[victim] == before
            assert handle.alive()
            # And the replica still serves valid reads afterwards.
            assert cluster.api.top_k(0, k=3, consistency=ANY).ok

    def test_storeless_promotion_keeps_serving_writes(self):
        service = fresh_service()
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            gateway = cluster.gateway
            assert cluster.api.ingest([(20, 0)]).ok
            gateway.kill_primary()
            for i in range(3):
                assert cluster.api.ingest([(21 + i, i)]).ok
            assert gateway._primary_index is not None
            answer = cluster.api.top_k(3, k=5, consistency=FRESH)
            oracle = fresh_service()
            for edge in [(20, 0), (21, 0), (22, 1), (23, 2)]:
                oracle.ingest(insertions([edge]))
            expected = oracle.gateway.submit(
                TopKQuery(source=3, k=5, consistency=FRESH)
            )
            assert answer.snapshot_version == expected.snapshot_version == 4
            assert entries_of(answer) == entries_of(expected)

    def test_promoted_replica_slot_cannot_be_rebuilt_storeless(self):
        # Without a store, losing the promoted primary is unrecoverable
        # for that slot's state: the gateway must say so in a typed way
        # rather than silently respawn a node that would accept writes
        # into a forked history.
        service = fresh_service()
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            gateway = cluster.gateway
            gateway.kill_primary()
            assert cluster.api.ingest([(20, 0)]).ok
            promoted = gateway._primary_index
            os.kill(gateway.replicas[promoted].process.pid, signal.SIGKILL)
            response = cluster.gateway.submit(
                IngestBatch(updates=tuple(insertions([(21, 1)])))
            )
            assert not response.ok and response.error.code == "CLUSTER"

    def test_failover_without_live_candidates_is_typed(self):
        service = fresh_service()
        with PPRCluster(service, ClusterConfig(replicas=1)) as cluster:
            gateway = cluster.gateway
            gateway.kill_primary()
            os.kill(gateway.replicas[0].process.pid, signal.SIGKILL)
            response = cluster.gateway.submit(
                IngestBatch(updates=tuple(insertions([(20, 0)])))
            )
            assert not response.ok and response.error.code == "CLUSTER"


class TestShipFaults:
    """Frame-level channel faults on the coordinator→replica seam."""

    def _converged(self, cluster, head):
        cluster.gateway.submit_many(
            [TopKQuery(source=s, k=3, consistency=FRESH) for s in (0, 1)]
        )
        return cluster.gateway.replica_versions() == [head, head]

    def test_duplicated_frame_is_absorbed_idempotently(self):
        chaos.install(
            FaultPlan(
                faults=(Fault("cluster.ship", FaultKind.DUP, at=2, replica=1),)
            )
        )
        with PPRCluster(fresh_service(), ClusterConfig(replicas=2)) as cluster:
            for edge in [(20, 0), (21, 1), (22, 2)]:
                assert cluster.api.ingest([edge]).ok
            assert self._converged(cluster, 3)
            assert cluster.gateway.counters["respawns"] == 0
            assert chaos.injected()[0]["kind"] == "dup"

    def test_dropped_frame_forces_gap_detection_and_rebuild(self):
        chaos.install(
            FaultPlan(
                faults=(Fault("cluster.ship", FaultKind.DROP, at=2, replica=1),)
            )
        )
        with PPRCluster(fresh_service(), ClusterConfig(replicas=2)) as cluster:
            for edge in [(20, 0), (21, 1), (22, 2)]:
                assert cluster.api.ingest([edge]).ok
            # Replica 1 saw seq 1 then seq 3: the gap kills it; the next
            # interaction respawns it at head. Reads stay correct
            # throughout — worst case they land on the rebuilt worker.
            answer = cluster.api.top_k(1, k=3, consistency=FRESH)
            assert answer.ok and answer.snapshot_version == 3
            assert cluster.gateway.counters["respawns"] >= 1

    def test_delayed_frame_reorders_and_the_replica_recovers(self):
        chaos.install(
            FaultPlan(
                faults=(
                    Fault("cluster.ship", FaultKind.DELAY, at=2, replica=0),
                )
            )
        )
        with PPRCluster(fresh_service(), ClusterConfig(replicas=2)) as cluster:
            for edge in [(20, 0), (21, 1), (22, 2)]:
                assert cluster.api.ingest([edge]).ok
            answer = cluster.api.top_k(0, k=3, consistency=FRESH)
            assert answer.ok and answer.snapshot_version == 3


class TestResilienceRouting:
    def test_hedged_read_masks_a_wedged_owner(self):
        config = ClusterConfig(replicas=2, hedge_reads=True)
        with PPRCluster(fresh_service(), config) as cluster:
            assert cluster.api.top_k(0, k=3).ok  # owner replica 0 is warm
            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGSTOP)
            start = time.monotonic()
            answer = cluster.gateway.submit(
                TopKQuery(
                    source=0, k=3, consistency=ANY,
                    deadline=Deadline.after_ms(10_000.0),
                )
            )
            elapsed = time.monotonic() - start
            assert answer.ok
            # The hedge won on the healthy sibling long before the
            # deadline — the wedged owner never blocked the caller.
            assert elapsed < 8.0
            assert cluster.gateway.counters["reads_hedged"] >= 1
            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGCONT)

    def test_breaker_ejects_failing_replica_then_readmits(self):
        config = ClusterConfig(
            replicas=2, breaker_failures=1, breaker_cooldown=2
        )
        with PPRCluster(fresh_service(), config) as cluster:
            gateway = cluster.gateway
            os.kill(gateway.replicas[0].process.pid, signal.SIGSTOP)
            failed = gateway.submit(
                TopKQuery(source=0, k=3, deadline=Deadline.after_ms(200.0))
            )
            assert not failed.ok  # DEADLINE; breaker 0 trips open
            assert gateway.breakers[0].state == "open"

            # While open, owner-0 reads reroute to the healthy sibling.
            rerouted_before = gateway.counters["reads_rerouted"]
            assert gateway.submit(TopKQuery(source=0, k=3)).ok
            assert gateway.counters["reads_rerouted"] == rerouted_before + 1

            # Cooldown elapses in denied requests; the probe succeeds on
            # the respawned (healthy) worker and the breaker closes.
            assert gateway.submit(TopKQuery(source=0, k=3)).ok
            assert gateway.submit(TopKQuery(source=0, k=3)).ok
            assert gateway.breakers[0].state == "closed"

    def test_readiness_reports_open_breaker_as_degraded(self):
        config = ClusterConfig(
            replicas=2, breaker_failures=1, breaker_cooldown=100
        )
        with PPRCluster(fresh_service(), config) as cluster:
            gateway = cluster.gateway
            os.kill(gateway.replicas[0].process.pid, signal.SIGSTOP)
            gateway.submit(
                TopKQuery(source=0, k=3, deadline=Deadline.after_ms(200.0))
            )
            ready = gateway.submit(Ready())
            assert not ready.ready and ready.status == "degraded"
            states = [r["breaker"] for r in ready.replicas]
            assert "open" in states


class TestChaosStatsSurface:
    def test_injected_faults_appear_in_cluster_stats(self):
        chaos.install(
            FaultPlan(
                faults=(Fault("cluster.ship", FaultKind.DUP, at=1, replica=0),)
            )
        )
        with PPRCluster(fresh_service(), ClusterConfig(replicas=2)) as cluster:
            assert cluster.api.ingest([(20, 0)]).ok
            stats = cluster.api.stats().stats
            section = stats["cluster"]
            assert section["epoch"] == 0
            assert section["primary"] == "embedded"
            assert section["failovers"] == 0
            assert [b["state"] for b in section["breakers"]] == [
                "closed", "closed",
            ]
            assert section["chaos"][0]["site"] == "cluster.ship"
