"""Kernel selection, fallback, and dispatch (:mod:`repro.kernels`).

The runtime-selection contracts:

1. ``REPRO_KERNEL`` / ``PPRConfig.kernel`` pick the backend — ``numpy``
   forces the oracle, ``compiled`` *requires* the C kernel (typed
   :class:`~repro.errors.BackendError` when the host cannot build one),
   ``auto`` prefers compiled and falls back silently;
2. a host without a usable compiler degrades gracefully — pushes still
   run, answers still bit-identical to the oracle (they *are* the
   oracle), and ``describe()`` says why;
3. both kernels produce bit-identical states on the same inputs (the
   exhaustive random-graph version lives in
   ``tests/test_kernel_properties.py``; here one deterministic case
   guards the plumbing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Backend, DynamicDiGraph, PPRConfig, PPRState, PushVariant
from repro import kernels
from repro.config import KernelConfig, KernelMode
from repro.core.push_parallel import parallel_local_push
from repro.errors import BackendError, ConfigError
from tests.conftest import random_graph

#: A compiler flag both load paths agree is unusable.
BOGUS_CC = "definitely-not-a-compiler-xyzzy"

HAVE_COMPILED = kernels.load_library()[0] is not None

needs_compiled = pytest.mark.skipif(
    not HAVE_COMPILED, reason="no C compiler on this host"
)


@pytest.fixture(autouse=True)
def _fresh_selection(monkeypatch):
    """Each case picks its own env; no cached load may leak across."""
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    yield
    kernels.reset()


def push_config(**kwargs) -> PPRConfig:
    return PPRConfig(
        alpha=0.2,
        epsilon=1e-4,
        variant=PushVariant.OPT,
        backend=Backend.NUMPY,
        workers=1,
        **kwargs,
    )


class TestConfigSurface:
    def test_from_env_parses_all_modes(self, monkeypatch):
        for raw, mode in (
            ("compiled", KernelMode.COMPILED),
            ("numpy", KernelMode.NUMPY),
            ("auto", KernelMode.AUTO),
            (" AUTO ", KernelMode.AUTO),
        ):
            monkeypatch.setenv("REPRO_KERNEL", raw)
            assert KernelConfig.from_env().mode is mode

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "fortran")
        with pytest.raises(ConfigError):
            KernelConfig.from_env()

    def test_unset_env_means_auto(self):
        assert KernelConfig.from_env().mode is KernelMode.AUTO

    def test_mode_must_be_a_kernel_mode(self):
        with pytest.raises(ConfigError):
            KernelConfig(mode="compiled")

    def test_ppr_config_rejects_non_kernel_config(self):
        with pytest.raises(ConfigError):
            PPRConfig(kernel="compiled")

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        config = push_config(kernel=KernelConfig(mode=KernelMode.NUMPY))
        backend, reason = kernels.selected_backend(config)
        assert backend == "numpy" and reason == "forced by configuration"


class TestSelection:
    def test_numpy_mode_never_builds(self):
        config = push_config(kernel=KernelConfig(mode=KernelMode.NUMPY))
        assert kernels.selected_backend(config)[0] == "numpy"

    @needs_compiled
    def test_auto_prefers_compiled(self):
        backend, _ = kernels.selected_backend(push_config())
        assert backend == "compiled"

    def test_auto_falls_back_without_a_compiler(self):
        config = push_config(
            kernel=KernelConfig(mode=KernelMode.AUTO, compiler=BOGUS_CC)
        )
        backend, reason = kernels.selected_backend(config)
        assert backend == "numpy"
        assert "fallback" in reason

    def test_forced_compiled_without_a_compiler_raises(self):
        config = push_config(
            kernel=KernelConfig(mode=KernelMode.COMPILED, compiler=BOGUS_CC)
        )
        with pytest.raises(BackendError):
            kernels.selected_backend(config)

    def test_describe_reports_unavailable_instead_of_raising(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        monkeypatch.setenv("REPRO_KERNEL_CC", BOGUS_CC)
        kernels.reset()
        info = kernels.describe()
        assert info["mode"] == "compiled"
        assert info["backend"] == "unavailable"

    def test_load_library_failure_is_cached_not_retried(self):
        kernel = KernelConfig(compiler=BOGUS_CC)
        library, reason = kernels.load_library(kernel)
        assert library is None
        # The failure is memoized per (compiler, cache_dir): the second
        # call returns the cached entry without probing the host again.
        assert (kernel.compiler, kernel.cache_dir) in kernels._LIBRARIES
        assert kernels.load_library(kernel) == (library, reason)


class TestDispatch:
    def _converged_states(self, config_a, config_b):
        rng = np.random.default_rng(20170901)
        graph = random_graph(rng, n=40, m=260)
        states = []
        for config in (config_a, config_b):
            state = PPRState.initial(0, graph.capacity)
            parallel_local_push(state, graph, config)
            states.append(state)
        return states

    @needs_compiled
    def test_compiled_matches_numpy_bitwise(self):
        compiled, numpy_oracle = self._converged_states(
            push_config(kernel=KernelConfig(mode=KernelMode.COMPILED)),
            push_config(kernel=KernelConfig(mode=KernelMode.NUMPY)),
        )
        assert np.array_equal(compiled.p, numpy_oracle.p)
        assert np.array_equal(compiled.r, numpy_oracle.r)

    def test_push_still_runs_when_fallback_engages(self):
        broken, oracle = self._converged_states(
            push_config(
                kernel=KernelConfig(mode=KernelMode.AUTO, compiler=BOGUS_CC)
            ),
            push_config(kernel=KernelConfig(mode=KernelMode.NUMPY)),
        )
        assert np.array_equal(broken.p, oracle.p)
        assert np.array_equal(broken.r, oracle.r)

    def test_forced_compiled_push_raises_when_unavailable(self):
        rng = np.random.default_rng(7)
        graph = random_graph(rng)
        state = PPRState.initial(0, graph.capacity)
        config = push_config(
            kernel=KernelConfig(mode=KernelMode.COMPILED, compiler=BOGUS_CC)
        )
        with pytest.raises(BackendError):
            parallel_local_push(state, graph, config)

    @needs_compiled
    def test_env_selection_reaches_the_push(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        kernels.reset()
        compiled, oracle = self._converged_states(
            push_config(), push_config(kernel=KernelConfig(mode=KernelMode.NUMPY))
        )
        assert np.array_equal(compiled.p, oracle.p)
        assert np.array_equal(compiled.r, oracle.r)
