"""Tests for the accuracy-vs-cost study."""

from __future__ import annotations

import pytest

from repro.bench.accuracy import accuracy_study


class TestAccuracyStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return accuracy_study(
            dataset="youtube",
            epsilons=(1e-4,),
            walk_budgets=(6,),
            num_slides=1,
        )

    def test_local_update_meets_its_guarantee(self, result):
        row = next(r for r in result.rows if "local-update" in r[1])
        measured, guarantee = row[2], row[3]
        assert measured <= guarantee

    def test_monte_carlo_much_less_accurate_at_paper_budget(self, result):
        # The paper's w = 6|V| budget means ~sqrt(a(1-a)/6) ~ 0.15 noise
        # per entry: orders of magnitude above the push's epsilon.
        push = next(r for r in result.rows if "local-update" in r[1])
        mc = next(r for r in result.rows if "monte-carlo" in r[1])
        assert mc[2] > 10 * push[2]

    def test_table_renders(self, result):
        assert "Accuracy study" in result.table()


def test_more_walks_reduce_error():
    result = accuracy_study(
        dataset="youtube", epsilons=(), walk_budgets=(2, 64), num_slides=1
    )
    errors = [row[2] for row in result.rows]
    assert errors[1] <= errors[0]
