"""Tests for the dynamic hub-vector index."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Backend,
    ConfigError,
    DynamicDiGraph,
    DynamicHubIndex,
    PPRConfig,
    VertexError,
    ground_truth_ppr,
    select_hubs,
)
from repro.graph.generators import rmat_graph
from repro.graph.update import deletions, insertions


def scale_free(seed=5, n=64, m=400):
    edges = rmat_graph(n, m, rng=seed)
    return DynamicDiGraph(map(tuple, edges.tolist()))


class TestHubSelection:
    def test_top_degree_hubs(self):
        g = DynamicDiGraph([(0, 1), (0, 2), (0, 3), (1, 2), (4, 0)])
        assert select_hubs(g, 2)[0] == 0
        with pytest.raises(ConfigError):
            select_hubs(g, 0)

    def test_auto_selection_used(self):
        g = scale_free()
        index = DynamicHubIndex(g, num_hubs=3, config=PPRConfig(epsilon=1e-3))
        assert len(index.hubs) == 3
        degrees = [g.out_degree(h) for h in index.hubs]
        assert min(degrees) >= int(np.median(g.out_degree_array()))


class TestQueries:
    @pytest.fixture(scope="class")
    def index(self):
        g = scale_free()
        return DynamicHubIndex(
            g, num_hubs=3, config=PPRConfig(alpha=0.2, epsilon=1e-5, backend=Backend.NUMPY)
        )

    def test_contribution_matches_truth(self, index):
        for hub in index.hubs:
            truth = ground_truth_ppr(index.graph, hub, 0.2)
            for v in range(0, 60, 7):
                assert index.contribution(v, hub) == pytest.approx(
                    truth[v], abs=1e-5
                )

    def test_hub_scores_embedding(self, index):
        scores = index.hub_scores(5)
        assert set(scores) == set(index.hubs)

    def test_rank_for_hub(self, index):
        hub = index.hubs[0]
        entries = index.rank_for_hub(hub, 3)
        assert entries[0].vertex == hub  # self-contribution dominates
        assert entries[0].estimate >= entries[1].estimate

    def test_unknown_hub_raises(self, index):
        with pytest.raises(VertexError):
            index.contribution(0, hub=99999)

    def test_is_hub(self, index):
        assert index.is_hub(index.hubs[0])
        assert not index.is_hub(-1 % 10**6)


class TestMaintenance:
    def test_batch_keeps_all_hubs_accurate(self):
        g = scale_free(seed=11)
        index = DynamicHubIndex(
            g, num_hubs=3, config=PPRConfig(alpha=0.2, epsilon=1e-4)
        )
        updates = insertions([(1, 2), (3, 9), (9, 1)]) + deletions(
            [(u, v) for u, v, _ in list(g.unique_edges())[:2]]
        )
        stats = index.apply_batch(updates)
        assert set(stats) == set(index.hubs)
        for hub in index.hubs:
            truth = ground_truth_ppr(index.graph, hub, 0.2)
            est = index._hub_state(hub).p[: len(truth)]
            assert np.abs(est - truth).max() <= 1e-4
        assert index.batches_processed == 1

    def test_index_size_reported(self):
        g = scale_free()
        index = DynamicHubIndex(g, num_hubs=2, config=PPRConfig(epsilon=1e-4))
        assert index.total_index_entries() > 0
        assert "hubs=2" in repr(index)


class TestValidation:
    def test_explicit_hub_not_in_graph(self):
        with pytest.raises(VertexError):
            DynamicHubIndex(DynamicDiGraph([(0, 1)]), hubs=[7])

    def test_duplicate_hubs(self):
        with pytest.raises(ConfigError):
            DynamicHubIndex(DynamicDiGraph([(0, 1)]), hubs=[0, 0])

    def test_empty_hubs(self):
        with pytest.raises(ConfigError):
            DynamicHubIndex(DynamicDiGraph([(0, 1)]), hubs=[])
