"""Golden tests against the paper's worked examples (Figures 1-3).

Every number asserted below appears in the paper's figures (alpha = 0.5,
epsilon = 0.1, source = v1). These pin the exact semantics of
RestoreInvariant (Algorithm 1), the sequential push (Algorithm 2) and the
parallel push (Algorithms 3-4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Backend,
    EdgeOp,
    EdgeUpdate,
    PPRConfig,
    PPRState,
    PushVariant,
    insertions,
    parallel_local_push,
    restore_invariant,
    sequential_local_push,
)


def converge_from_scratch(graph, config):
    state = PPRState.initial(1, graph.capacity)
    stats = parallel_local_push(state, graph, config, seeds=[1])
    return state, stats


class TestFigure3:
    """Parallel vs sequential push from scratch (parallel loss example)."""

    def test_parallel_push_final_state(self, paper_graph, paper_config):
        state, _ = converge_from_scratch(paper_graph, paper_config)
        assert np.allclose(state.p[1:5], [0.5, 0.25, 0.1875, 0.0625])
        assert np.allclose(state.r[1:5], [0.0625, 0.0, 0.0, 0.0625])

    def test_parallel_push_costs_five_pushes(self, paper_graph, paper_config):
        # Figure 3 a(1)-a(4): frontier sequence {v1}, {v2,v3}, {v3,v4}.
        _, stats = converge_from_scratch(paper_graph, paper_config)
        assert stats.pushes == 5
        assert stats.num_iterations == 3
        assert [rec.frontier_size for rec in stats.iterations] == [1, 2, 2]

    def test_sequential_push_final_state(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        stats = sequential_local_push(
            state, paper_graph, paper_config, seeds=[1], record_order=True
        )
        assert np.allclose(state.p[1:5], [0.5, 0.25, 0.1875, 0.09375])
        assert np.allclose(state.r[1:5], [0.09375, 0.0, 0.0, 0.0])
        # Figure 3 b(1)-b(5): pushes v1, v2, v3, v4 — one fewer than parallel.
        assert stats.pushes == 4
        assert stats.push_order == [1, 2, 3, 4]

    def test_parallel_loss_is_v3_pushed_twice(self, paper_graph, paper_config):
        # "The parallel push pushes {v1, v2, v3, v3, v4}."
        state = PPRState.initial(1, paper_graph.capacity)
        stats = parallel_local_push(state, paper_graph, paper_config, seeds=[1])
        frontier_sets = [rec.frontier_size for rec in stats.iterations]
        assert sum(frontier_sets) - 4 == 1  # exactly one duplicate push (v3)


class TestFigure1:
    """Single edge insertion e1 = v1 -> v2 on the converged initial state."""

    def test_restore_invariant_value(self, paper_graph, paper_config):
        state, _ = converge_from_scratch(paper_graph, paper_config)
        update = EdgeUpdate(1, 2, EdgeOp.INSERT)
        paper_graph.apply(update)
        delta = restore_invariant(state, paper_graph, update, paper_config.alpha)
        assert state.r[1] == pytest.approx(0.15625)  # figure: 0.1562
        assert delta == pytest.approx(0.09375)

    def test_convergent_state(self, paper_graph, paper_config):
        state, _ = converge_from_scratch(paper_graph, paper_config)
        update = EdgeUpdate(1, 2, EdgeOp.INSERT)
        paper_graph.apply(update)
        restore_invariant(state, paper_graph, update, paper_config.alpha)
        parallel_local_push(state, paper_graph, paper_config, seeds=[1])
        assert np.allclose(state.p[1:5], [0.578125, 0.25, 0.1875, 0.0625])
        assert np.allclose(state.r[1:5], [0.0, 0.078125, 0.0390625, 0.0625])


class TestFigure2:
    """Batch insertion {v1 -> v2, v4 -> v1}: one parallel iteration suffices."""

    def _restore_batch(self, graph, state, alpha):
        touched = []
        for update in insertions([(1, 2), (4, 1)]):
            graph.apply(update)
            restore_invariant(state, graph, update, alpha)
            touched.append(update.u)
        return touched

    def test_residuals_after_restore(self, paper_graph, paper_config):
        state, _ = converge_from_scratch(paper_graph, paper_config)
        self._restore_batch(paper_graph, state, paper_config.alpha)
        assert state.r[1] == pytest.approx(0.15625)  # figure: 0.1562
        assert state.r[4] == pytest.approx(0.21875)  # figure: 0.2187

    def test_one_iteration_convergence(self, paper_graph, paper_config):
        state, _ = converge_from_scratch(paper_graph, paper_config)
        touched = self._restore_batch(paper_graph, state, paper_config.alpha)
        stats = parallel_local_push(state, paper_graph, paper_config, seeds=touched)
        assert stats.num_iterations == 1
        assert np.allclose(state.p[1:5], [0.578125, 0.25, 0.1875, 0.171875])
        assert np.allclose(
            state.r[1:5], [0.0546875, 0.078125, 0.0390625, 0.0390625]
        )


class TestEagerPropagationOnPaperGraph:
    """Section 4.1: eager propagation removes the duplicate push of v3."""

    @pytest.mark.parametrize("backend", [Backend.PURE, Backend.NUMPY])
    def test_fully_eager_matches_sequential_count(self, paper_graph, backend):
        # workers=1: every frontier vertex sees all earlier same-iteration
        # propagation — the most eager schedule. The duplicate push vanishes.
        config = PPRConfig(
            alpha=0.5, epsilon=0.1, variant=PushVariant.OPT, backend=backend, workers=1
        )
        state = PPRState.initial(1, paper_graph.capacity)
        stats = parallel_local_push(state, paper_graph, config, seeds=[1])
        assert stats.pushes == 4

    @pytest.mark.parametrize("backend", [Backend.PURE, Backend.NUMPY])
    def test_stale_eager_still_pays_parallel_loss(self, paper_graph, backend):
        # workers >= |frontier|: reads are stale, the duplicate push returns.
        config = PPRConfig(
            alpha=0.5, epsilon=0.1, variant=PushVariant.OPT, backend=backend, workers=64
        )
        state = PPRState.initial(1, paper_graph.capacity)
        stats = parallel_local_push(state, paper_graph, config, seeds=[1])
        assert stats.pushes == 5
