"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import (
    BackendError,
    ConfigError,
    ConvergenceError,
    EdgeError,
    GraphError,
    ReproError,
    StreamError,
    VertexError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigError("x"),
            GraphError("x"),
            VertexError(1),
            EdgeError(1, 2),
            StreamError("x"),
            ConvergenceError(5, 0.1),
            BackendError("x"),
        ):
            assert isinstance(exc, ReproError)

    def test_config_error_is_value_error(self):
        assert isinstance(ConfigError("x"), ValueError)

    def test_vertex_edge_errors_are_key_errors(self):
        # KeyError compatibility: dict-like lookups can be caught naturally.
        assert isinstance(VertexError(3), KeyError)
        assert isinstance(EdgeError(1, 2), KeyError)

    def test_readable_messages(self):
        assert "3" in str(VertexError(3))
        assert "1" in str(EdgeError(1, 2)) and "2" in str(EdgeError(1, 2))
        err = ConvergenceError(100, 0.5)
        assert "100" in str(err)
        assert err.iterations == 100
        assert err.residual == 0.5

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise EdgeError(0, 1)
