"""Smoke tests: every shipped example must run end-to-end.

The examples contain their own assertions (accuracy guarantees, ranking
changes), so executing ``main()`` is a real integration test, not just an
import check.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "streaming_throughput",
        "who_to_follow",
        "local_community",
        "serving_demo",
        "http_client_demo",
    ],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_epsilon_accuracy(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "max error" in out
    assert "top-5" in out


def test_who_to_follow_isolated_community_scores_zero(capsys):
    load_example("who_to_follow").main()
    out = capsys.readouterr().out
    assert "community B is isolated" in out
