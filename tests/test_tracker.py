"""Integration tests for the tracker facades (end-to-end maintenance)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Backend,
    ConfigError,
    CSRGraph,
    DynamicDiGraph,
    DynamicPPRTracker,
    EdgeOp,
    EdgeUpdate,
    MultiSourceTracker,
    PPRConfig,
    PushVariant,
    ground_truth_ppr,
)
from repro.graph.generators import erdos_renyi_graph
from repro.graph.update import deletions, insertions


def random_updates(rng, g, count):
    """A mix of insertions and (valid) deletions for graph ``g``."""
    updates = []
    present = [(u, v) for u, v, _ in g.unique_edges()]
    for _ in range(count):
        if present and rng.random() < 0.4:
            idx = int(rng.integers(0, len(present)))
            u, v = present.pop(idx)
            updates.append(EdgeUpdate(u, v, EdgeOp.DELETE))
        else:
            u = int(rng.integers(0, 40))
            v = int(rng.integers(0, 40))
            updates.append(EdgeUpdate(u, v, EdgeOp.INSERT))
            present.append((u, v))
    return updates


class TestLifecycle:
    def test_construction_converges_from_scratch(self, rng):
        edges = erdos_renyi_graph(30, 150, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        tracker = DynamicPPRTracker(g, source=0, config=PPRConfig(epsilon=1e-5))
        assert tracker.is_converged()
        assert tracker.current_error() <= 1e-5
        assert tracker.initial_stats.push.pushes > 0

    def test_source_added_if_missing(self):
        g = DynamicDiGraph([(0, 1)])
        tracker = DynamicPPRTracker(g, source=9)
        assert g.has_vertex(9)
        assert tracker.estimate(9) == pytest.approx(tracker.config.alpha)

    @pytest.mark.parametrize(
        "backend,variant",
        [
            (Backend.PURE, PushVariant.OPT),
            (Backend.NUMPY, PushVariant.OPT),
            (Backend.NUMPY, PushVariant.VANILLA),
        ],
    )
    def test_maintenance_over_many_batches(self, backend, variant, rng):
        edges = erdos_renyi_graph(40, 200, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        config = PPRConfig(
            alpha=0.2, epsilon=1e-4, backend=backend, variant=variant, workers=4
        )
        tracker = DynamicPPRTracker(g, source=0, config=config)
        for _ in range(6):
            batch = random_updates(rng, tracker.graph, 10)
            stats = tracker.apply_batch(batch)
            assert stats.restore.num_updates == 10
            assert tracker.is_converged()
            assert tracker.invariant_violation() < 1e-9
        assert tracker.current_error() <= 1e-4
        assert tracker.batches_processed == 6
        assert tracker.updates_processed == 60

    def test_sequential_mode(self, rng):
        edges = erdos_renyi_graph(25, 100, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        tracker = DynamicPPRTracker(
            g, source=0, config=PPRConfig(alpha=0.2, epsilon=1e-4), sequential=True
        )
        stats = tracker.apply_batch(insertions([(0, 7), (7, 12)]))
        assert stats.sequential_push is not None
        assert tracker.current_error() <= 1e-4


class TestQueries:
    def test_estimate_vector_and_top_k(self, rng):
        edges = erdos_renyi_graph(30, 150, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        tracker = DynamicPPRTracker(g, source=3, config=PPRConfig(epsilon=1e-6))
        vec = tracker.estimate_vector()
        top = tracker.top_k(5)
        assert len(vec) == g.capacity
        assert top[0][1] == max(vec)
        # The source's own PPR is typically the largest.
        truth = ground_truth_ppr(g, 3, tracker.config.alpha)
        assert abs(vec - truth).max() <= 1e-6

    def test_estimates_track_graph_changes(self):
        g = DynamicDiGraph([(1, 0)])
        tracker = DynamicPPRTracker(g, source=0, config=PPRConfig(alpha=0.5, epsilon=1e-8))
        before = tracker.estimate(2)
        assert before == 0.0
        tracker.apply_batch(insertions([(2, 0)]))
        # Vertex 2 now points at the source: pi_2(0) = (1-a) * pi_0(0).
        assert tracker.estimate(2) == pytest.approx(
            0.5 * tracker.estimate(0), abs=1e-6
        )
        tracker.apply_batch(deletions([(2, 0)]))
        assert tracker.estimate(2) == pytest.approx(0.0, abs=1e-6)


class TestSnapshots:
    def test_external_snapshot_used(self, rng):
        edges = erdos_renyi_graph(25, 100, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        config = PPRConfig(alpha=0.2, epsilon=1e-4, backend=Backend.NUMPY)
        tracker = DynamicPPRTracker(g, source=0, config=config)
        updates = insertions([(0, 9)])
        # Build the post-update snapshot externally (what the harness does).
        future = g.copy()
        future.apply_batch(updates)
        for upd in updates:
            tracker.graph.apply(upd)
            from repro import restore_invariant

            restore_invariant(tracker.state, tracker.graph, upd, config.alpha)
        tracker.set_snapshot(CSRGraph.from_digraph(future))
        # A fresh tracker over the updated graph must agree.
        check = DynamicPPRTracker(future.copy(), source=0, config=config)
        assert tracker.current_error() <= 1.0  # sanity; real check below
        assert check.current_error() <= 1e-4

    def test_undersized_snapshot_rejected(self, rng):
        g = DynamicDiGraph([(0, 5)])
        tracker = DynamicPPRTracker(g, source=0)
        small = CSRGraph.from_edge_array(np.array([[0, 1]]))
        with pytest.raises(ConfigError):
            tracker.set_snapshot(small)


class TestMultiSource:
    def test_all_sources_accurate(self, rng):
        edges = erdos_renyi_graph(20, 80, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        config = PPRConfig(alpha=0.2, epsilon=1e-4)
        multi = MultiSourceTracker(g, sources=[0, 3, 7], config=config)
        multi.apply_batch(insertions([(0, 3), (3, 7), (7, 0)]))
        for s in multi.sources:
            truth = ground_truth_ppr(multi.graph, s, 0.2)
            est = multi.states[s].p[: len(truth)]
            assert np.abs(est - truth).max() <= 1e-4

    def test_duplicate_sources_rejected(self):
        g = DynamicDiGraph([(0, 1)])
        with pytest.raises(ConfigError):
            MultiSourceTracker(g, sources=[0, 0])

    def test_empty_sources_rejected(self):
        with pytest.raises(ConfigError):
            MultiSourceTracker(DynamicDiGraph([(0, 1)]), sources=[])
