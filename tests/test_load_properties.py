"""Property-based tests (hypothesis) for admission control and shedding.

The laws the overload path rests on (see ``docs/load.md``):

1. **conservation** — for *any* interleaving of offers and polls, no
   request is lost or double-counted: ``offered == accepted + shed`` and
   ``accepted == polled + expired + depth`` at every instant;
2. **FIFO per priority** — within one priority class, entries are served
   in exactly their offer order, and the served entry is always from the
   highest-priority non-empty class;
3. **shed order** — ANY is always refused at or before BOUNDED, BOUNDED
   at or before CRITICAL, and ADMIN is never refused: a FRESH read or a
   write is *never* shed while an ANY read at the same depth would have
   been admitted;
4. the thread-safe :class:`~repro.api.admission.AdmissionController`
   applies the same thresholds and conserves its depth across arbitrary
   admit/release interleavings.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.admission import (
    AdmissionController,
    AdmissionQueue,
    Priority,
    priority_of,
    shed_threshold,
)
from repro.api.requests import (
    ANY,
    FRESH,
    Consistency,
    Health,
    IngestBatch,
    Prefetch,
    Stats,
    TopKQuery,
)
from repro.errors import OverloadError
from repro.graph.update import EdgeOp, EdgeUpdate

SERVEABLE = [Priority.ANY, Priority.BOUNDED, Priority.CRITICAL, Priority.ADMIN]


@st.composite
def queue_scripts(draw, max_ops=60):
    """A capacity plus an interleaved offer/poll script over virtual time."""
    capacity = draw(st.integers(1, 8))
    ops = []
    clock = 0.0
    for _ in range(draw(st.integers(1, max_ops))):
        clock += draw(st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False))
        if draw(st.booleans()):
            priority = draw(st.sampled_from(SERVEABLE))
            ttl = draw(
                st.one_of(
                    st.none(),
                    st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False),
                )
            )
            ops.append(("offer", clock, priority, ttl))
        else:
            ops.append(("poll", clock, None, None))
    return capacity, ops


@given(queue_scripts())
@settings(max_examples=120)
def test_conservation_and_fifo_under_any_interleaving(script):
    capacity, ops = script
    queue = AdmissionQueue(capacity)
    offered = 0
    # Model: per-class list of seqs in admitted order, to check FIFO.
    admitted_order: dict[Priority, list[int]] = {p: [] for p in Priority}
    served_order: dict[Priority, list[int]] = {p: [] for p in Priority}
    next_seq = 0

    for op, now, priority, ttl in ops:
        if op == "offer":
            offered += 1
            expires = None if ttl is None else now + ttl
            before = queue.depth
            ok = queue.offer(("payload", offered), priority, expires_at=expires)
            if ok:
                next_seq += 1
                admitted_order[priority].append(next_seq)
                assert queue.depth == before + 1
            else:
                # Shed exactly when at/past the class threshold, and the
                # depth bound always holds.
                assert before >= shed_threshold(priority, capacity)
                assert queue.depth == before
        else:
            ticket = queue.poll(now=now)
            if ticket is not None:
                served_order[ticket.priority].append(ticket.seq)
                # Highest-priority non-empty class is served first: no
                # queued entry of a higher class may remain.
                for higher in Priority:
                    if higher > ticket.priority:
                        assert not queue._queues[higher]

        # Conservation at every instant.
        assert queue.offered == offered
        assert offered == sum(queue.accepted.values()) + sum(queue.shed.values())
        assert sum(queue.accepted.values()) == (
            sum(queue.polled.values())
            + sum(queue.expired.values())
            + queue.depth
        )
        # Depth is bounded for serveable traffic; only never-shed ADMIN
        # probes may stack past capacity.
        assert queue.depth - len(queue._queues[Priority.ADMIN]) <= capacity

    # FIFO within each class: served seqs are a monotone subsequence of
    # the admitted order (expired entries may be skipped, never reordered).
    for priority in Priority:
        admitted = admitted_order[priority]
        served = served_order[priority]
        positions = [queue_position(admitted, seq) for seq in served]
        assert positions == sorted(positions)


def queue_position(admitted: list[int], seq: int) -> int:
    # seq values are globally unique per ticket; find the admit index.
    matches = [i for i, s in enumerate(admitted) if s == seq]
    assert len(matches) <= 1
    return matches[0] if matches else -1


@given(st.integers(1, 16), st.integers(0, 16))
@settings(max_examples=60)
def test_shed_order_is_monotone_in_priority(capacity, depth):
    """If a class is admitted at some depth, every higher class is too."""
    thresholds = [
        shed_threshold(Priority.ANY, capacity),
        shed_threshold(Priority.BOUNDED, capacity),
        shed_threshold(Priority.CRITICAL, capacity),
        shed_threshold(Priority.ADMIN, capacity),
    ]
    assert thresholds == sorted(thresholds)
    # CRITICAL is only refused when the queue is truly full, ADMIN never.
    assert thresholds[2] == capacity
    assert thresholds[3] > capacity


@given(queue_scripts())
@settings(max_examples=80)
def test_fresh_never_shed_while_any_would_be_admitted(script):
    """Replay a script and, at every offer, probe the counterfactual."""
    capacity, ops = script
    queue = AdmissionQueue(capacity)
    for op, now, priority, ttl in ops:
        if op == "offer":
            depth = queue.depth
            critical_refused = depth >= shed_threshold(
                Priority.CRITICAL, capacity
            )
            any_admitted = depth < shed_threshold(Priority.ANY, capacity)
            # The policy's defining asymmetry.
            assert not (critical_refused and any_admitted)
            queue.offer("x", priority, expires_at=None if ttl is None else now + ttl)
        else:
            queue.poll(now=now)


@st.composite
def controller_scripts(draw, max_ops=50):
    capacity = draw(st.integers(1, 6))
    requests = [
        TopKQuery(source=0, k=3, consistency=ANY),
        TopKQuery(source=1, k=3, consistency=Consistency.bounded(2)),
        TopKQuery(source=2, k=3, consistency=FRESH),
        IngestBatch(updates=(EdgeUpdate(0, 1, EdgeOp.INSERT),)),
        Prefetch(sources=(1, 2)),
        Stats(),
        Health(),
    ]
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("admit"), st.sampled_from(requests)),
                st.tuples(st.just("release"), st.none()),
            ),
            min_size=1,
            max_size=max_ops,
        )
    )
    return capacity, ops


@given(controller_scripts())
@settings(max_examples=100)
def test_controller_matches_thresholds_and_conserves_depth(script):
    capacity, ops = script
    gate = AdmissionController(capacity)
    outstanding = 0
    for op, request in ops:
        if op == "admit":
            priority = priority_of(request)
            depth = gate.depth
            assert depth == outstanding
            try:
                gate.admit(request)
            except OverloadError as exc:
                assert priority is not Priority.ADMIN
                assert depth >= shed_threshold(priority, capacity)
                details = exc.details()
                assert details["depth"] == depth
                assert details["limit"] == capacity
                assert details["priority"] == priority.name.lower()
            else:
                assert (
                    priority is Priority.ADMIN
                    or depth < shed_threshold(priority, capacity)
                )
                outstanding += 1
        else:
            gate.release()
            outstanding = max(0, outstanding - 1)
    report = gate.to_dict()
    assert report["depth"] == outstanding
    assert sum(report["admitted"].values()) >= outstanding


def test_admin_requests_always_admitted_even_at_full_depth():
    gate = AdmissionController(2)
    gate.admit(IngestBatch(updates=(EdgeUpdate(0, 1, EdgeOp.INSERT),)))
    gate.admit(IngestBatch(updates=(EdgeUpdate(1, 2, EdgeOp.INSERT),)))
    with pytest.raises(OverloadError):
        gate.admit(TopKQuery(source=0, k=3, consistency=FRESH))
    # Observability still gets through a saturated gate.
    gate.admit(Stats())
    gate.admit(Health())
