"""Tests for edge streams and the sliding-window model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicDiGraph, EdgeStream, SlidingWindow, StreamError
from repro.graph.stream import random_permutation_stream
from repro.graph.update import EdgeOp


def stream_edges(m=100):
    return np.column_stack(
        [np.arange(m, dtype=np.int64), np.arange(m, dtype=np.int64) + 1]
    )


class TestEdgeStream:
    def test_take_and_peek(self):
        s = EdgeStream(stream_edges())
        assert len(s) == 100
        first = s.peek(3)
        assert s.position == 0
        taken = s.take(3)
        assert np.array_equal(first, taken)
        assert s.position == 3
        assert s.remaining == 97

    def test_exhaustion(self):
        s = EdgeStream(stream_edges(5))
        s.take(5)
        with pytest.raises(StreamError):
            s.take(1)
        s.reset()
        assert s.remaining == 5

    def test_bad_shape(self):
        with pytest.raises(StreamError):
            EdgeStream(np.zeros((3, 3), dtype=np.int64))


class TestRandomPermutation:
    def test_permutation_preserves_multiset(self, rng):
        edges = stream_edges(50)
        shuffled = random_permutation_stream(edges, rng)
        assert sorted(map(tuple, shuffled.tolist())) == sorted(
            map(tuple, edges.tolist())
        )

    def test_deterministic_with_seed(self):
        edges = stream_edges(50)
        a = random_permutation_stream(edges, 3)
        b = random_permutation_stream(edges, 3)
        assert np.array_equal(a, b)


class TestSlidingWindow:
    def test_initialization_takes_first_10_percent(self):
        w = SlidingWindow(stream_edges(100), batch_size=2)
        assert w.window_size == 10
        assert np.array_equal(w.initial_edges, stream_edges(100)[:10])

    def test_slide_semantics(self):
        edges = stream_edges(100)
        w = SlidingWindow(edges, batch_size=3)
        slide = w.slide()
        assert slide.step == 1
        assert np.array_equal(slide.insert_edges, edges[10:13])
        assert np.array_equal(slide.delete_edges, edges[0:3])
        # updates = insertions then deletions
        assert [u.op for u in slide.updates] == [EdgeOp.INSERT] * 3 + [EdgeOp.DELETE] * 3

    def test_window_contents_invariant(self):
        """After any number of slides, a graph replaying the updates equals
        the graph of the current window edge array."""
        edges = stream_edges(200)
        w = SlidingWindow(edges, batch_size=7)
        g = DynamicDiGraph(map(tuple, w.initial_edges.tolist()))
        for slide in w.slides(10):
            g.apply_batch(slide.updates)
            expected = DynamicDiGraph(map(tuple, w.window_edge_array().tolist()))
            # Vertex ids persist after isolation, so compare edge multisets.
            assert sorted(g.edges()) == sorted(expected.edges())

    def test_window_size_constant(self):
        w = SlidingWindow(stream_edges(200), batch_size=5)
        for slide in w.slides(5):
            assert len(slide.insert_edges) == len(slide.delete_edges) == 5
        assert len(w.window_edge_array()) == w.window_size

    def test_undirected_expansion(self):
        w = SlidingWindow(stream_edges(100), batch_size=2, undirected=True)
        slide = w.slide()
        assert slide.num_updates == 8  # (2 ins + 2 del) x 2 directions
        assert slide.num_stream_edges == 2
        us = slide.updates
        assert us[0].reversed() == us[1]

    def test_exhaustion(self):
        w = SlidingWindow(stream_edges(20), batch_size=2)  # window = 2
        assert w.num_slides_available == 9
        assert len(list(w.slides(100))) == 9
        with pytest.raises(StreamError):
            w.slide()

    def test_batch_for_fraction(self):
        assert SlidingWindow.batch_for_fraction(1000, 0.01) == 10
        assert SlidingWindow.batch_for_fraction(10, 0.0001) == 1
        with pytest.raises(StreamError):
            SlidingWindow.batch_for_fraction(100, 0.0)

    def test_validation(self):
        with pytest.raises(StreamError):
            SlidingWindow(stream_edges(100), batch_size=0)
        with pytest.raises(StreamError):
            SlidingWindow(stream_edges(100), batch_size=50)  # > window
        with pytest.raises(StreamError):
            SlidingWindow(stream_edges(100), batch_size=1, window_fraction=0.0)
