"""Unit tests for the dynamic directed multigraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicDiGraph, EdgeError, EdgeOp, EdgeUpdate, VertexError
from repro.graph.update import deletions, insertions


class TestVertices:
    def test_add_vertex_idempotent(self):
        g = DynamicDiGraph()
        g.add_vertex(3)
        g.add_vertex(3)
        assert g.num_vertices == 1
        assert g.has_vertex(3)
        assert not g.has_vertex(2)

    def test_negative_vertex_rejected(self):
        g = DynamicDiGraph()
        with pytest.raises(VertexError):
            g.add_vertex(-1)

    def test_capacity_tracks_max_id(self):
        g = DynamicDiGraph()
        assert g.capacity == 0
        g.add_edge(2, 7)
        assert g.max_vertex_id == 7
        assert g.capacity == 8

    def test_vertices_survive_isolation(self):
        # The paper's model discards zero-degree vertices; we keep ids
        # stable for the state arrays (documented deviation).
        g = DynamicDiGraph([(0, 1)])
        g.remove_edge(0, 1)
        assert g.has_vertex(0) and g.has_vertex(1)
        assert g.out_degree(0) == 0


class TestEdges:
    def test_add_remove_roundtrip(self):
        g = DynamicDiGraph()
        g.add_edge(0, 1)
        assert g.has_edge(0, 1)
        assert g.num_edges == 1
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 0

    def test_multiplicity(self):
        g = DynamicDiGraph()
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        g.add_edge(0, 1, count=3)
        assert g.multiplicity(0, 1) == 5
        assert g.out_degree(0) == 5
        assert g.in_degree(1) == 5
        g.remove_edge(0, 1, count=4)
        assert g.multiplicity(0, 1) == 1

    def test_remove_more_than_exists_raises(self):
        g = DynamicDiGraph([(0, 1)])
        with pytest.raises(EdgeError):
            g.remove_edge(0, 1, count=2)
        with pytest.raises(EdgeError):
            g.remove_edge(1, 0)

    def test_edges_iteration_expands_multiplicity(self):
        g = DynamicDiGraph()
        g.add_edge(0, 1, count=2)
        g.add_edge(1, 2)
        assert sorted(g.edges()) == [(0, 1), (0, 1), (1, 2)]
        assert sorted(g.unique_edges()) == [(0, 1, 2), (1, 2, 1)]

    def test_self_loop_allowed(self):
        # Nothing in the scheme forbids self loops; dout counts them.
        g = DynamicDiGraph([(0, 0)])
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 1


class TestDegrees:
    def test_degree_arrays(self):
        g = DynamicDiGraph([(0, 2), (1, 2), (2, 0)])
        assert g.out_degree_array().tolist() == [1, 1, 1]
        assert g.in_degree_array().tolist() == [1, 0, 2]
        assert g.out_degree_array(capacity=5).tolist() == [1, 1, 1, 0, 0]

    def test_average_degree(self):
        g = DynamicDiGraph([(0, 1), (1, 2), (2, 0), (0, 2)])
        assert g.average_degree == pytest.approx(4 / 3)
        assert DynamicDiGraph().average_degree == 0.0

    def test_neighbor_iteration(self):
        g = DynamicDiGraph([(0, 1), (2, 1), (2, 1)])
        assert dict(g.in_neighbors(1)) == {0: 1, 2: 2}
        assert dict(g.out_neighbors(2)) == {1: 2}
        assert dict(g.in_neighbors(99)) == {}


class TestUpdates:
    def test_apply_insert_delete(self):
        g = DynamicDiGraph()
        g.apply(EdgeUpdate(0, 1, EdgeOp.INSERT))
        assert g.has_edge(0, 1)
        g.apply(EdgeUpdate(0, 1, EdgeOp.DELETE))
        assert not g.has_edge(0, 1)

    def test_apply_batch(self):
        g = DynamicDiGraph()
        n = g.apply_batch(insertions([(0, 1), (1, 2)]) + deletions([(0, 1)]))
        assert n == 3
        assert g.num_edges == 1

    def test_batch_respects_order(self):
        g = DynamicDiGraph()
        # Deleting before inserting must fail: order matters.
        with pytest.raises(EdgeError):
            g.apply_batch(deletions([(0, 1)]) + insertions([(0, 1)]))


class TestConstructionAndCopy:
    def test_from_undirected(self):
        g = DynamicDiGraph.from_undirected_edges([(0, 1), (1, 2)])
        assert g.num_edges == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_copy_is_deep(self):
        g = DynamicDiGraph([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g != h
        assert g == DynamicDiGraph([(0, 1)])

    def test_edge_array_roundtrip(self):
        g = DynamicDiGraph([(0, 1), (0, 1), (2, 0)])
        arr = g.edge_array()
        assert arr.shape == (3, 2)
        h = DynamicDiGraph(map(tuple, arr.tolist()))
        assert g == h

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DynamicDiGraph())

    def test_consistency_checker(self, rng):
        g = DynamicDiGraph()
        for _ in range(200):
            u, v = int(rng.integers(0, 12)), int(rng.integers(0, 12))
            if g.has_edge(u, v) and rng.random() < 0.4:
                g.remove_edge(u, v)
            else:
                g.add_edge(u, v)
        g.check_consistency()

    def test_repr(self):
        assert "n=2" in repr(DynamicDiGraph([(0, 1)]))
