"""Property-based tests (hypothesis) for the durable-store codecs.

Round-trip laws the store's crash-recovery guarantee rests on:

1. any update batch survives the WAL frame codec exactly;
2. any sequence of batches written to a WAL is read back exactly — and
   truncating the file at *any* byte length still yields an intact
   prefix of whole records (torn tails never corrupt earlier frames);
3. any :class:`PPRState` (including denormals, huge magnitudes, negative
   residuals) survives ``to_arrays``/``from_arrays`` bit-for-bit;
4. any reachable :class:`DynamicDiGraph` survives its codec with dict
   iteration order — hence CSR layout — preserved exactly;
5. a full checkpoint of a service rebuilt from random update batches
   restores states that replay to bit-identical answers.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DynamicDiGraph, PPRState
from repro.graph.csr import CSRGraph
from repro.graph.update import EdgeOp, EdgeUpdate
from repro.store.wal import (
    WriteAheadLog,
    decode_updates,
    encode_updates,
    scan_segment,
)

N_VERTICES = 12


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

edge_updates = st.builds(
    EdgeUpdate,
    u=st.integers(0, N_VERTICES - 1),
    v=st.integers(0, N_VERTICES - 1),
    op=st.sampled_from([EdgeOp.INSERT, EdgeOp.DELETE]),
)

update_batches = st.lists(edge_updates, max_size=20)


@st.composite
def applied_update_sequences(draw, max_updates=30):
    """An update sequence valid to apply in order (deletes touch live edges)."""
    multiplicity: dict[tuple[int, int], int] = {}
    updates: list[EdgeUpdate] = []
    for _ in range(draw(st.integers(1, max_updates))):
        live = [e for e, c in multiplicity.items() if c > 0]
        if live and draw(st.booleans()):
            u, v = draw(st.sampled_from(live))
            multiplicity[(u, v)] -= 1
            updates.append(EdgeUpdate(u, v, EdgeOp.DELETE))
        else:
            u = draw(st.integers(0, N_VERTICES - 1))
            v = draw(st.integers(0, N_VERTICES - 1))
            multiplicity[(u, v)] = multiplicity.get((u, v), 0) + 1
            updates.append(EdgeUpdate(u, v, EdgeOp.INSERT))
    return updates


finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


# ---------------------------------------------------------------------- #
# 1-2: WAL
# ---------------------------------------------------------------------- #


@given(update_batches)
def test_wal_frame_codec_roundtrip(batch):
    assert decode_updates(encode_updates(batch)) == batch


@given(st.lists(update_batches, min_size=1, max_size=6), st.data())
@settings(max_examples=25)
def test_wal_write_read_and_arbitrary_truncation(tmp_path_factory, batches, data):
    tmp_path = tmp_path_factory.mktemp("wal")
    wal = WriteAheadLog(tmp_path)
    segment = None
    for seq, batch in enumerate(batches, start=1):
        segment = wal.append(seq, batch)
    wal.close()

    scan = scan_segment(segment)
    assert scan.clean
    assert [list(r.updates) for r in scan.records] == batches

    # Chop the file at a random byte length: the surviving records must be
    # an exact prefix, decoded identically — never garbage, never a gap.
    size = segment.stat().st_size
    cut = data.draw(st.integers(0, size))
    segment.write_bytes(segment.read_bytes()[:cut])
    partial = scan_segment(segment)
    kept = len(partial.records)
    assert [list(r.updates) for r in partial.records] == batches[:kept]
    assert partial.valid_bytes <= cut


# ---------------------------------------------------------------------- #
# 3: PPRState codec
# ---------------------------------------------------------------------- #


@given(
    source=st.integers(0, 30),
    values=st.lists(st.tuples(finite_floats, finite_floats), max_size=40),
)
def test_ppr_state_codec_bit_exact(source, values):
    state = PPRState(source, capacity=max(len(values), source + 1))
    for i, (p, r) in enumerate(values):
        state.p[i] = p
        state.r[i] = r
    clone = PPRState.from_arrays(state.to_arrays())
    assert clone.source == state.source
    assert clone.capacity == state.capacity
    # Bitwise, not just numeric, equality (covers -0.0 and denormals).
    assert np.array_equal(
        clone.p.view(np.uint64), state.p.view(np.uint64)
    )
    assert np.array_equal(
        clone.r.view(np.uint64), state.r.view(np.uint64)
    )


# ---------------------------------------------------------------------- #
# 4: graph codec preserves structure AND iteration order
# ---------------------------------------------------------------------- #


@given(applied_update_sequences())
def test_graph_codec_roundtrip_preserves_csr_layout(updates):
    graph = DynamicDiGraph()
    for update in updates:
        graph.apply(update)
    clone = DynamicDiGraph.from_arrays(graph.to_arrays())
    clone.check_consistency()
    assert clone == graph
    assert clone.num_edges == graph.num_edges
    assert list(clone.vertices()) == list(graph.vertices())
    if graph.capacity:
        a = CSRGraph.from_digraph(graph)
        b = CSRGraph.from_digraph(clone)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)  # order-exact blocks
        assert np.array_equal(a.dout, b.dout)


# ---------------------------------------------------------------------- #
# 5: checkpointed states replay bit-exactly
# ---------------------------------------------------------------------- #


@given(applied_update_sequences(max_updates=20))
@settings(max_examples=10)
def test_checkpointed_service_replays_bit_exact(tmp_path_factory, updates):
    from repro import Backend, PPRConfig, PPRService, ServeConfig
    from repro.store.checkpoint import (
        read_checkpoint,
        restore_service,
        write_checkpoint,
    )

    tmp_path = tmp_path_factory.mktemp("ckpt")
    config = PPRConfig(epsilon=1e-4, backend=Backend.NUMPY, workers=4)
    base = [(u, (u + 1) % N_VERTICES) for u in range(N_VERTICES)]
    half = len(updates) // 2

    service = PPRService(DynamicDiGraph(base), config, ServeConfig(cache_capacity=4))
    service.query_many([0, 1])
    if updates[:half]:
        service.ingest(updates[:half])
    path = write_checkpoint(tmp_path, service)
    restored = restore_service(read_checkpoint(path))

    tail = updates[half:]
    if tail:
        service.ingest(tail)
        restored.ingest(tail)
    for s in (0, 1):
        assert restored.query(s, 5).entries == service.query(s, 5).entries
