"""HTTP front-end tests: live round-trips against an ephemeral server.

Spins a real :class:`repro.api.GatewayHTTPServer` on an OS-assigned port
and exercises the JSON protocol end to end: query/ingest/stats/healthz
round-trips bit-identical to the embedded client, the scheduled
``{"requests": [...]}`` form, and the 4xx paths (malformed JSON, unknown
route, unknown op, bad field types, version conflicts).
"""

from __future__ import annotations

import json
import re
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import Backend, PPRConfig, PPRService, ServeConfig
from repro.api import HttpClient, make_server
from repro.errors import ConflictError, RequestError, VertexError

from tests.conftest import random_graph

NUMPY_CONFIG = PPRConfig(epsilon=1e-6, backend=Backend.NUMPY, workers=4)


@pytest.fixture()
def live():
    """(server, HttpClient, service) on an ephemeral port; torn down after."""
    graph = random_graph(np.random.default_rng(13), n=40, m=200)
    service = PPRService(
        graph, NUMPY_CONFIG, ServeConfig(cache_capacity=16, admission_batch=4)
    )
    server = make_server(service.gateway, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, HttpClient(server.url), service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def raw_post(url: str, body: bytes) -> urllib.error.HTTPError | dict:
    request = urllib.request.Request(
        url, data=body, method="POST", headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc


class TestRoundTrips:
    def test_topk_bit_identical_to_embedded_client(self, live):
        _, http, service = live
        answer = http.query({"source": 0, "k": 5})
        # The HTTP query itself ran first; the embedded twin reads the
        # same resident state at the same snapshot version.
        embedded = service.api.top_k(0, k=5)
        assert answer["ok"]
        assert answer["cold"]  # first query of this source admits it
        assert not embedded.cold  # the twin reads the now-resident state
        assert answer["snapshot_version"] == embedded.snapshot_version
        assert [(e["vertex"], e["estimate"]) for e in answer["entries"]] == [
            (e.vertex, e.estimate) for e in embedded.entries
        ]

    def test_scheduled_request_sequence(self, live):
        _, http, service = live
        responses = http.query_many(
            [
                {"op": "top_k", "source": 0, "k": 3},
                {"op": "ingest", "updates": [[0, 1]]},
                {"op": "top_k", "source": 0, "k": 3},
            ]
        )
        assert [r["op"] for r in responses] == ["top_k", "ingest", "top_k"]
        assert [r["snapshot_version"] for r in responses] == [0, 1, 1]
        assert service.graph_version == 1

    def test_ingest_endpoint_and_conflict(self, live):
        _, http, service = live
        acknowledged = http.ingest([[0, 1], [1, 0, "insert"]], expect_version=0)
        assert acknowledged["accepted"] == 2
        assert acknowledged["previous_version"] == 0
        assert acknowledged["snapshot_version"] == 1
        with pytest.raises(ConflictError):
            http.ingest([[1, 2]], expect_version=0)

    def test_stats_and_healthz(self, live):
        _, http, service = live
        http.query({"source": 0})
        stats = http.stats()
        assert stats["ok"]
        assert stats["stats"]["queries"] == 1
        assert stats["stats"]["gateway"]["top_k"] == 1
        health = http.healthz()
        assert health["status"] == "ok"
        assert health["num_vertices"] == service.graph.num_vertices
        assert health["num_edges"] == service.graph.num_edges

    def test_score_and_consistency_over_http(self, live):
        _, http, _ = live
        top = http.query({"source": 0, "k": 1})
        best = top["entries"][0]
        score = http.query(
            {"op": "score", "source": 0, "target": best["vertex"],
             "consistency": "any"}
        )
        assert score["estimate"] == best["estimate"]


class TestErrorPaths:
    def test_malformed_json_is_400(self, live):
        server, _, _ = live
        error = raw_post(f"{server.url}/v1/query", b"{definitely not json")
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400
        body = json.loads(error.read())
        assert body["error"]["code"] == "REQUEST"

    def test_empty_body_is_400(self, live):
        server, _, _ = live
        error = raw_post(f"{server.url}/v1/query", b"")
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400

    def test_unknown_route_is_404(self, live):
        server, _, _ = live
        for method, route in (("GET", "/v1/nope"), ("POST", "/v2/query")):
            request = urllib.request.Request(
                f"{server.url}{route}",
                data=b"{}" if method == "POST" else None,
                method=method,
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 404
            assert json.loads(excinfo.value.read())["error"]["code"] == "REQUEST"

    def test_unknown_op_is_400_with_request_code(self, live):
        _, http, _ = live
        with pytest.raises(RequestError):
            http.query({"op": "frobnicate"})

    def test_bad_field_types_are_400(self, live):
        server, _, _ = live
        error = raw_post(
            f"{server.url}/v1/query", json.dumps({"source": "zero"}).encode()
        )
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400

    def test_unknown_score_target_is_404_vertex(self, live):
        server, http, _ = live
        with pytest.raises(VertexError):
            http.query({"op": "score", "source": 0, "target": 10**9})
        error = raw_post(
            f"{server.url}/v1/query",
            json.dumps({"op": "score", "source": 0, "target": 10**9}).encode(),
        )
        assert isinstance(error, urllib.error.HTTPError) and error.code == 404

    def test_batch_of_requests_with_one_bad_entry_is_400(self, live):
        server, _, _ = live
        error = raw_post(
            f"{server.url}/v1/query",
            json.dumps({"requests": [{"source": 0}, {"op": "nope"}]}).encode(),
        )
        # Parse failures void the whole schedule (atomic admission).
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400

    def test_ingest_body_must_be_object(self, live):
        server, _, _ = live
        error = raw_post(f"{server.url}/v1/ingest", json.dumps([1, 2]).encode())
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400


def raw_get(url: str) -> tuple[int, dict, bytes]:
    request = urllib.request.Request(url, method="GET")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


def scrape(server) -> dict[str, float]:
    """Parse /v1/metrics into {sample_name_with_labels: value}."""
    status, headers, body = raw_get(f"{server.url}/v1/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    samples: dict[str, float] = {}
    for line in body.decode().splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


class TestMetricsEndpoint:
    def test_exposition_format_is_parseable(self, live):
        server, http, _ = live
        http.query({"op": "top_k", "source": 0, "k": 3})
        # Pre-create the request.stats histogram stage: scraping runs a
        # Stats request itself, and the two scrapes below must expose
        # the same sample *names*.
        http.query({"op": "stats"})
        status, headers, body = raw_get(f"{server.url}/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4"
        lines = body.decode().splitlines()
        assert lines, "metrics body must not be empty"
        sample_re = re.compile(
            r'^[a-z_][a-z0-9_]*(\{[a-z0-9_]+="[^"]*"(,[a-z0-9_]+="[^"]*")*\})?'
            r" [-+]?[0-9.e+-]+$"
        )
        helped: set[str] = set()
        typed: set[str] = set()
        for line in lines:
            if line.startswith("# HELP "):
                helped.add(line.split(" ", 3)[2])
            elif line.startswith("# TYPE "):
                typed.add(line.split(" ", 3)[2])
            else:
                assert sample_re.match(line), f"unparseable sample: {line!r}"
                base = line.split("{", 1)[0].split(" ", 1)[0]
                # Histogram series share their family's announcement.
                for suffix in ("_bucket", "_sum", "_count"):
                    if base not in helped and base.endswith(suffix):
                        base = base[: -len(suffix)]
                # Every sample is announced before it appears.
                assert base in helped and base in typed
        # The text client sees the same exposition (scraping bumps the
        # stats counter, so compare sample names, not values).
        client_names = {
            line.rsplit(" ", 1)[0]
            for line in http.metrics().splitlines()
            if line and not line.startswith("#")
        }
        raw_names = {
            line.rsplit(" ", 1)[0]
            for line in body.decode().splitlines()
            if line and not line.startswith("#")
        }
        assert client_names == raw_names

    def test_counters_are_monotone_across_scrapes(self, live):
        server, http, _ = live
        http.query({"op": "top_k", "source": 0, "k": 3})
        before = scrape(server)
        for source in (0, 1, 2):
            http.query({"op": "top_k", "source": source, "k": 3})
        after = scrape(server)
        key = 'repro_gateway_requests_total{op="top_k"}'
        assert after[key] == before[key] + 3
        assert after["repro_queries_total"] >= before["repro_queries_total"]
        # Scrapes themselves never perturb request counters.
        untouched = scrape(server)
        assert untouched[key] == after[key]

    def test_prometheus_naming_conventions(self, live):
        server, http, _ = live
        http.query({"op": "top_k", "source": 0, "k": 3})
        samples = scrape(server)
        assert "repro_queries_total" in samples  # counters get _total
        assert "repro_hit_rate" in samples  # gauges do not
        # Point-in-time percentile gauges stay in /v1/stats JSON only;
        # the scrape surface carries cumulative histograms instead.
        assert "repro_latency_p999_s" not in samples
        assert all(name.startswith("repro_") for name in samples)

    def test_latency_is_a_cumulative_histogram_per_stage(self, live):
        server, http, _ = live
        http.query({"op": "top_k", "source": 0, "k": 3})
        samples = scrape(server)
        stage = 'stage="request.top_k"'
        count_key = f"repro_latency_seconds_count{{{stage}}}"
        assert samples[count_key] >= 1
        assert samples[f"repro_latency_seconds_sum{{{stage}}}"] > 0
        buckets = [
            value for name, value in samples.items()
            if name.startswith("repro_latency_seconds_bucket{")
            and stage in name
        ]
        # _bucket series are cumulative and end at the +Inf total.
        assert buckets == sorted(buckets)
        inf_key = f'repro_latency_seconds_bucket{{{stage},le="+Inf"}}'
        assert samples[inf_key] == samples[count_key]
        # The admission wait is measured on every request, always on.
        assert 'repro_latency_seconds_count{stage="queue.wait"}' in samples


@pytest.fixture()
def guarded():
    """A server whose gateway runs the bounded admission gate."""
    from repro.api import Gateway, make_server as _make_server
    from repro.config import ApiConfig

    graph = random_graph(np.random.default_rng(7), n=30, m=150)
    service = PPRService(
        graph, NUMPY_CONFIG, ServeConfig(cache_capacity=8, admission_batch=4)
    )
    gateway = Gateway(service, ApiConfig(admission_queue=2))
    server = _make_server(gateway, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, gateway
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestOverloadAndDeadlineOverHttp:
    def occupy(self, gateway, slots: int) -> None:
        from repro.api.requests import IngestBatch
        from repro.graph.update import EdgeOp, EdgeUpdate

        for _ in range(slots):
            gateway.admission.admit(
                IngestBatch(updates=(EdgeUpdate(0, 1, EdgeOp.INSERT),))
            )

    def test_shed_any_read_is_429_with_stable_code(self, guarded):
        server, gateway = guarded
        self.occupy(gateway, 1)  # depth 1 >= ANY threshold of capacity 2
        try:
            error = raw_post(
                f"{server.url}/v1/query",
                json.dumps(
                    {"op": "top_k", "source": 0, "k": 3, "consistency": "any"}
                ).encode(),
            )
            assert isinstance(error, urllib.error.HTTPError)
            assert error.code == 429
            body = json.loads(error.read())
            assert body["error"]["code"] == "OVERLOAD"
            assert body["error"]["details"]["priority"] == "any"
            # FRESH still clears the gate at this depth: ANY sheds first.
            ok = raw_post(
                f"{server.url}/v1/query",
                json.dumps(
                    {"op": "top_k", "source": 0, "k": 3, "consistency": "fresh"}
                ).encode(),
            )
            assert isinstance(ok, dict) and ok["ok"]
        finally:
            gateway.admission.release()

    def test_full_gate_sheds_fresh_but_never_stats(self, guarded):
        server, gateway = guarded
        self.occupy(gateway, 2)  # full: depth == capacity
        try:
            error = raw_post(
                f"{server.url}/v1/query",
                json.dumps(
                    {"op": "top_k", "source": 0, "k": 3, "consistency": "fresh"}
                ).encode(),
            )
            assert isinstance(error, urllib.error.HTTPError)
            assert error.code == 429
            status, _, _ = raw_get(f"{server.url}/v1/stats")
            assert status == 200
            status, _, _ = raw_get(f"{server.url}/v1/metrics")
            assert status == 200
        finally:
            gateway.admission.release()
            gateway.admission.release()

    def test_shed_counters_surface_in_metrics(self, guarded):
        server, gateway = guarded
        self.occupy(gateway, 1)
        try:
            raw_post(
                f"{server.url}/v1/query",
                json.dumps(
                    {"op": "top_k", "source": 0, "k": 3, "consistency": "any"}
                ).encode(),
            )
        finally:
            gateway.admission.release()
        samples = scrape(server)
        assert samples['repro_admission_shed_total{priority="any"}'] == 1
        assert samples["repro_admission_capacity"] == 2

    def test_expired_deadline_is_503_with_stable_code(self, guarded):
        server, _ = guarded
        # A 1 ns budget re-armed at parse time is expired by execution.
        error = raw_post(
            f"{server.url}/v1/query",
            json.dumps(
                {"op": "top_k", "source": 0, "k": 3, "timeout_ms": 1e-6}
            ).encode(),
        )
        assert isinstance(error, urllib.error.HTTPError)
        assert error.code == 503
        body = json.loads(error.read())
        assert body["error"]["code"] == "DEADLINE"
        assert body["error"]["details"]["budget_ms"] == 1e-6

    def test_generous_deadline_round_trips_fine(self, guarded):
        server, _ = guarded
        ok = raw_post(
            f"{server.url}/v1/query",
            json.dumps(
                {"op": "top_k", "source": 0, "k": 3, "timeout_ms": 30000.0}
            ).encode(),
        )
        assert isinstance(ok, dict) and ok["ok"]


class TestServiceMetricsEdgeCases:
    def test_empty_window_reports_clean_zeros(self):
        from repro.serve.service import ServiceMetrics

        metrics = ServiceMetrics()
        for q in (50.0, 99.0, 99.9):
            assert metrics.latency_percentile(q) == 0.0
            assert metrics.staleness_percentile(q) == 0.0
        assert metrics.queries_per_second == 0.0
        payload = metrics.to_dict()
        assert payload["latency_p999_s"] == 0.0
        assert payload["queries"] == 0

    def test_single_sample_is_every_percentile(self):
        from repro.serve.service import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.record_query(staleness=3, seconds=0.25)
        for q in (0.0, 50.0, 99.0, 99.9, 100.0):
            assert metrics.latency_percentile(q) == 0.25
            assert metrics.staleness_percentile(q) == 3.0

    def test_p999_on_short_histories_tracks_the_max(self):
        from repro.serve.service import ServiceMetrics

        metrics = ServiceMetrics()
        for i in range(10):
            metrics.record_query(staleness=i, seconds=0.001 * (i + 1))
        p999 = metrics.latency_percentile(99.9)
        assert 0.009 < p999 <= 0.010
        assert metrics.latency_percentile(50.0) == pytest.approx(0.0055)
        payload = metrics.to_dict()
        assert payload["latency_p999_s"] == p999
        assert payload["latency_p99_s"] <= p999

    def test_sample_buffers_stay_bounded(self):
        from repro.serve.service import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.MAX_SAMPLES = 8  # instance override, class default untouched
        for i in range(20):
            metrics.record_query(staleness=0, seconds=0.001)
        assert len(metrics.query_seconds) <= 8
        assert metrics.queries == 20  # lifetime counter unaffected by trim


@pytest.fixture()
def traced():
    """A server whose gateway traces every request (sample_rate=1)."""
    from repro.api import Gateway, make_server as _make_server
    from repro.config import ApiConfig, ObsConfig

    graph = random_graph(np.random.default_rng(13), n=40, m=200)
    service = PPRService(
        graph, NUMPY_CONFIG, ServeConfig(cache_capacity=16, admission_batch=4)
    )
    gateway = Gateway(
        service,
        ApiConfig(
            obs=ObsConfig(enabled=True, sample_rate=1.0, slowlog_threshold_ms=0.0)
        ),
    )
    server = _make_server(gateway, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, HttpClient(server.url)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def trace_spans(http, trace_id, required, deadline_s=5.0):
    """Poll the trace route until ``required`` span names appear.

    The server records ``http.request``/``http.respond`` *after* the
    response bytes are flushed, so an immediate fetch can race the
    handler thread's last microseconds.
    """
    import time

    deadline = time.monotonic() + deadline_s
    while True:
        spans = http.trace(trace_id)
        if required <= {span["name"] for span in spans}:
            return spans
        if time.monotonic() >= deadline:
            return spans
        time.sleep(0.02)


class TestTraceRoutes:
    def test_sampled_response_carries_a_queryable_trace_id(self, traced):
        server, http = traced
        answer = http.query({"op": "top_k", "source": 0, "k": 3})
        assert answer["ok"] and answer["trace_id"]
        required = {"http.request", "gateway.execute", "http.respond"}
        spans = trace_spans(http, answer["trace_id"], required)
        names = {span["name"] for span in spans}
        assert required <= names
        ids = {span["span_id"] for span in spans}
        assert all(
            span["parent_id"] in ids
            for span in spans
            if span["parent_id"] is not None
        )

    def test_x_trace_id_header_matches_body(self, traced):
        server, _ = traced
        request = urllib.request.Request(
            f"{server.url}/v1/query",
            data=json.dumps({"op": "top_k", "source": 1, "k": 3}).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            headers = dict(response.headers)
            body = json.loads(response.read())
        assert headers["X-Trace-Id"] == body["trace_id"]

    def test_batch_travels_as_one_trace(self, traced):
        server, http = traced
        body = http._request(
            "POST",
            "/v1/query",
            {"requests": [{"source": 0, "k": 3}, {"source": 1, "k": 3}]},
        )
        assert [r["ok"] for r in body["responses"]] == [True, True]
        required = {"http.request", "schedule.run"}
        spans = trace_spans(http, body["trace_id"], required)
        assert {s["name"] for s in spans} >= required
        assert len({s["trace_id"] for s in spans}) == 1

    def test_unknown_trace_is_404(self, traced):
        server, _ = traced
        try:
            raw_get(f"{server.url}/v1/trace/nonesuch")
        except urllib.error.HTTPError as error:
            assert error.code == 404
        else:  # pragma: no cover - failure path
            pytest.fail("expected a 404 for an unknown trace id")

    def test_slow_log_route_refilters_by_threshold(self, traced):
        server, http = traced
        http.query({"op": "top_k", "source": 0, "k": 3})
        entries = http.slow(threshold_ms=0.0)
        assert entries and any(
            entry["stage"] == "request.top_k" for entry in entries
        )
        assert entries[-1]["trace_id"]  # sampled: joinable to /v1/trace
        assert http.slow(threshold_ms=1e9) == []


class TestReadiness:
    def test_single_process_is_trivially_ready(self, live):
        server, http, _ = live
        body = http.readyz()
        assert body["ready"] is True
        assert body["primary"] == "embedded"
        assert body["epoch"] == 0
        status, _, raw = raw_get(f"{server.url}/v1/readyz")
        assert status == 200 and json.loads(raw)["ready"] is True

    def test_degraded_cluster_is_503_but_still_carries_the_payload(self):
        from repro.cluster import PPRCluster
        from repro.config import ClusterConfig

        graph = random_graph(np.random.default_rng(13), n=40, m=200)
        service = PPRService(graph, serve=ServeConfig(cache_capacity=16))
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            server = make_server(cluster.gateway, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                http = HttpClient(server.url)
                assert http.readyz()["ready"] is True

                cluster.gateway.kill_primary()
                body = http.readyz()  # HTTP 503, payload preserved
                assert body["ready"] is False
                assert body["primary"] is None
                # Liveness is independent: the process still answers 200.
                assert http.healthz()["status"] == "ok"

                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    raw_get(f"{server.url}/v1/readyz")
                assert excinfo.value.code == 503
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)


class TestClientRetry:
    """Retry loop unit tests: `_request_once` is stubbed, no server."""

    @staticmethod
    def client(attempts: int = 3) -> HttpClient:
        from repro.api.resilience import RetryPolicy

        return HttpClient(
            "http://127.0.0.1:1",  # never dialed: _request_once is stubbed
            retry=RetryPolicy(attempts=attempts, base_backoff_s=0.0),
        )

    def test_transient_cluster_error_is_retried_to_success(self, monkeypatch):
        from repro.errors import ClusterError

        http = self.client()
        calls: list[str] = []

        def flaky(method, route, payload=None):
            calls.append(route)
            if len(calls) < 3:
                raise ClusterError("primary failing over")
            return {"ok": True}

        monkeypatch.setattr(http, "_request_once", flaky)
        assert http._request("GET", "/v1/stats") == {"ok": True}
        assert len(calls) == 3

    def test_budget_exhaustion_raises_the_last_typed_error(self, monkeypatch):
        from repro.errors import ClusterError

        http = self.client(attempts=2)
        calls: list[str] = []

        def always_down(method, route, payload=None):
            calls.append(route)
            raise ClusterError("no live replicas")

        monkeypatch.setattr(http, "_request_once", always_down)
        with pytest.raises(ClusterError):
            http._request("GET", "/v1/stats")
        assert len(calls) == 2

    def test_non_retryable_code_raises_on_first_attempt(self, monkeypatch):
        http = self.client()
        calls: list[str] = []

        def bad_request(method, route, payload=None):
            calls.append(route)
            raise RequestError("unknown op")

        monkeypatch.setattr(http, "_request_once", bad_request)
        with pytest.raises(RequestError):
            http._request("POST", "/v1/query", {"op": "top_k"}, idempotent=True)
        assert len(calls) == 1

    def test_writes_are_never_retried(self, monkeypatch):
        from repro.errors import ClusterError

        http = self.client()
        calls: list[str] = []

        def flaky(method, route, payload=None):
            calls.append(route)
            raise ClusterError("mid-failover")

        monkeypatch.setattr(http, "_request_once", flaky)
        with pytest.raises(ClusterError):
            http.ingest([(1, 2)])
        assert len(calls) == 1  # a write must not be re-applied blindly

        calls.clear()
        with pytest.raises(ClusterError):
            http.query({"op": "ingest", "insert": [[1, 2]]})
        assert len(calls) == 1  # op-level idempotence check on POST /v1/query

    def test_reads_via_query_post_are_retryable(self, monkeypatch):
        from repro.errors import ClusterError

        http = self.client()
        calls: list[str] = []

        def flaky(method, route, payload=None):
            calls.append(route)
            if len(calls) == 1:
                raise ClusterError("replica died")
            return {"ok": True, "entries": []}

        monkeypatch.setattr(http, "_request_once", flaky)
        assert http.query({"op": "top_k", "source": 0, "k": 3})["ok"] is True
        assert len(calls) == 2

    def test_connection_errors_are_retried(self, monkeypatch):
        http = self.client()
        calls: list[str] = []

        def refused(method, route, payload=None):
            calls.append(route)
            if len(calls) == 1:
                raise ConnectionRefusedError("server restarting")
            return {"status": "ok"}

        monkeypatch.setattr(http, "_request_once", refused)
        assert http._request("GET", "/v1/healthz") == {"status": "ok"}
        assert len(calls) == 2

    def test_no_policy_means_single_shot(self, monkeypatch):
        from repro.errors import ClusterError

        http = HttpClient("http://127.0.0.1:1")  # retry=None
        calls: list[str] = []

        def flaky(method, route, payload=None):
            calls.append(route)
            raise ClusterError("down")

        monkeypatch.setattr(http, "_request_once", flaky)
        with pytest.raises(ClusterError):
            http._request("GET", "/v1/stats")
        assert len(calls) == 1
