"""HTTP front-end tests: live round-trips against an ephemeral server.

Spins a real :class:`repro.api.GatewayHTTPServer` on an OS-assigned port
and exercises the JSON protocol end to end: query/ingest/stats/healthz
round-trips bit-identical to the embedded client, the scheduled
``{"requests": [...]}`` form, and the 4xx paths (malformed JSON, unknown
route, unknown op, bad field types, version conflicts).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import Backend, PPRConfig, PPRService, ServeConfig
from repro.api import HttpClient, make_server
from repro.errors import ConflictError, RequestError, VertexError

from tests.conftest import random_graph

NUMPY_CONFIG = PPRConfig(epsilon=1e-6, backend=Backend.NUMPY, workers=4)


@pytest.fixture()
def live():
    """(server, HttpClient, service) on an ephemeral port; torn down after."""
    graph = random_graph(np.random.default_rng(13), n=40, m=200)
    service = PPRService(
        graph, NUMPY_CONFIG, ServeConfig(cache_capacity=16, admission_batch=4)
    )
    server = make_server(service.gateway, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, HttpClient(server.url), service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def raw_post(url: str, body: bytes) -> urllib.error.HTTPError | dict:
    request = urllib.request.Request(
        url, data=body, method="POST", headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc


class TestRoundTrips:
    def test_topk_bit_identical_to_embedded_client(self, live):
        _, http, service = live
        answer = http.query({"source": 0, "k": 5})
        # The HTTP query itself ran first; the embedded twin reads the
        # same resident state at the same snapshot version.
        embedded = service.api.top_k(0, k=5)
        assert answer["ok"]
        assert answer["cold"]  # first query of this source admits it
        assert not embedded.cold  # the twin reads the now-resident state
        assert answer["snapshot_version"] == embedded.snapshot_version
        assert [(e["vertex"], e["estimate"]) for e in answer["entries"]] == [
            (e.vertex, e.estimate) for e in embedded.entries
        ]

    def test_scheduled_request_sequence(self, live):
        _, http, service = live
        responses = http.query_many(
            [
                {"op": "top_k", "source": 0, "k": 3},
                {"op": "ingest", "updates": [[0, 1]]},
                {"op": "top_k", "source": 0, "k": 3},
            ]
        )
        assert [r["op"] for r in responses] == ["top_k", "ingest", "top_k"]
        assert [r["snapshot_version"] for r in responses] == [0, 1, 1]
        assert service.graph_version == 1

    def test_ingest_endpoint_and_conflict(self, live):
        _, http, service = live
        acknowledged = http.ingest([[0, 1], [1, 0, "insert"]], expect_version=0)
        assert acknowledged["accepted"] == 2
        assert acknowledged["previous_version"] == 0
        assert acknowledged["snapshot_version"] == 1
        with pytest.raises(ConflictError):
            http.ingest([[1, 2]], expect_version=0)

    def test_stats_and_healthz(self, live):
        _, http, service = live
        http.query({"source": 0})
        stats = http.stats()
        assert stats["ok"]
        assert stats["stats"]["queries"] == 1
        assert stats["stats"]["gateway"]["top_k"] == 1
        health = http.healthz()
        assert health["status"] == "ok"
        assert health["num_vertices"] == service.graph.num_vertices
        assert health["num_edges"] == service.graph.num_edges

    def test_score_and_consistency_over_http(self, live):
        _, http, _ = live
        top = http.query({"source": 0, "k": 1})
        best = top["entries"][0]
        score = http.query(
            {"op": "score", "source": 0, "target": best["vertex"],
             "consistency": "any"}
        )
        assert score["estimate"] == best["estimate"]


class TestErrorPaths:
    def test_malformed_json_is_400(self, live):
        server, _, _ = live
        error = raw_post(f"{server.url}/v1/query", b"{definitely not json")
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400
        body = json.loads(error.read())
        assert body["error"]["code"] == "REQUEST"

    def test_empty_body_is_400(self, live):
        server, _, _ = live
        error = raw_post(f"{server.url}/v1/query", b"")
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400

    def test_unknown_route_is_404(self, live):
        server, _, _ = live
        for method, route in (("GET", "/v1/nope"), ("POST", "/v2/query")):
            request = urllib.request.Request(
                f"{server.url}{route}",
                data=b"{}" if method == "POST" else None,
                method=method,
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 404
            assert json.loads(excinfo.value.read())["error"]["code"] == "REQUEST"

    def test_unknown_op_is_400_with_request_code(self, live):
        _, http, _ = live
        with pytest.raises(RequestError):
            http.query({"op": "frobnicate"})

    def test_bad_field_types_are_400(self, live):
        server, _, _ = live
        error = raw_post(
            f"{server.url}/v1/query", json.dumps({"source": "zero"}).encode()
        )
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400

    def test_unknown_score_target_is_404_vertex(self, live):
        server, http, _ = live
        with pytest.raises(VertexError):
            http.query({"op": "score", "source": 0, "target": 10**9})
        error = raw_post(
            f"{server.url}/v1/query",
            json.dumps({"op": "score", "source": 0, "target": 10**9}).encode(),
        )
        assert isinstance(error, urllib.error.HTTPError) and error.code == 404

    def test_batch_of_requests_with_one_bad_entry_is_400(self, live):
        server, _, _ = live
        error = raw_post(
            f"{server.url}/v1/query",
            json.dumps({"requests": [{"source": 0}, {"op": "nope"}]}).encode(),
        )
        # Parse failures void the whole schedule (atomic admission).
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400

    def test_ingest_body_must_be_object(self, live):
        server, _, _ = live
        error = raw_post(f"{server.url}/v1/ingest", json.dumps([1, 2]).encode())
        assert isinstance(error, urllib.error.HTTPError) and error.code == 400
