"""Unit tests for the parallel push engines (Algorithms 3-4, all variants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Backend,
    BackendError,
    ConvergenceError,
    DynamicDiGraph,
    PPRConfig,
    PPRState,
    PushVariant,
    check_invariant,
    ground_truth_ppr,
    max_estimate_error,
    parallel_local_push,
)
from repro.config import Phase
from repro.graph.generators import erdos_renyi_graph, rmat_graph
from tests.conftest import all_variant_configs


def make_random(rng, n=30, m=140):
    edges = erdos_renyi_graph(n, m, rng=rng)
    return DynamicDiGraph(map(tuple, edges.tolist()))


class TestCorrectnessAllVariants:
    @pytest.mark.parametrize(
        "config", all_variant_configs(), ids=lambda c: f"{c.variant.value}-{c.backend.value}"
    )
    def test_epsilon_guarantee(self, config, rng):
        g = make_random(rng)
        state = PPRState.initial(0, g.capacity)
        parallel_local_push(state, g, config, seeds=[0])
        assert state.residual_linf() <= config.epsilon
        truth = ground_truth_ppr(g, 0, config.alpha)
        assert max_estimate_error(state.p, truth) <= config.epsilon

    @pytest.mark.parametrize(
        "config", all_variant_configs(), ids=lambda c: f"{c.variant.value}-{c.backend.value}"
    )
    def test_invariant_preserved(self, config, rng):
        g = make_random(rng)
        state = PPRState.initial(0, g.capacity)
        parallel_local_push(state, g, config, seeds=[0])
        assert check_invariant(state, g, config.alpha)

    @pytest.mark.parametrize("variant", list(PushVariant))
    def test_heavy_tailed_graph(self, variant, rng):
        edges = rmat_graph(64, 400, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        source = int(edges[0, 0])
        config = PPRConfig(
            alpha=0.15, epsilon=1e-4, variant=variant, backend=Backend.PURE, workers=8
        )
        state = PPRState.initial(source, g.capacity)
        parallel_local_push(state, g, config, seeds=[source])
        truth = ground_truth_ppr(g, source, 0.15)
        assert max_estimate_error(state.p, truth) <= 1e-4


class TestFrontierSemantics:
    def test_dupdetect_never_duplicates(self, rng, monkeypatch):
        # Instrument: frontiers must be duplicate-free in every iteration
        # — local duplicate detection's whole guarantee (Section 4.2).
        from repro.core import push_parallel

        seen_frontiers = []
        original = push_parallel._snapshot_iteration

        def spy(state, graph, phase, config, frontier, rec):
            seen_frontiers.append(list(frontier))
            return original(state, graph, phase, config, frontier, rec)

        monkeypatch.setattr(push_parallel, "_snapshot_iteration", spy)
        g = make_random(rng)
        config = PPRConfig(
            alpha=0.15, epsilon=1e-5, variant=PushVariant.DUPDETECT, backend=Backend.PURE
        )
        state = PPRState.initial(0, g.capacity)
        parallel_local_push(state, g, config, seeds=[0])
        assert seen_frontiers, "spy never called"
        for frontier in seen_frontiers:
            assert len(frontier) == len(set(frontier))

    def test_opt_never_duplicates(self, rng, monkeypatch):
        from repro.core import push_parallel

        seen_frontiers = []
        original = push_parallel._eager_iteration

        def spy(state, graph, phase, config, frontier, rec):
            seen_frontiers.append(list(frontier))
            return original(state, graph, phase, config, frontier, rec)

        monkeypatch.setattr(push_parallel, "_eager_iteration", spy)
        g = make_random(rng)
        config = PPRConfig(
            alpha=0.15, epsilon=1e-5, variant=PushVariant.OPT, backend=Backend.PURE, workers=3
        )
        state = PPRState.initial(0, g.capacity)
        parallel_local_push(state, g, config, seeds=[0])
        for frontier in seen_frontiers:
            assert len(frontier) == len(set(frontier))

    def test_frontiers_sorted(self, rng):
        g = make_random(rng)
        config = PPRConfig(alpha=0.15, epsilon=1e-4, variant=PushVariant.VANILLA)
        state = PPRState.initial(0, g.capacity)
        stats = parallel_local_push(state, g, config, seeds=[0])
        # The contract is asserted indirectly: deterministic reruns match.
        state2 = PPRState.initial(0, g.capacity)
        stats2 = parallel_local_push(state2, g, config, seeds=[0])
        assert state.allclose(state2)
        assert stats.pushes == stats2.pushes

    def test_seed_deduplication(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        stats = parallel_local_push(
            state, paper_graph, paper_config, seeds=[1, 1, 1, 1]
        )
        assert stats.iterations[0].frontier_size == 1


class TestOperationAccounting:
    def test_dedup_checks_only_for_global_queue(self, rng):
        g = make_random(rng)
        results = {}
        for variant in PushVariant:
            config = PPRConfig(
                alpha=0.15, epsilon=1e-5, variant=variant, backend=Backend.PURE
            )
            state = PPRState.initial(0, g.capacity)
            results[variant] = parallel_local_push(state, g, config, seeds=[0])
        assert results[PushVariant.VANILLA].dedup_checks > 0
        assert results[PushVariant.EAGER].dedup_checks > 0
        assert results[PushVariant.DUPDETECT].dedup_checks == 0
        assert results[PushVariant.OPT].dedup_checks == 0

    def test_atomic_adds_equal_edge_traversals(self, rng):
        g = make_random(rng)
        config = PPRConfig(alpha=0.15, epsilon=1e-5)
        state = PPRState.initial(0, g.capacity)
        stats = parallel_local_push(state, g, config, seeds=[0])
        assert stats.atomic_adds == stats.edge_traversals

    def test_vanilla_and_dupdetect_do_identical_work(self, rng):
        # Local duplicate detection changes synchronization, not the
        # push schedule: identical iterations, pushes and final state.
        g = make_random(rng)
        outcomes = []
        for variant in (PushVariant.VANILLA, PushVariant.DUPDETECT):
            config = PPRConfig(alpha=0.15, epsilon=1e-5, variant=variant)
            state = PPRState.initial(0, g.capacity)
            stats = parallel_local_push(state, g, config, seeds=[0])
            outcomes.append((state, stats))
        (s1, st1), (s2, st2) = outcomes
        assert s1.allclose(s2)
        assert st1.pushes == st2.pushes
        assert st1.num_iterations == st2.num_iterations
        assert [r.frontier_size for r in st1.iterations] == [
            r.frontier_size for r in st2.iterations
        ]


class TestEagerPropagation:
    def test_more_workers_never_fewer_ops_on_average(self, rng):
        # Aggregate trend across graphs: eager with fewer workers
        # (fresher reads) performs at most as many pushes.
        totals = {1: 0, 1000: 0}
        for trial in range(10):
            g = make_random(np.random.default_rng(trial))
            for workers in totals:
                config = PPRConfig(
                    alpha=0.15,
                    epsilon=1e-4,
                    variant=PushVariant.OPT,
                    workers=workers,
                )
                state = PPRState.initial(0, g.capacity)
                stats = parallel_local_push(state, g, config, seeds=[0])
                totals[workers] += stats.pushes
        assert totals[1] <= totals[1000]

    def test_second_pass_enqueues_recorded(self, rng):
        g = make_random(rng, n=40, m=300)
        config = PPRConfig(
            alpha=0.15, epsilon=1e-6, variant=PushVariant.OPT, workers=4
        )
        state = PPRState.initial(0, g.capacity)
        stats = parallel_local_push(state, g, config, seeds=[0])
        assert sum(rec.second_pass_enqueued for rec in stats.iterations) > 0


class TestErrorPaths:
    def test_max_iterations_guard(self, paper_graph):
        config = PPRConfig(alpha=0.5, epsilon=1e-9, max_iterations=1)
        state = PPRState.initial(1, paper_graph.capacity)
        with pytest.raises(ConvergenceError):
            parallel_local_push(state, paper_graph, config, seeds=[1])

    def test_multiprocess_rejects_eager(self, paper_graph):
        config = PPRConfig(
            alpha=0.5,
            epsilon=0.1,
            variant=PushVariant.OPT,
            backend=Backend.MULTIPROCESS,
        )
        state = PPRState.initial(1, paper_graph.capacity)
        with pytest.raises(BackendError):
            parallel_local_push(state, paper_graph, config, seeds=[1])


class TestPhaseHelpers:
    def test_phase_exceeds(self):
        assert Phase.POS.exceeds(0.2, 0.1)
        assert not Phase.POS.exceeds(-0.2, 0.1)
        assert Phase.NEG.exceeds(-0.2, 0.1)
        assert not Phase.NEG.exceeds(0.05, 0.1)
