"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing correctness properties of the whole scheme:

1. restore-invariant repairs Eq. 2 exactly, for arbitrary update sequences;
2. every push variant/backend converges to an eps-accurate estimate;
3. residuals evolve monotonically within a phase iteration (the property
   local duplicate detection exploits);
4. batch processing and per-update processing agree (both eps-accurate on
   the same final graph);
5. Lemma 3's residual-change bound holds empirically.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Backend,
    DynamicDiGraph,
    EdgeOp,
    EdgeUpdate,
    PPRConfig,
    PPRState,
    PushVariant,
    check_invariant,
    ground_truth_ppr,
    max_estimate_error,
    parallel_local_push,
    sequential_local_push,
)
from repro.core.analysis import measure_residual_change
from repro.core.invariant import restore_batch


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

N_VERTICES = 10


@st.composite
def graph_edges(draw, max_edges=25):
    """A list of distinct directed edges over a small vertex set."""
    pairs = st.tuples(
        st.integers(0, N_VERTICES - 1), st.integers(0, N_VERTICES - 1)
    ).filter(lambda p: p[0] != p[1])
    return draw(st.lists(pairs, min_size=1, max_size=max_edges, unique=True))


@st.composite
def update_sequence(draw, graph_edge_list, max_updates=15):
    """A valid update sequence: deletes only touch present edges."""
    present = set(graph_edge_list)
    updates = []
    for _ in range(draw(st.integers(1, max_updates))):
        delete = bool(present) and draw(st.booleans())
        if delete:
            u, v = draw(st.sampled_from(sorted(present)))
            present.discard((u, v))
            updates.append(EdgeUpdate(u, v, EdgeOp.DELETE))
        else:
            u = draw(st.integers(0, N_VERTICES - 1))
            v = draw(st.integers(0, N_VERTICES - 1))
            if u == v:
                continue
            present.add((u, v))
            updates.append(EdgeUpdate(u, v, EdgeOp.INSERT))
    return updates


# ---------------------------------------------------------------------- #
# properties
# ---------------------------------------------------------------------- #


@given(edges=graph_edges(), data=st.data())
def test_restore_invariant_always_repairs(edges, data):
    g = DynamicDiGraph(edges)
    updates = data.draw(update_sequence(edges))
    state = PPRState.initial(0, max(g.capacity, N_VERTICES))
    restore_batch(g, state, updates, alpha=0.3)
    assert check_invariant(state, g, 0.3, tol=1e-9)


@given(
    edges=graph_edges(),
    variant=st.sampled_from(list(PushVariant)),
    backend=st.sampled_from([Backend.PURE, Backend.NUMPY]),
    workers=st.sampled_from([1, 2, 7]),
    source=st.integers(0, N_VERTICES - 1),
)
def test_push_accuracy_all_variants(edges, variant, backend, workers, source):
    g = DynamicDiGraph(edges)
    config = PPRConfig(
        alpha=0.25, epsilon=1e-3, variant=variant, backend=backend, workers=workers
    )
    state = PPRState.initial(source, max(g.capacity, N_VERTICES))
    parallel_local_push(state, g, config, seeds=[source])
    assert state.residual_linf() <= config.epsilon
    truth = ground_truth_ppr(g, source, config.alpha, capacity=state.capacity)
    assert max_estimate_error(state.p, truth) <= config.epsilon + 1e-12


@given(edges=graph_edges(), data=st.data())
def test_dynamic_maintenance_stays_accurate(edges, data):
    """Batch restore + push after arbitrary updates keeps the eps guarantee."""
    g = DynamicDiGraph(edges)
    updates = data.draw(update_sequence(edges))
    config = PPRConfig(alpha=0.3, epsilon=1e-3, variant=PushVariant.OPT, workers=2)
    state = PPRState.initial(0, max(g.capacity, N_VERTICES))
    parallel_local_push(state, g, config, seeds=[0])
    touched, _ = restore_batch(g, state, updates, config.alpha)
    parallel_local_push(state, g, config, seeds=touched)
    truth = ground_truth_ppr(g, 0, config.alpha, capacity=state.capacity)
    assert max_estimate_error(state.p, truth) <= config.epsilon + 1e-12
    assert check_invariant(state, g, config.alpha)


@given(edges=graph_edges(), data=st.data())
def test_batch_and_single_update_processing_agree(edges, data):
    """CPU-Seq-style batching and CPU-Base-style stepping both end accurate
    on the same final graph (their states may legitimately differ)."""
    updates = data.draw(update_sequence(edges))
    config = PPRConfig(alpha=0.3, epsilon=1e-3)

    g_batch = DynamicDiGraph(edges)
    s_batch = PPRState.initial(0, max(g_batch.capacity, N_VERTICES))
    sequential_local_push(s_batch, g_batch, config, seeds=[0])
    touched, _ = restore_batch(g_batch, s_batch, updates, config.alpha)
    sequential_local_push(s_batch, g_batch, config, seeds=touched)

    g_step = DynamicDiGraph(edges)
    s_step = PPRState.initial(0, max(g_step.capacity, N_VERTICES))
    sequential_local_push(s_step, g_step, config, seeds=[0])
    for update in updates:
        touched, _ = restore_batch(g_step, s_step, [update], config.alpha)
        sequential_local_push(s_step, g_step, config, seeds=touched)

    assert g_batch == g_step
    truth = ground_truth_ppr(g_batch, 0, config.alpha, capacity=s_batch.capacity)
    assert max_estimate_error(s_batch.p, truth) <= config.epsilon + 1e-12
    assert max_estimate_error(s_step.p, truth) <= config.epsilon + 1e-12


@given(edges=graph_edges())
def test_residual_monotonicity_within_iteration(edges):
    """During the positive phase, non-frontier residuals only increase —
    the monotonicity property behind local duplicate detection."""
    g = DynamicDiGraph(edges)
    config = PPRConfig(alpha=0.25, epsilon=1e-3, variant=PushVariant.VANILLA)
    state = PPRState.initial(0, max(g.capacity, N_VERTICES))

    from repro.config import Phase
    from repro.core.push_parallel import _snapshot_iteration
    from repro.core.stats import IterationRecord

    frontier = [0]
    guard = 0
    while frontier and guard < 200:
        before = state.r.copy()
        frontier_set = set(frontier)
        rec = IterationRecord(phase=Phase.POS)
        new = _snapshot_iteration(state, g, Phase.POS, config, sorted(frontier), rec)
        for v in range(len(before)):
            if v not in frontier_set:
                assert state.r[v] >= before[v] - 1e-15
        frontier = sorted(set(new))
        guard += 1


@given(edges=graph_edges(max_edges=15), data=st.data())
@settings(max_examples=10)
def test_lemma3_residual_change_bound(edges, data):
    """Sum over all sources of |Delta_s(u)| respects Lemma 3's bound."""
    g = DynamicDiGraph(edges)
    updates = data.draw(update_sequence(edges, max_updates=6))
    config = PPRConfig(alpha=0.3, epsilon=1e-2)
    for m in measure_residual_change(g, updates, config):
        assert m.within_bound, m
