"""Shared-memory snapshots (:mod:`repro.graph.shm`).

The lifecycle contracts the zero-copy bootstrap path depends on:

1. **roundtrip** — arrays packed by the creator come back bit-identical
   (and read-only) through a picklable descriptor;
2. **refcounts** — the publisher keeps a superseded version alive while
   readers hold it and unlinks it on the last release; the current
   version always stays;
3. **POSIX semantics** — an attached reader's views stay valid after the
   owner unlinks (version bump while readers attached);
4. **cleanup** — gateway close / publisher close / ``sweep_stale`` leave
   no ``repro-shm-*`` segment behind, including segments whose creator
   pid is gone (the SIGKILL backstop).

Plus the lazy-bootstrap contract of
:meth:`~repro.graph.digraph.DynamicDiGraph.from_arrays`: a replica built
from a shared snapshot answers reads without ever materializing its
adjacency dicts, and materializes them order-exactly on the first write.
"""

from __future__ import annotations

import os
import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import DynamicDiGraph, PPRService
from repro.api.requests import FRESH, TopKQuery
from repro.cluster import PPRCluster
from repro.config import ClusterConfig, ServeConfig, ShardConfig
from repro.errors import GraphError
from repro.graph import (
    SharedArrayBundle,
    SnapshotPublisher,
    insertions,
    sweep_stale,
)
from repro.graph.digraph import _LazyArraysGraph
from repro.graph.shm import SEGMENT_PREFIX
from repro.shard import PPRShards
from tests.conftest import random_graph

EDGES = [(1, 0), (2, 0), (2, 1), (0, 2), (3, 1), (4, 3), (1, 4), (3, 0)]


def segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture
def graph_arrays() -> dict[str, np.ndarray]:
    return DynamicDiGraph(EDGES).to_arrays()


class TestSharedArrayBundle:
    def test_roundtrip_bit_identical(self, graph_arrays):
        with SharedArrayBundle.create(graph_arrays, tag="t") as bundle:
            attached = SharedArrayBundle.attach(bundle.descriptor)
            try:
                for key, arr in graph_arrays.items():
                    assert np.array_equal(attached.arrays()[key], arr)
                    assert attached.arrays()[key].dtype == arr.dtype
            finally:
                attached.close()
            bundle.unlink()

    def test_attached_views_are_read_only(self, graph_arrays):
        with SharedArrayBundle.create(graph_arrays, tag="t") as bundle:
            views = bundle.arrays()
            with pytest.raises(ValueError):
                views["vertices"][0] = 99
            bundle.unlink()

    def test_descriptor_is_picklable_and_carries_meta(self, graph_arrays):
        bundle = SharedArrayBundle.create(
            graph_arrays, tag="t", meta={"num_edges": 8}
        )
        try:
            descriptor = pickle.loads(pickle.dumps(bundle.descriptor))
            assert descriptor["meta"]["num_edges"] == 8
            attached = SharedArrayBundle.attach(descriptor)
            assert attached.meta["num_edges"] == 8
            attached.close()
        finally:
            bundle.unlink()
            bundle.close()

    def test_segment_name_embeds_creator_pid(self, graph_arrays):
        with SharedArrayBundle.create(graph_arrays, tag="t") as bundle:
            assert bundle.name.startswith(f"{SEGMENT_PREFIX}-{os.getpid()}-t-")
            bundle.unlink()

    def test_unlink_is_owner_only_and_idempotent(self, graph_arrays):
        bundle = SharedArrayBundle.create(graph_arrays, tag="t")
        attached = SharedArrayBundle.attach(bundle.descriptor)
        attached.unlink()  # non-owner: must be a no-op
        assert segment_exists(bundle.name)
        attached.close()
        bundle.unlink()
        bundle.unlink()  # idempotent
        assert not segment_exists(bundle.name)
        bundle.close()

    def test_attach_after_unlink_raises(self, graph_arrays):
        bundle = SharedArrayBundle.create(graph_arrays, tag="t")
        descriptor = bundle.descriptor
        bundle.unlink()
        bundle.close()
        with pytest.raises(FileNotFoundError):
            SharedArrayBundle.attach(descriptor)

    def test_empty_arrays_still_roundtrip(self):
        arrays = {"empty": np.zeros(0, dtype=np.int64)}
        with SharedArrayBundle.create(arrays, tag="t") as bundle:
            attached = SharedArrayBundle.attach(bundle.descriptor)
            assert attached.arrays()["empty"].shape == (0,)
            attached.close()
            bundle.unlink()


class TestSnapshotPublisher:
    def test_publish_supersedes_unpinned_versions(self, graph_arrays):
        with SnapshotPublisher(tag="pub") as pub:
            d1 = pub.publish(1, graph_arrays)
            d2 = pub.publish(2, graph_arrays)
            assert pub.versions() == [2]
            assert pub.current_version == 2
            assert not segment_exists(d1["segment"])
            assert segment_exists(d2["segment"])

    def test_publish_is_idempotent_per_version(self, graph_arrays):
        with SnapshotPublisher(tag="pub") as pub:
            d1 = pub.publish(1, graph_arrays)
            assert pub.publish(1, graph_arrays) == d1

    def test_retain_release_refcounts(self, graph_arrays):
        with SnapshotPublisher(tag="pub") as pub:
            d1 = pub.publish(1, graph_arrays)
            pub.retain(1)
            pub.retain(1)
            assert pub.refcount(1) == 2
            pub.publish(2, graph_arrays)
            assert pub.versions() == [1, 2]  # v1 pinned by readers
            pub.release(1)
            assert segment_exists(d1["segment"])
            pub.release(1)  # last reader: superseded version drops
            assert pub.versions() == [2]
            assert not segment_exists(d1["segment"])

    def test_release_never_drops_the_current_version(self, graph_arrays):
        with SnapshotPublisher(tag="pub") as pub:
            d1 = pub.publish(1, graph_arrays)
            pub.retain(1)
            pub.release(1)
            pub.release(1)  # refcount floors at zero
            assert pub.versions() == [1]
            assert segment_exists(d1["segment"])

    def test_readers_survive_a_version_bump(self, graph_arrays):
        pub = SnapshotPublisher(tag="pub")
        d1 = pub.publish(1, graph_arrays)
        reader = SharedArrayBundle.attach(d1)
        vertices = reader.arrays()["vertices"]
        expected = vertices.copy()
        pub.publish(2, graph_arrays)  # supersedes and unlinks v1
        assert not segment_exists(d1["segment"])
        # POSIX unlink removes the *name*; the reader's mapping survives.
        assert np.array_equal(vertices, expected)
        reader.close()
        pub.close()

    def test_descriptor_of_missing_version_raises(self, graph_arrays):
        with SnapshotPublisher(tag="pub") as pub:
            with pytest.raises(GraphError):
                pub.descriptor()
            pub.publish(1, graph_arrays)
            with pytest.raises(GraphError):
                pub.descriptor(7)
            with pytest.raises(GraphError):
                pub.retain(7)

    def test_close_unlinks_everything(self, graph_arrays):
        pub = SnapshotPublisher(tag="pub")
        d1 = pub.publish(1, graph_arrays)
        pub.retain(1)  # a pinned, superseded version must still unlink
        d2 = pub.publish(2, graph_arrays)
        pub.close()
        assert not segment_exists(d1["segment"])
        assert not segment_exists(d2["segment"])
        assert pub.versions() == []


class TestSweepStale:
    def test_dead_pid_segment_is_swept(self):
        name = f"{SEGMENT_PREFIX}-999999999-orphan-deadbeef"
        shm = shared_memory.SharedMemory(create=True, size=64, name=name)
        shm.close()
        assert segment_exists(name)
        removed = sweep_stale()
        assert name in removed
        assert not segment_exists(name)

    def test_live_pid_segment_is_kept(self, graph_arrays):
        with SharedArrayBundle.create(graph_arrays, tag="live") as bundle:
            assert bundle.name not in sweep_stale()
            assert segment_exists(bundle.name)
            bundle.unlink()

    def test_include_alive_sweeps_everything(self, graph_arrays):
        bundle = SharedArrayBundle.create(graph_arrays, tag="live")
        assert bundle.name in sweep_stale(include_alive=True)
        bundle.unlink()  # idempotent against the sweep
        bundle.close()


class TestLazyBootstrap:
    def test_lazy_graph_matches_eager_after_materialization(self, rng):
        graph = random_graph(rng)
        arrays = graph.to_arrays()
        lazy = DynamicDiGraph.from_arrays(arrays, lazy=True)
        assert isinstance(lazy, _LazyArraysGraph)
        assert not lazy.is_materialized()
        eager = DynamicDiGraph.from_arrays(arrays)
        assert eager.is_materialized()
        assert lazy == eager  # forces materialization
        assert lazy.is_materialized()
        # Order-exact: adjacency iteration order must match, not just sets.
        assert list(lazy._out) == list(eager._out)
        assert [list(row) for row in lazy._out.values()] == [
            list(row) for row in eager._out.values()
        ]

    def test_scalars_and_membership_do_not_materialize(self, graph_arrays):
        graph = DynamicDiGraph(EDGES)
        lazy = DynamicDiGraph.from_arrays(graph_arrays, lazy=True)
        assert lazy.num_vertices == graph.num_vertices
        assert lazy.num_edges == graph.num_edges
        assert lazy.max_vertex_id == graph.max_vertex_id
        assert lazy.capacity == graph.capacity
        assert lazy.has_vertex(0) and not lazy.has_vertex(99)
        assert 0 in lazy and 99 not in lazy
        assert len(lazy) == graph.num_vertices
        assert not lazy.is_materialized()

    def test_service_reads_stay_lazy_writes_materialize(self):
        primary = PPRService(DynamicDiGraph(EDGES))
        arrays = dict(primary.graph.to_arrays())
        arrays.update(primary.shared_snapshot_arrays())
        bundle = SharedArrayBundle.create(
            arrays,
            meta={
                "num_edges": primary.graph.num_edges,
                "max_vertex": primary.graph.max_vertex_id,
            },
        )
        try:
            replica = PPRService.from_shared_snapshot(bundle.descriptor)
            for source in (0, 1, 3):
                ours = replica.gateway.submit(
                    TopKQuery(source=source, k=4, consistency=FRESH)
                )
                theirs = primary.gateway.submit(
                    TopKQuery(source=source, k=4, consistency=FRESH)
                )
                assert ours.ok and theirs.ok
                assert [(e.vertex, e.estimate) for e in ours.entries] == [
                    (e.vertex, e.estimate) for e in theirs.entries
                ]
            assert not replica.graph.is_materialized()
            replica.ingest(insertions([(4, 0)]))
            assert replica.graph.is_materialized()
            primary.ingest(insertions([(4, 0)]))
            ours = replica.query(0, k=4)
            theirs = primary.query(0, k=4)
            assert [(e.vertex, e.estimate) for e in ours.entries] == [
                (e.vertex, e.estimate) for e in theirs.entries
            ]
        finally:
            bundle.unlink()
            bundle.close()


class TestServingTiersOverSharedMemory:
    def test_cluster_shm_bootstrap_matches_pipe_bootstrap(self):
        def run(shared: bool):
            service = PPRService(DynamicDiGraph(EDGES), serve=ServeConfig())
            answers = []
            config = ClusterConfig(replicas=2, shared_memory=shared)
            with PPRCluster(service, config) as cluster:
                for source in (0, 1, 2, 3):
                    r = cluster.gateway.submit(
                        TopKQuery(source=source, k=4, consistency=FRESH)
                    )
                    assert r.ok
                    answers.append([(e.vertex, e.estimate) for e in r.entries])
            return answers

        assert run(True) == run(False)

    def test_cluster_close_unlinks_published_segments(self):
        service = PPRService(DynamicDiGraph(EDGES), serve=ServeConfig())
        config = ClusterConfig(replicas=2, shared_memory=True)
        with PPRCluster(service, config) as cluster:
            publisher = cluster.gateway._publisher
            assert publisher is not None
            names = [
                publisher.descriptor(v)["segment"] for v in publisher.versions()
            ]
            assert names and all(segment_exists(n) for n in names)
        assert all(not segment_exists(n) for n in names)

    def test_shard_shm_seed_matches_pipe_seed(self):
        def run(shared: bool):
            answers = []
            config = ShardConfig(shards=2, shared_memory=shared)
            with PPRShards(DynamicDiGraph(EDGES), config) as fleet:
                for source in (0, 1, 4):
                    r = fleet.gateway.submit(
                        TopKQuery(source=source, k=4, consistency=FRESH)
                    )
                    assert r.ok
                    answers.append([(e.vertex, e.estimate) for e in r.entries])
            return answers

        assert run(True) == run(False)

    def test_shard_close_unlinks_the_seed_segment(self):
        config = ShardConfig(shards=2, shared_memory=True)
        with PPRShards(DynamicDiGraph(EDGES), config) as fleet:
            name = fleet.gateway._seed_shm["segment"]
            assert segment_exists(name)
        assert not segment_exists(name)
