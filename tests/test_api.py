"""Gateway API tests: protocol validation, consistency levels, scheduling.

Covers the acceptance points of the typed gateway: request validation
(stable ``REQUEST`` errors), error-code mapping across the
serialize/reconstruct boundary, FRESH/BOUNDED/ANY read consistency, the
read-coalescing scheduler's bit-identical equivalence with direct
``query_many``, write ordering via ``expect_version``, and the
compatibility shims on ``PPRService``.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    ApiConfig,
    Backend,
    ConfigError,
    ConflictError,
    ConsistencyLevel,
    DynamicDiGraph,
    EdgeError,
    PPRConfig,
    PPRService,
    RequestError,
    ServeConfig,
    VertexError,
    insertions,
)
from repro.api import (
    ANY,
    FRESH,
    BatchQuery,
    CheckpointNow,
    Client,
    Consistency,
    ErrorInfo,
    Gateway,
    Health,
    HubQuery,
    IngestBatch,
    Prefetch,
    ScoreQuery,
    Stats,
    TopKQuery,
    request_from_dict,
)
from repro.errors import ERROR_CODES, ReproError, error_from_dict
from repro.serve import ServiceMetrics

from tests.conftest import random_graph

NUMPY_CONFIG = PPRConfig(epsilon=1e-6, backend=Backend.NUMPY, workers=4)


def small_service(rng=None, **serve_kwargs) -> PPRService:
    import numpy as np

    graph = random_graph(rng or np.random.default_rng(7), n=40, m=200)
    serve_kwargs.setdefault("cache_capacity", 16)
    serve_kwargs.setdefault("admission_batch", 4)
    return PPRService(graph, NUMPY_CONFIG, ServeConfig(**serve_kwargs))


# ---------------------------------------------------------------------- #
# request validation + round-trip
# ---------------------------------------------------------------------- #


class TestRequestValidation:
    def test_negative_source_rejected(self):
        with pytest.raises(RequestError):
            TopKQuery(source=-1)

    def test_non_integer_source_rejected(self):
        with pytest.raises(RequestError):
            TopKQuery(source="zero")
        with pytest.raises(RequestError):
            TopKQuery(source=True)

    def test_bad_k_rejected(self):
        with pytest.raises(RequestError):
            TopKQuery(source=0, k=0)
        with pytest.raises(RequestError):
            TopKQuery(source=0, k=2.5)

    def test_empty_batch_rejected(self):
        with pytest.raises(RequestError):
            BatchQuery(sources=())

    def test_bounded_needs_bound_level(self):
        with pytest.raises(RequestError):
            Consistency(ConsistencyLevel.FRESH, bound=3)
        with pytest.raises(RequestError):
            Consistency.bounded(-1)

    def test_consistency_parse_forms(self):
        assert Consistency.from_dict("any") == ANY
        parsed = Consistency.from_dict({"level": "bounded", "bound": 3})
        assert parsed == Consistency.bounded(3)
        assert parsed.max_staleness == 3
        assert FRESH.max_staleness == 0 and ANY.max_staleness is None
        with pytest.raises(RequestError):
            Consistency.from_dict("super-fresh")

    def test_ingest_update_forms(self):
        batch = IngestBatch(updates=[(1, 2), [3, 4, "delete"], [5, 6, -1]])
        assert [u.is_insert for u in batch.updates] == [True, False, False]
        with pytest.raises(RequestError):
            IngestBatch(updates=[(1, 2, "upsert")])
        with pytest.raises(RequestError):
            IngestBatch(updates=[(1,)])

    def test_unknown_op_rejected(self):
        with pytest.raises(RequestError):
            request_from_dict({"op": "frobnicate"})
        with pytest.raises(RequestError):
            request_from_dict("not an object")

    def test_missing_op_defaults_to_top_k(self):
        request = request_from_dict({"source": 3, "k": 2})
        assert isinstance(request, TopKQuery)
        assert (request.source, request.k) == (3, 2)

    @pytest.mark.parametrize(
        "request_",
        [
            TopKQuery(source=3, k=5, consistency=Consistency.bounded(2)),
            BatchQuery(sources=(1, 2, 1), consistency=ANY),
            HubQuery(hub=4, k=3),
            ScoreQuery(source=1, target=2),
            IngestBatch(updates=[(1, 2), (3, 4, "delete")], expect_version=7),
            Prefetch(sources=(9,)),
            CheckpointNow(),
            Stats(),
            Health(),
        ],
    )
    def test_wire_round_trip(self, request_):
        payload = json.loads(json.dumps(request_.to_dict()))
        assert request_from_dict(payload) == request_


# ---------------------------------------------------------------------- #
# error codes
# ---------------------------------------------------------------------- #


class TestErrorCodes:
    def test_every_class_has_a_distinct_stable_code(self):
        assert len(ERROR_CODES) == 14
        for code, cls in ERROR_CODES.items():
            assert cls.code == code

    def test_to_dict_round_trip_preserves_class_and_details(self):
        err = VertexError(17)
        back = error_from_dict(json.loads(json.dumps(err.to_dict())))
        assert type(back) is VertexError
        assert back.vertex == 17
        assert str(back) == str(err)

    def test_unknown_code_falls_back_to_base(self):
        assert type(error_from_dict({"code": "??", "message": "x"})) is ReproError

    def test_keyerror_str_quoting_suppressed(self):
        # KeyError.__str__ would render repr-quoted garbage inside JSON.
        assert str(VertexError(3)) == "invalid vertex: 3"
        assert str(EdgeError(1, 2)) == "invalid edge: 1 -> 2"
        info = ErrorInfo.from_exception(EdgeError(1, 2))
        assert json.loads(json.dumps(info.to_dict()))["message"] == "invalid edge: 1 -> 2"
        assert info.details == {"u": 1, "v": 2}

    def test_error_info_reconstructs_typed_exception(self):
        exc = ErrorInfo.from_exception(ConflictError(3, 5)).to_exception()
        assert isinstance(exc, ConflictError)
        assert (exc.expected, exc.actual) == (3, 5)


# ---------------------------------------------------------------------- #
# consistency levels
# ---------------------------------------------------------------------- #


class TestConsistency:
    def make(self):
        service = small_service()
        gateway = service.gateway
        gateway.submit(TopKQuery(source=0))  # resident at version 0
        for _ in range(3):
            service.ingest(insertions([(0, 1)]))
        return service, gateway

    def test_fresh_refreshes_to_latest(self):
        service, gateway = self.make()
        response = gateway.submit(TopKQuery(source=0, consistency=FRESH))
        assert response.snapshot_version == service.graph_version == 3

    def test_any_serves_resident_state(self):
        service, gateway = self.make()
        response = gateway.submit(TopKQuery(source=0, consistency=ANY))
        assert response.snapshot_version == 0
        assert service.graph_version == 3
        assert response.staleness == 3  # three single-update batches behind

    def test_bounded_within_bound_serves_stale(self):
        service, gateway = self.make()
        response = gateway.submit(
            TopKQuery(source=0, consistency=Consistency.bounded(5))
        )
        assert response.snapshot_version == 0

    def test_bounded_beyond_bound_refreshes(self):
        service, gateway = self.make()
        response = gateway.submit(
            TopKQuery(source=0, consistency=Consistency.bounded(2))
        )
        assert response.snapshot_version == 3

    def test_cold_admission_is_always_fresh(self):
        service, gateway = self.make()
        response = gateway.submit(TopKQuery(source=1, consistency=ANY))
        assert response.cold
        assert response.snapshot_version == service.graph_version

    def test_stale_read_matches_pre_ingest_answer(self):
        service = small_service()
        before = service.query(0, k=5)
        service.ingest(insertions([(0, 1), (1, 0)]))
        stale = service.query(0, k=5, max_staleness=None)
        assert [e.vertex for e in stale.entries] == [e.vertex for e in before.entries]
        assert [e.estimate for e in stale.entries] == [
            e.estimate for e in before.entries
        ]


# ---------------------------------------------------------------------- #
# scheduling: coalescing + write ordering
# ---------------------------------------------------------------------- #


class TestScheduling:
    def test_coalesced_equals_direct_query_many(self):
        import numpy as np

        rng = np.random.default_rng(3)
        coalesced = small_service(rng=np.random.default_rng(3))
        direct = small_service(rng=np.random.default_rng(3))
        sources = [0, 5, 0, 9, 5, 0, 7, 9]
        responses = coalesced.gateway.submit_many(
            [TopKQuery(source=s, k=4) for s in sources]
        )
        served = direct._execute_query_many(sources, 4)
        assert coalesced.gateway.counters["reads_coalesced"] == 4  # 8 reads, 4 unique
        for response, answer in zip(responses, served):
            assert response.ok
            assert response.source == answer.source
            assert [e.vertex for e in response.entries] == [
                e.vertex for e in answer.entries
            ]
            assert [e.estimate for e in response.entries] == [
                e.estimate for e in answer.entries
            ]
        assert rng is not None  # quiet linters about the unused seed twin

    def test_coalescing_respects_write_barriers(self):
        service = small_service()
        responses = service.gateway.submit_many(
            [
                TopKQuery(source=0),
                IngestBatch(updates=[(0, 1)]),
                TopKQuery(source=0),
            ]
        )
        assert [r.snapshot_version for r in responses] == [0, 1, 1]

    def test_mixed_shapes_do_not_coalesce_across_consistency(self):
        service = small_service()
        responses = service.gateway.submit_many(
            [
                TopKQuery(source=0, k=3),
                TopKQuery(source=0, k=5),  # different k: separate group
                TopKQuery(source=0, k=5, consistency=ANY),
            ]
        )
        assert all(r.ok for r in responses)
        assert [len(r.entries) for r in responses] == [3, 5, 5]
        assert service.gateway.counters["reads_coalesced"] == 0

    def test_coalesced_duplicate_cold_flags_match_dispatch(self):
        # Per-request dispatch admits on the first occurrence only; the
        # coalesced schedule must report the same per-request cold flags.
        coalesced = small_service()
        responses = coalesced.gateway.submit_many(
            [TopKQuery(source=2), TopKQuery(source=2)]
        )
        dispatch = small_service()
        dispatched = [
            dispatch.gateway.submit(TopKQuery(source=2)) for _ in range(2)
        ]
        assert [r.cold for r in responses] == [r.cold for r in dispatched] == [
            True,
            False,
        ]

    def test_explicit_gateway_becomes_the_service_gateway(self):
        # One engine, one scheduler: a directly-constructed gateway (the
        # `repro serve` pattern) must be the one the shims route through.
        service = small_service()
        gateway = Gateway(service, ApiConfig(coalesce_reads=False))
        assert service.gateway is gateway
        # A second explicit gateway shares the first's lock.
        assert Gateway(service)._lock is gateway._lock

    def test_expect_version_conflict(self):
        service = small_service()
        client = service.api
        version = client.health().graph_version
        client.ingest([(0, 1)], expect_version=version)
        with pytest.raises(ConflictError) as excinfo:
            client.ingest([(1, 2)], expect_version=version)
        assert excinfo.value.expected == version
        assert excinfo.value.actual == version + 1
        # submit() maps the same failure into an error response.
        response = service.gateway.submit(
            IngestBatch(updates=[(1, 2)], expect_version=version)
        )
        assert not response.ok and response.error.code == "CONFLICT"

    def test_failed_ingest_leaves_version_unchanged(self):
        service = small_service()
        response = service.gateway.submit(
            IngestBatch(updates=[(0, 1), (0, 1, "delete"), (5, 4, "delete")])
        )
        # Deleting an absent edge fails mid-batch; version must not move.
        assert not response.ok
        assert response.error.code in ("EDGE", "GRAPH")
        assert service.graph_version == 0


# ---------------------------------------------------------------------- #
# compatibility shims + client
# ---------------------------------------------------------------------- #


class TestShimsAndClient:
    def test_legacy_methods_route_through_gateway(self):
        service = small_service()
        service.query(0, k=3)
        service.query_many([1, 2], k=3)
        service.ingest(insertions([(0, 1)]))
        service.prefetch(9)
        counters = service.gateway.counters
        assert counters["top_k"] >= 1
        assert counters["batch"] == 1
        assert counters["ingest"] == 1
        assert counters["prefetch"] == 1

    def test_hub_shim_routes_through_gateway(self):
        import numpy as np

        graph = random_graph(np.random.default_rng(7), n=40, m=200)
        service = PPRService(graph, NUMPY_CONFIG, ServeConfig(num_hubs=2))
        entries = service.rank_for_hub(service.hubs[0], 3)
        assert len(entries) == 3
        assert service.gateway.counters["hub_top_k"] == 1

    def test_client_raises_typed_errors(self):
        service = small_service()
        with pytest.raises(VertexError):
            service.api.score(0, 10**9)
        with pytest.raises(ConfigError):
            service.api.hub_top_k(0)  # hub tier disabled
        with pytest.raises(ConfigError):
            service.api.checkpoint_now()  # no store attached

    def test_client_score_matches_topk_estimate(self):
        service = small_service()
        client = service.api
        top = client.top_k(0, k=1)
        score = client.score(0, top.entries[0].vertex)
        assert score.estimate == top.entries[0].estimate
        assert score.error_bound >= 0

    def test_client_prefetch_then_batch_admits_pending(self):
        service = small_service()
        client = service.api
        assert client.prefetch(3, 4).pending == 2
        client.top_k_many([3, 4])
        assert service.is_resident(3) and service.is_resident(4)

    def test_gateway_rejects_non_request(self):
        service = small_service()
        with pytest.raises(RequestError):
            service.gateway.execute({"op": "top_k"})

    def test_client_reuses_service_gateway(self):
        service = small_service()
        assert Client(service).gateway is service.gateway
        assert service.api.gateway is service.gateway

    def test_client_config_applies_before_first_use(self):
        service = small_service()
        client = Client(service, ApiConfig(coalesce_reads=False))
        assert client.config.coalesce_reads is False
        assert service.gateway.config.coalesce_reads is False


# ---------------------------------------------------------------------- #
# metrics surface
# ---------------------------------------------------------------------- #


class TestMetricsSurface:
    def test_empty_metrics_are_clean_zeros(self):
        metrics = ServiceMetrics()
        assert metrics.staleness_percentile(99) == 0.0
        assert metrics.latency_percentile(50) == 0.0
        payload = metrics.to_dict()
        assert payload["queries"] == 0
        assert payload["staleness_p99"] == 0.0
        assert payload["queries_per_second"] == 0.0
        json.dumps(payload)  # JSON-safe

    def test_stats_request_carries_metrics_and_gateway_counters(self):
        service = small_service()
        service.query(0)
        response = service.gateway.submit(Stats())
        assert response.stats["queries"] == 1
        assert response.stats["gateway"]["top_k"] == 1
        json.dumps(response.to_dict())
