"""The shared scheduling policy (:mod:`repro.api.scheduling`).

The plan is the contract both the single-process and the replicated
schedulers execute; these tests pin its shape (barriers, run boundaries,
dedupe, the max-batch cap) and — the regression the extraction must not
break — that interleaved read/write traffic through
:meth:`repro.api.Gateway.submit_many` keeps exact arrival-order
semantics and matches per-request dispatch bit for bit.
"""

from __future__ import annotations

import pytest

from repro import DynamicDiGraph, PPRService
from repro.api.requests import (
    ANY,
    FRESH,
    Consistency,
    Deadline,
    Health,
    IngestBatch,
    TopKQuery,
)
from repro.api.scheduling import ReadRun, Single, plan_schedule
from repro.graph import insertions


def reads(*sources, k=5, consistency=FRESH):
    return [TopKQuery(source=s, k=k, consistency=consistency) for s in sources]


def write(*edges):
    return IngestBatch(updates=tuple(insertions(list(edges))))


class TestPlanSchedule:
    def test_all_reads_one_run(self):
        steps = plan_schedule(reads(1, 2, 3), coalesce=True, max_batch=16)
        assert steps == [ReadRun((0, 1, 2), (1, 2, 3))]

    def test_duplicates_dedupe_in_first_occurrence_order(self):
        steps = plan_schedule(reads(7, 3, 7, 7, 1), coalesce=True, max_batch=16)
        assert steps == [ReadRun((0, 1, 2, 3, 4), (7, 3, 1))]
        assert steps[0].coalesced == 2

    def test_writes_are_barriers(self):
        requests = reads(1, 2) + [write((1, 2))] + reads(2, 3)
        steps = plan_schedule(requests, coalesce=True, max_batch=16)
        assert steps == [
            ReadRun((0, 1), (1, 2)),
            Single(2),
            ReadRun((3, 4), (2, 3)),
        ]

    def test_mixed_k_breaks_a_run(self):
        requests = reads(1, 2) + reads(3, k=9) + reads(4)
        steps = plan_schedule(requests, coalesce=True, max_batch=16)
        assert steps[0] == ReadRun((0, 1), (1, 2))
        # k=9 read cannot join either neighbor run.
        assert Single(2) in steps

    def test_mixed_consistency_breaks_a_run(self):
        requests = reads(1, 2) + reads(3, 4, consistency=ANY)
        steps = plan_schedule(requests, coalesce=True, max_batch=16)
        assert steps == [ReadRun((0, 1), (1, 2)), ReadRun((2, 3), (3, 4))]

    def test_bounded_consistency_must_match_exactly(self):
        requests = reads(1, 2, consistency=Consistency.bounded(2)) + reads(
            3, consistency=Consistency.bounded(3)
        )
        steps = plan_schedule(requests, coalesce=True, max_batch=16)
        assert steps[0] == ReadRun((0, 1), (1, 2))
        assert steps[1] == Single(2)

    def test_max_batch_caps_unique_sources(self):
        steps = plan_schedule(
            reads(1, 1, 1, 2, 2, 3), coalesce=True, max_batch=2
        )
        # The run closes once it holds max_batch unique sources;
        # positions past the cap start the next run.
        assert steps == [
            ReadRun((0, 1, 2, 3), (1, 2)),
            ReadRun((4, 5), (2, 3)),
        ]

    def test_single_read_degenerates(self):
        assert plan_schedule(reads(1), coalesce=True, max_batch=16) == [Single(0)]

    def test_coalesce_off_is_all_singles(self):
        steps = plan_schedule(reads(1, 2, 3), coalesce=False, max_batch=16)
        assert steps == [Single(0), Single(1), Single(2)]

    def test_non_topk_reads_stay_single(self):
        requests = reads(1, 2) + [Health()] + reads(3, 4)
        steps = plan_schedule(requests, coalesce=True, max_batch=16)
        assert steps == [
            ReadRun((0, 1), (1, 2)),
            Single(2),
            ReadRun((3, 4), (3, 4)),
        ]


@pytest.fixture
def service():
    return PPRService(
        DynamicDiGraph([(1, 0), (2, 0), (2, 1), (0, 2), (3, 1), (1, 3)])
    )


class TestInterleavedReadWriteOrdering:
    """Regression: the extracted policy keeps exact barrier semantics."""

    def test_reads_see_the_versions_their_position_implies(self, service):
        requests = (
            reads(0, 1)
            + [write((3, 2))]
            + reads(0, 0)
            + [write((2, 3))]
            + reads(1)
        )
        responses = service.gateway.submit_many(requests)
        assert [r.ok for r in responses] == [True] * 7
        # Before the first write: version 0; between: 1; after both: 2.
        assert [responses[i].snapshot_version for i in (0, 1)] == [0, 0]
        assert responses[2].snapshot_version == 1
        assert [responses[i].snapshot_version for i in (3, 4)] == [1, 1]
        assert responses[5].snapshot_version == 2
        assert responses[6].snapshot_version == 2

    def test_matches_per_request_dispatch_bit_for_bit(self, service):
        shadow = PPRService(
            DynamicDiGraph([(1, 0), (2, 0), (2, 1), (0, 2), (3, 1), (1, 3)])
        )
        requests = (
            reads(0, 1, 0)
            + [write((3, 2))]
            + reads(2, 0, 2, 1)
            + [write((2, 3))]
            + reads(0, 3)
        )
        scheduled = service.gateway.submit_many(requests)
        dispatched = [shadow.gateway.submit(r) for r in requests]
        for left, right in zip(scheduled, dispatched):
            assert left.ok and right.ok
            assert left.snapshot_version == right.snapshot_version
            assert left.staleness == right.staleness
            if isinstance(left, type(right)) and hasattr(left, "entries"):
                assert left.cold == right.cold
                assert [e.vertex for e in left.entries] == [
                    e.vertex for e in right.entries
                ]
                assert [e.estimate for e in left.entries] == [
                    e.estimate for e in right.entries
                ]

    def test_coalescing_never_crosses_a_barrier(self, service):
        requests = reads(0, 1) + [write((3, 2))] + reads(0, 1)
        service.gateway.submit_many(requests)
        # Two runs of two unique sources each: nothing was deduplicated
        # across the write barrier.
        assert service.gateway.counters["reads_coalesced"] == 0
        service.gateway.submit_many(reads(0, 0, 1))
        assert service.gateway.counters["reads_coalesced"] == 1


class TestDeadlinePlumbing:
    """Coalesced runs must honour their most impatient member."""

    def test_run_inherits_the_tightest_member_deadline(self):
        tight = Deadline.after_ms(50.0)
        loose = Deadline.after_ms(5000.0)
        requests = [
            TopKQuery(source=0, k=5, consistency=FRESH, deadline=loose),
            TopKQuery(source=1, k=5, consistency=FRESH, deadline=tight),
            TopKQuery(source=2, k=5, consistency=FRESH),
        ]
        (run,) = plan_schedule(requests, coalesce=True, max_batch=8)
        assert isinstance(run, ReadRun)
        assert run.deadline is tight

    def test_run_without_deadlines_carries_none(self):
        (run,) = plan_schedule(reads(0, 1, 2), coalesce=True, max_batch=8)
        assert isinstance(run, ReadRun)
        assert run.deadline is None

    def test_deadline_does_not_change_plan_shape_or_equality(self):
        plain = plan_schedule(reads(0, 1, 2), coalesce=True, max_batch=8)
        deadlined = plan_schedule(
            [
                TopKQuery(
                    source=s, k=5, consistency=FRESH,
                    deadline=Deadline.after_ms(10.0),
                )
                for s in (0, 1, 2)
            ],
            coalesce=True,
            max_batch=8,
        )
        # Deadline is compare=False: the plans are equal by shape.
        assert plain == deadlined

    def test_interleaving_regression_each_run_gets_its_own_tightest(self):
        """A barrier splits runs; each run takes *its* members' minimum."""
        first_tight = Deadline.after_ms(20.0)
        second_tight = Deadline.after_ms(70.0)
        requests = [
            TopKQuery(source=0, k=5, consistency=FRESH, deadline=first_tight),
            TopKQuery(
                source=1, k=5, consistency=FRESH,
                deadline=Deadline.after_ms(9000.0),
            ),
            write((3, 2)),
            TopKQuery(
                source=0, k=5, consistency=FRESH,
                deadline=Deadline.after_ms(8000.0),
            ),
            TopKQuery(source=1, k=5, consistency=FRESH, deadline=second_tight),
        ]
        first, barrier, second = plan_schedule(
            requests, coalesce=True, max_batch=8
        )
        assert isinstance(first, ReadRun) and first.deadline is first_tight
        assert isinstance(barrier, Single)
        assert isinstance(second, ReadRun) and second.deadline is second_tight

    def test_expired_member_fails_the_whole_run_per_position(self, service):
        import time

        expired = Deadline.after_ms(0.5)
        time.sleep(0.005)
        requests = [
            TopKQuery(source=0, k=5, consistency=FRESH),
            TopKQuery(source=1, k=5, consistency=FRESH, deadline=expired),
        ]
        responses = service.gateway.submit_many(requests)
        assert len(responses) == 2
        for response in responses:
            assert response.error is not None
            assert response.error.code == "DEADLINE"
        # Each position still reports its own source.
        assert [r.source for r in responses] == [0, 1]

    def test_generous_deadlines_round_trip_through_a_coalesced_run(
        self, service
    ):
        requests = [
            TopKQuery(
                source=s, k=5, consistency=FRESH,
                deadline=Deadline.after_ms(60000.0),
            )
            for s in (0, 1, 0)
        ]
        responses = service.gateway.submit_many(requests)
        assert all(r.ok for r in responses)
        assert service.gateway.counters["reads_coalesced"] >= 1
