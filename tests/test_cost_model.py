"""Tests for the hardware cost models (monotonicity and structure)."""

from __future__ import annotations

import pytest

from repro import CPUCostModel, GPUCostModel, LigraCostModel, MonteCarloCostModel
from repro.config import Phase
from repro.core.stats import IterationRecord, PushStats, SequentialPushStats


def trace(iters, frontier=100, edges=1000, dedup=0):
    stats = PushStats()
    for _ in range(iters):
        stats.record(
            IterationRecord(
                phase=Phase.POS,
                frontier_size=frontier,
                edge_traversals=edges,
                atomic_adds=edges,
                dedup_checks=dedup,
            )
        )
    return stats


class TestCPUModel:
    def test_more_workers_lower_latency(self):
        t = trace(10, edges=100_000)
        lat = [CPUCostModel(workers=w).parallel_latency(t) for w in (1, 8, 40)]
        assert lat[0] > lat[1] > lat[2]

    def test_more_work_higher_latency(self):
        model = CPUCostModel()
        assert model.parallel_latency(trace(10, edges=10_000)) > model.parallel_latency(
            trace(10, edges=1_000)
        )

    def test_dedup_costs_extra(self):
        model = CPUCostModel()
        assert model.parallel_latency(trace(5, dedup=50_000)) > model.parallel_latency(
            trace(5, dedup=0)
        )

    def test_barriers_charge_per_iteration(self):
        model = CPUCostModel()
        few = model.parallel_latency(trace(1, frontier=1000, edges=10_000))
        many = model.parallel_latency(trace(100, frontier=10, edges=100))
        assert many > few  # same total work, more synchronization

    def test_sequential_latency(self):
        model = CPUCostModel(workers=1)
        stats = SequentialPushStats(pushes=1000, edge_traversals=10_000)
        lat = model.sequential_latency(stats, num_updates=10)
        expected = (
            10 * model.seconds_per_restore
            + 1000 * model.seconds_per_push
            + 10_000 * model.seconds_per_edge
        )
        assert lat == pytest.approx(expected)

    def test_with_workers_preserves_constants(self):
        base = CPUCostModel()
        scaled = base.with_workers(7)
        assert scaled.workers == 7
        assert scaled.seconds_per_edge == base.seconds_per_edge

    def test_amdahl_effect(self):
        # Throughput scaling must taper: 40 cores < 40x speedup.
        t = trace(50, frontier=500, edges=5_000)
        lat1 = CPUCostModel(workers=1).parallel_latency(t)
        lat40 = CPUCostModel(workers=40).parallel_latency(t)
        assert 1.0 < lat1 / lat40 < 40.0


class TestGPUModel:
    def test_occupancy_monotone(self):
        model = GPUCostModel()
        assert model.occupancy(0) == 0.0
        assert model.occupancy(1000) < model.occupancy(100_000)
        assert model.occupancy(10**9) == 1.0

    def test_launch_dominates_small_iterations(self):
        model = GPUCostModel()
        lat = model.parallel_latency(trace(100, frontier=1, edges=2))
        assert lat >= 100 * 2 * model.kernel_launch_seconds

    def test_large_batches_beat_cpu(self):
        # The crossover the paper observes: huge frontiers favor the GPU.
        big = trace(20, frontier=50_000, edges=500_000)
        gpu = GPUCostModel().parallel_latency(big)
        cpu = CPUCostModel(workers=40).parallel_latency(big)
        assert gpu < cpu

    def test_small_batches_favor_cpu(self):
        small = trace(200, frontier=2, edges=10)
        gpu = GPUCostModel().parallel_latency(small)
        cpu = CPUCostModel(workers=40).parallel_latency(small)
        assert cpu < gpu


class TestMonteCarloModel:
    def test_index_ops_dominate(self):
        model = MonteCarloCostModel()
        assert model.latency(0, 1000) > model.latency(1000, 0)

    def test_monotone(self):
        model = MonteCarloCostModel()
        assert model.latency(10, 10) < model.latency(100, 100)


class TestLigraModel:
    def test_slower_than_specialized_cpu(self):
        t = trace(10, frontier=1000, edges=50_000)
        ligra = LigraCostModel().parallel_latency(t, num_vertices=10_000, num_edges=100_000)
        cpu = CPUCostModel().parallel_latency(t)
        assert ligra > cpu

    def test_dense_mode_charges_scan(self):
        t = trace(1, frontier=100, edges=90_000)
        small_graph = LigraCostModel().parallel_latency(
            t, num_vertices=1_000_000, num_edges=100_000
        )
        # Same trace on a graph where it stays sparse:
        sparse = LigraCostModel().parallel_latency(
            t, num_vertices=1_000_000, num_edges=100_000_000
        )
        assert small_graph > sparse
