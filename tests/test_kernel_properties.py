"""Differential oracle: compiled kernel vs numpy, property-based.

The compiled C kernel (:mod:`repro.kernels`) claims **bit identity** with
the vectorized numpy engine — not approximate agreement, the same
doubles. Hypothesis drives random dynamic graphs through both and
compares raw arrays after every stage:

1. from-scratch convergence on a random graph, every push variant;
2. dynamic-update sequences: apply updates, repair the invariant, push
   with the touched-vertex seeds — estimates *and* residuals must match
   bitwise at every batch boundary;
3. frontier order-insensitivity: a permuted seed set must not change the
   compiled kernel's result (the frontier is sorted/deduplicated before
   the per-edge loop, so iteration order is canonical).

These run in CI's differential-oracle job with the extension built; on a
host with no C compiler the whole module skips (there is nothing to
compare — the fallback *is* the oracle).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    Backend,
    DynamicDiGraph,
    EdgeOp,
    EdgeUpdate,
    PPRConfig,
    PPRState,
    PushVariant,
    parallel_local_push,
)
from repro import kernels
from repro.config import KernelConfig, KernelMode
from repro.core.invariant import restore_invariant

pytestmark = pytest.mark.skipif(
    kernels.load_library()[0] is None,
    reason="differential oracle needs the compiled kernel",
)

N_VERTICES = 12

COMPILED = KernelConfig(mode=KernelMode.COMPILED)
NUMPY = KernelConfig(mode=KernelMode.NUMPY)


def config_for(variant: PushVariant, kernel: KernelConfig) -> PPRConfig:
    return PPRConfig(
        alpha=0.2,
        epsilon=1e-4,
        variant=variant,
        backend=Backend.NUMPY,
        workers=1,
        kernel=kernel,
    )


@st.composite
def graph_edges(draw, max_edges=30):
    pairs = st.tuples(
        st.integers(0, N_VERTICES - 1), st.integers(0, N_VERTICES - 1)
    ).filter(lambda p: p[0] != p[1])
    return draw(st.lists(pairs, min_size=1, max_size=max_edges, unique=True))


@st.composite
def dynamic_case(draw, max_updates=12):
    """(initial edges, update sequence) with deletes only of present edges."""
    edges = draw(graph_edges())
    present = set(edges)
    updates = []
    for _ in range(draw(st.integers(1, max_updates))):
        delete = bool(present) and draw(st.booleans())
        if delete:
            u, v = draw(st.sampled_from(sorted(present)))
            updates.append(EdgeUpdate(u, v, EdgeOp.DELETE))
            present.discard((u, v))
        else:
            pair = draw(
                st.tuples(
                    st.integers(0, N_VERTICES - 1),
                    st.integers(0, N_VERTICES - 1),
                ).filter(lambda p: p[0] != p[1] and p not in present)
            )
            updates.append(EdgeUpdate(pair[0], pair[1], EdgeOp.INSERT))
            present.add(pair)
    return edges, updates


def assert_bit_identical(left: PPRState, right: PPRState) -> None:
    # array_equal, not allclose: the contract is the same doubles,
    # including signed zeros agreeing after the dense-accumulator path.
    np.testing.assert_array_equal(left.p, right.p)
    np.testing.assert_array_equal(left.r, right.r)


@pytest.mark.parametrize("variant", list(PushVariant))
@given(edges=graph_edges(), source=st.integers(0, N_VERTICES - 1))
def test_from_scratch_push_is_bit_identical(variant, edges, source):
    states = []
    for kernel in (COMPILED, NUMPY):
        graph = DynamicDiGraph(edges)
        state = PPRState.initial(source, max(graph.capacity, source + 1))
        parallel_local_push(state, graph, config_for(variant, kernel))
        states.append(state)
    assert_bit_identical(*states)


@pytest.mark.parametrize(
    "variant", [PushVariant.VANILLA, PushVariant.OPT]
)
@given(case=dynamic_case(), source=st.integers(0, N_VERTICES - 1))
def test_dynamic_updates_stay_bit_identical(variant, case, source):
    edges, updates = case
    finals = []
    for kernel in (COMPILED, NUMPY):
        config = config_for(variant, kernel)
        graph = DynamicDiGraph(edges)
        state = PPRState.initial(source, max(graph.capacity, source + 1))
        parallel_local_push(state, graph, config)
        snapshots = [(state.p.copy(), state.r.copy())]
        for update in updates:
            graph.apply(update)
            state.ensure_capacity(graph.capacity)
            restore_invariant(state, graph, update, config.alpha)
            parallel_local_push(
                state, graph, config, seeds=[update.u, state.source]
            )
            snapshots.append((state.p.copy(), state.r.copy()))
        finals.append(snapshots)
    for (p_a, r_a), (p_b, r_b) in zip(*finals):
        np.testing.assert_array_equal(p_a, p_b)
        np.testing.assert_array_equal(r_a, r_b)


@given(
    case=dynamic_case(),
    source=st.integers(0, N_VERTICES - 1),
    seed_order=st.randoms(use_true_random=False),
)
def test_seed_order_cannot_change_the_answer(case, source, seed_order):
    """A permuted (even duplicated) seed set is the same frontier."""
    edges, updates = case
    config = config_for(PushVariant.OPT, COMPILED)
    results = []
    for permute in (False, True):
        graph = DynamicDiGraph(edges)
        state = PPRState.initial(source, max(graph.capacity, source + 1))
        parallel_local_push(state, graph, config)
        for update in updates:
            graph.apply(update)
        state.ensure_capacity(graph.capacity)
        for update in updates:
            restore_invariant(state, graph, update, config.alpha)
        seeds = [u.u for u in updates] + [source]
        if permute:
            seed_order.shuffle(seeds)
            seeds = seeds + seeds[:2]  # duplicates must be harmless too
        parallel_local_push(state, graph, config, seeds=seeds)
        results.append(state)
    assert_bit_identical(*results)
