"""Tests for the operation-accounting layer (PushStats and friends)."""

from __future__ import annotations

import pytest

from repro.config import Phase
from repro.core.stats import (
    BatchStats,
    IterationRecord,
    PushStats,
    RestoreStats,
    SequentialPushStats,
)


def record(frontier=2, edges=5, dedup=1):
    return IterationRecord(
        phase=Phase.POS,
        frontier_size=frontier,
        edge_traversals=edges,
        atomic_adds=edges,
        enqueue_attempts=dedup,
        dedup_checks=dedup,
        enqueued=1,
        residual_pushed=0.5,
    )


class TestPushStats:
    def test_totals(self):
        stats = PushStats()
        stats.record(record(frontier=2, edges=5))
        stats.record(record(frontier=3, edges=7))
        assert stats.num_iterations == 2
        assert stats.pushes == 5
        assert stats.edge_traversals == 12
        assert stats.atomic_adds == 12
        assert stats.total_operations == 17
        assert stats.max_frontier == 3
        assert stats.mean_frontier == pytest.approx(2.5)
        assert stats.dedup_checks == 2
        assert stats.enqueue_attempts == 2

    def test_empty(self):
        stats = PushStats()
        assert stats.pushes == 0
        assert stats.max_frontier == 0
        assert stats.mean_frontier == 0.0

    def test_merge_appends_iterations(self):
        a = PushStats()
        a.record(record())
        b = PushStats()
        b.record(record())
        b.record(record())
        a.merge(b)
        assert a.num_iterations == 3

    def test_repr(self):
        stats = PushStats()
        stats.record(record())
        assert "iters=1" in repr(stats)


class TestSequentialPushStats:
    def test_merge(self):
        a = SequentialPushStats(pushes=2, edge_traversals=5, push_order=[1, 2])
        b = SequentialPushStats(pushes=3, edge_traversals=7, push_order=[3])
        a.merge(b)
        assert a.pushes == 5
        assert a.edge_traversals == 12
        assert a.total_operations == 17
        assert a.push_order == [1, 2, 3]

    def test_merge_without_order(self):
        a = SequentialPushStats(pushes=1, edge_traversals=1)
        a.merge(SequentialPushStats(pushes=1, edge_traversals=1, push_order=[7]))
        assert a.push_order is None  # order tracking stays off


class TestBatchStats:
    def test_merge(self):
        a = BatchStats(restore=RestoreStats(2, 0.5))
        a.push.record(record())
        a.wall_time = 1.0
        b = BatchStats(restore=RestoreStats(3, 0.25))
        b.push.record(record())
        b.wall_time = 0.5
        a.merge(b)
        assert a.restore.num_updates == 5
        assert a.restore.total_residual_change == pytest.approx(0.75)
        assert a.push.num_iterations == 2
        assert a.wall_time == pytest.approx(1.5)

    def test_merge_sequential_parts(self):
        a = BatchStats(sequential_push=SequentialPushStats(pushes=1, edge_traversals=2))
        b = BatchStats(sequential_push=SequentialPushStats(pushes=4, edge_traversals=8))
        a.merge(b)
        assert a.sequential_push.pushes == 5
