"""Property-based tests (hypothesis) for the shard partitioners.

The laws every :class:`~repro.shard.partitioner.Partitioner` must honor
for the sharded tier to be correct (see the module docstring there):

1. **total and deterministic** — any vertex id maps to exactly one
   shard in ``[0, num_shards)``, the same one on every call, and the
   vectorized ``owners`` agrees bit-for-bit with the scalar ``owner``;
2. **manifest round-trip** — a partitioner rebuilt from its recovery
   manifest routes identically (a cold-started gateway must route like
   the one that wrote the checkpoints);
3. **balanced under skew** — the stateless hash splits even Zipf-drawn
   (heavy-tailed, duplicate-free) id sets to within a loose bound of
   even, so no shard silently inherits most of the graph;
4. **repartition-free** — ownership of an id never changes as the
   vertex universe grows (new ids appearing, capacity rising); a moved
   vertex would invalidate every shard's WAL history.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.partitioner import (
    DegreePartitioner,
    HashPartitioner,
    partitioner_from_manifest,
)

shard_counts = st.integers(1, 9)
vertex_ids = st.integers(0, 2**48 - 1)


def degree_partitioners(num_shards: int, table_ids: list[int]) -> DegreePartitioner:
    table = {v: i % num_shards for i, v in enumerate(sorted(set(table_ids)))}
    return DegreePartitioner(num_shards, table)


# ---------------------------------------------------------------------- #
# 1. total, deterministic, scalar == vectorized
# ---------------------------------------------------------------------- #


@given(shards=shard_counts, ids=st.lists(vertex_ids, min_size=1, max_size=64))
def test_hash_routing_total_deterministic_and_vectorized(shards, ids):
    partitioner = HashPartitioner(shards)
    scalar = [partitioner.owner(v) for v in ids]
    assert all(0 <= owner < shards for owner in scalar)
    # Deterministic: a second pass and a fresh instance agree.
    assert scalar == [partitioner.owner(v) for v in ids]
    assert scalar == [HashPartitioner(shards).owner(v) for v in ids]
    vectorized = partitioner.owners(np.asarray(ids, dtype=np.int64))
    assert vectorized.tolist() == scalar


@given(
    shards=shard_counts,
    table_ids=st.lists(vertex_ids, max_size=32),
    ids=st.lists(vertex_ids, min_size=1, max_size=64),
)
def test_degree_routing_total_deterministic_and_vectorized(shards, table_ids, ids):
    partitioner = degree_partitioners(shards, table_ids)
    scalar = [partitioner.owner(v) for v in ids]
    assert all(0 <= owner < shards for owner in scalar)
    assert scalar == [partitioner.owner(v) for v in ids]
    vectorized = partitioner.owners(np.asarray(ids, dtype=np.int64))
    assert vectorized.tolist() == scalar


# ---------------------------------------------------------------------- #
# 2. manifest round-trip
# ---------------------------------------------------------------------- #


@given(
    shards=shard_counts,
    table_ids=st.lists(vertex_ids, max_size=32),
    ids=st.lists(vertex_ids, min_size=1, max_size=64),
)
def test_manifest_round_trip_routes_identically(shards, table_ids, ids):
    for partitioner in (
        HashPartitioner(shards),
        degree_partitioners(shards, table_ids),
    ):
        rebuilt = partitioner_from_manifest(partitioner.to_manifest())
        assert type(rebuilt) is type(partitioner)
        assert [rebuilt.owner(v) for v in ids] == [
            partitioner.owner(v) for v in ids
        ]


# ---------------------------------------------------------------------- #
# 3. hash balance under Zipf-like skew
# ---------------------------------------------------------------------- #


@given(
    shards=st.integers(2, 8),
    seed=st.integers(0, 2**32 - 1),
    population=st.integers(2_000, 50_000),
)
@settings(max_examples=25, deadline=None)
def test_hash_balance_on_zipf_ids(shards, seed, population):
    """Distinct ids drawn Zipf-style still spread within 25% of even.

    The draw is heavy-tailed over a large id space (the adversarial
    shape real vertex ids take), deduplicated because placement is a
    function of the id set, not of draw frequency.
    """
    rng = np.random.default_rng(seed)
    drawn = rng.zipf(1.3, size=population)
    ids = np.unique(drawn[drawn < 2**48].astype(np.int64))
    assert len(ids) >= 100  # the bound below is meaningless on tiny sets
    owners = HashPartitioner(shards).owners(ids)
    counts = np.bincount(owners, minlength=shards)
    even = len(ids) / shards
    assert counts.max() <= even * 1.25, (
        f"worst shard holds {counts.max()} of {len(ids)} ids"
        f" ({counts.max() / even:.2f}x even split)"
    )


# ---------------------------------------------------------------------- #
# 4. repartition-free growth
# ---------------------------------------------------------------------- #


@given(
    shards=shard_counts,
    table_ids=st.lists(vertex_ids, max_size=32),
    ids=st.lists(vertex_ids, min_size=1, max_size=48),
    growth=st.lists(vertex_ids, min_size=1, max_size=48),
)
def test_ownership_stable_under_vertex_growth(shards, table_ids, ids, growth):
    """New vertices appearing never move existing ones.

    Placement is a pure function of the id — there is no dependence on
    the current vertex count, capacity, or insertion order — so the
    owners recorded before growth match the owners after.
    """
    for partitioner in (
        HashPartitioner(shards),
        degree_partitioners(shards, table_ids),
    ):
        before = {v: partitioner.owner(v) for v in ids}
        for v in growth:  # "grow" the universe: route brand-new ids
            assert 0 <= partitioner.owner(v) < shards
        assert {v: partitioner.owner(v) for v in ids} == before
