"""Tests for error certification and convergence diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigError,
    DynamicDiGraph,
    PPRConfig,
    PPRState,
    certified_comparison,
    certified_top_k,
    convergence_report,
    error_bound,
    ground_truth_ppr,
    parallel_local_push,
    residual_decay,
)
from repro.graph.generators import erdos_renyi_graph


def converged(graph, source, epsilon=1e-6, alpha=0.2):
    config = PPRConfig(alpha=alpha, epsilon=epsilon)
    state = PPRState.initial(source, graph.capacity)
    stats = parallel_local_push(state, graph, config, seeds=[source])
    return state, stats


class TestErrorBound:
    def test_bound_is_residual_linf(self, rng):
        edges = erdos_renyi_graph(25, 100, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        state, _ = converged(g, 0)
        assert error_bound(state) == state.residual_linf()

    def test_bound_is_sound_vs_truth(self, rng):
        # The rigorous bound must dominate the actual error — including
        # mid-run, before convergence (invariant holds throughout).
        edges = erdos_renyi_graph(25, 100, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        truth = ground_truth_ppr(g, 0, 0.2)
        for epsilon in (0.5, 1e-2, 1e-5):
            state, _ = converged(g, 0, epsilon=epsilon)
            actual = float(np.abs(state.p[: len(truth)] - truth).max())
            assert actual <= error_bound(state) + 1e-12


class TestCertifiedTopK:
    def test_certified_positions_are_correct(self, rng):
        edges = erdos_renyi_graph(30, 150, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        state, _ = converged(g, 0, epsilon=1e-8)
        truth = ground_truth_ppr(g, 0, 0.2)
        true_order = np.argsort(truth)[::-1]
        for i, entry in enumerate(certified_top_k(state, 5)):
            assert entry.lower <= entry.estimate <= entry.upper
            if entry.position_certified:
                assert entry.vertex == int(true_order[i])

    def test_loose_epsilon_leaves_ties_uncertified(self, rng):
        edges = erdos_renyi_graph(30, 150, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        state, _ = converged(g, 0, epsilon=0.5)  # intervals all overlap
        entries = certified_top_k(state, 5)
        assert not any(e.position_certified for e in entries[1:])

    def test_k_validation(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        with pytest.raises(ConfigError):
            certified_top_k(state, 0)


class TestCertifiedComparison:
    def test_decided_and_undecided(self, rng):
        edges = erdos_renyi_graph(30, 150, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        state, _ = converged(g, 0, epsilon=1e-9)
        top = state.top_k(2)
        smallest = int(np.argmin(state.p[:30]))
        assert certified_comparison(state, top[0][0], smallest) == 1
        assert certified_comparison(state, smallest, top[0][0]) == -1
        assert certified_comparison(state, smallest, smallest) is None


class TestConvergenceReport:
    def test_report_fields(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        stats = parallel_local_push(state, paper_graph, paper_config, seeds=[1])
        report = convergence_report(state, stats)
        assert report.iterations == 3
        assert report.total_pushes == 5
        assert report.peak_frontier == 2
        assert report.final_error_bound <= paper_config.epsilon
        assert "5 pushes" in str(report)

    def test_residual_decay_series(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        stats = parallel_local_push(state, paper_graph, paper_config, seeds=[1])
        decay = residual_decay(stats)
        assert len(decay) == stats.num_iterations
        assert decay[0] == pytest.approx(1.0)  # first iteration pushes r(s)=1
        assert all(a >= b - 1e-12 for a, b in zip(decay, decay[1:]))
