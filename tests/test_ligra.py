"""Tests for the mini vertex-centric framework and the PPR on top of it."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicDiGraph, CSRGraph, PPRConfig, ground_truth_linear
from repro.baselines.ligra.framework import (
    LigraGraph,
    VertexSubset,
    edge_map,
    vertex_map,
)
from repro.baselines.ligra.ppr import LigraDynamicPPR
from repro.errors import GraphError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.update import deletions, insertions


class TestVertexSubset:
    def test_sparse_dense_roundtrip(self):
        s = VertexSubset.from_ids(10, np.array([3, 1, 3]))
        assert len(s) == 2
        assert s.to_mask()[[1, 3]].all()
        d = VertexSubset(10, mask=s.to_mask().copy())
        assert sorted(d.to_ids().tolist()) == [1, 3]
        assert len(d) == 2

    def test_requires_exactly_one_form(self):
        with pytest.raises(GraphError):
            VertexSubset(5)
        with pytest.raises(GraphError):
            VertexSubset(5, ids=np.array([1]), mask=np.zeros(5, dtype=bool))

    def test_empty(self):
        assert len(VertexSubset.empty(5)) == 0


class TestEdgeMap:
    def _graph(self):
        # in-edges of 0: {1, 2}; of 1: {3}
        return LigraGraph(CSRGraph.from_digraph(DynamicDiGraph([(1, 0), (2, 0), (3, 1)])))

    def test_applies_update_fn(self):
        g = self._graph()
        seen = []

        def update(sources, targets):
            seen.extend(zip(sources.tolist(), targets.tolist()))
            return np.ones(len(targets), dtype=bool)

        res = edge_map(g, VertexSubset.from_ids(4, np.array([0])), update)
        assert sorted(seen) == [(0, 1), (0, 2)]
        assert sorted(res.frontier.to_ids().tolist()) == [1, 2]
        assert res.edges_traversed == 2

    def test_cond_filters_targets(self):
        g = self._graph()

        def update(sources, targets):
            return np.ones(len(targets), dtype=bool)

        res = edge_map(
            g,
            VertexSubset.from_ids(4, np.array([0])),
            update,
            cond=lambda t: t == 2,
        )
        assert res.frontier.to_ids().tolist() == [2]
        assert res.edges_traversed == 1

    def test_dense_switching(self):
        # With divisor 1 the threshold is m, so any frontier with edges
        # stays sparse; with a huge frontier relative to m it goes dense.
        g = self._graph()

        def update(sources, targets):
            return np.ones(len(targets), dtype=bool)

        sparse = edge_map(g, VertexSubset.from_ids(4, np.array([0])), update, dense_divisor=1)
        assert not sparse.dense_mode
        dense = edge_map(g, VertexSubset.from_ids(4, np.array([0, 1, 2, 3])), update, dense_divisor=20)
        assert dense.dense_mode
        assert dense.scanned_vertices == 4

    def test_sparse_output_deduplicated(self):
        # Pad with edges among high ids so the small frontier stays sparse.
        base = DynamicDiGraph([(1, 0), (1, 2)])
        for i in range(100):
            base.add_edge(10 + i, 11 + i)
        g = LigraGraph(CSRGraph.from_digraph(base))

        def update(sources, targets):
            return np.ones(len(targets), dtype=bool)

        res = edge_map(g, VertexSubset.from_ids(111, np.array([0, 2])), update)
        assert not res.dense_mode
        assert res.frontier.to_ids().tolist() == [1]  # 1 reached twice, kept once
        assert res.duplicate_flag_ops == 2

    def test_empty_frontier(self):
        g = self._graph()
        res = edge_map(g, VertexSubset.empty(4), lambda s, t: np.ones(0, dtype=bool))
        assert len(res.frontier) == 0
        assert res.edges_traversed == 0


class TestVertexMap:
    def test_applies(self):
        hits = []
        n = vertex_map(VertexSubset.from_ids(5, np.array([0, 4])), lambda ids: hits.extend(ids))
        assert n == 2
        assert sorted(hits) == [0, 4]


class TestLigraPPR:
    def test_initial_accuracy(self, rng):
        edges = erdos_renyi_graph(30, 150, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        ppr = LigraDynamicPPR(g.copy(), 0, PPRConfig(alpha=0.2, epsilon=1e-5))
        truth = ground_truth_linear(g, 0, 0.2)
        assert np.abs(ppr.state.p[: len(truth)] - truth).max() <= 1e-5

    def test_dynamic_maintenance(self, rng):
        edges = erdos_renyi_graph(30, 150, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        ppr = LigraDynamicPPR(g, 0, PPRConfig(alpha=0.2, epsilon=1e-4))
        batch = insertions([(0, 9), (9, 17)]) + deletions([tuple(edges[0])])
        stats = ppr.apply_batch(batch)
        assert stats.restore.num_updates == 3
        truth = ground_truth_linear(ppr.graph, 0, 0.2)
        assert np.abs(ppr.state.p[: len(truth)] - truth).max() <= 1e-4

    def test_framework_pays_dedup_costs(self, rng):
        # The point of the baseline: its trace shows framework-level
        # dedup flag ops that the specialized OPT variant avoids.
        edges = erdos_renyi_graph(30, 150, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        ppr = LigraDynamicPPR(g, 0, PPRConfig(alpha=0.2, epsilon=1e-5))
        assert ppr.initial_stats.push.dedup_checks > 0
