"""Unit tests for the sequential local push and its drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DynamicDiGraph,
    PPRConfig,
    PPRState,
    check_invariant,
    cpu_base_update,
    cpu_seq_update,
    ground_truth_ppr,
    max_estimate_error,
    sequential_local_push,
)
from repro.graph.generators import erdos_renyi_graph
from repro.graph.update import deletions, insertions


def make_random(rng, n=25, m=100):
    edges = erdos_renyi_graph(n, m, rng=rng)
    return DynamicDiGraph(map(tuple, edges.tolist()))


class TestConvergence:
    @pytest.mark.parametrize("epsilon", [1e-2, 1e-4, 1e-6])
    def test_epsilon_accuracy_guarantee(self, epsilon, rng):
        g = make_random(rng)
        config = PPRConfig(alpha=0.2, epsilon=epsilon)
        state = PPRState.initial(0, g.capacity)
        sequential_local_push(state, g, config, seeds=[0])
        assert state.residual_linf() <= epsilon
        truth = ground_truth_ppr(g, 0, 0.2)
        assert max_estimate_error(state.p, truth) <= epsilon

    def test_invariant_held_throughout(self, rng):
        g = make_random(rng)
        config = PPRConfig(alpha=0.3, epsilon=1e-5)
        state = PPRState.initial(0, g.capacity)
        sequential_local_push(state, g, config, seeds=[0])
        assert check_invariant(state, g, 0.3)

    def test_negative_phase(self, paper_graph):
        # Manufacture a negative residual (as a deletion would) and check
        # the second phase drains it.
        config = PPRConfig(alpha=0.5, epsilon=0.1)
        state = PPRState.initial(1, paper_graph.capacity)
        sequential_local_push(state, paper_graph, config, seeds=[1])
        state.p[3] += 0.5 * 0.4  # emulate a push of residual -0.4 ...
        state.r[3] -= 0.4  # ... that Lemma 1 permits: invariant preserved
        sequential_local_push(state, paper_graph, config, seeds=[3])
        assert state.residual_linf() <= 0.1

    def test_no_work_when_converged(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        sequential_local_push(state, paper_graph, paper_config, seeds=[1])
        stats = sequential_local_push(state, paper_graph, paper_config, seeds=[1])
        assert stats.pushes == 0

    def test_seeds_none_scans_state(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        stats = sequential_local_push(state, paper_graph, paper_config)
        assert stats.pushes > 0
        assert state.residual_linf() <= paper_config.epsilon


class TestStats:
    def test_edge_traversals_counted(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        stats = sequential_local_push(state, paper_graph, paper_config, seeds=[1])
        # Pushes v1 (2 in-nbrs), v2 (1), v3 (1), v4 (1).
        assert stats.pushes == 4
        assert stats.edge_traversals == 5
        assert stats.total_operations == 9

    def test_order_not_recorded_by_default(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        stats = sequential_local_push(state, paper_graph, paper_config, seeds=[1])
        assert stats.push_order is None


class TestDrivers:
    def test_cpu_base_and_seq_both_accurate(self, rng):
        config = PPRConfig(alpha=0.2, epsilon=1e-4)
        updates = insertions([(0, 5), (5, 9), (9, 0), (3, 5)]) + deletions([(0, 5)])
        results = {}
        for name, runner in [("base", cpu_base_update), ("seq", cpu_seq_update)]:
            g = make_random(np.random.default_rng(5))
            state = PPRState.initial(0, g.capacity)
            sequential_local_push(state, g, config, seeds=[0])
            batch = runner(state, g, updates, config)
            truth = ground_truth_ppr(g, 0, 0.2)
            assert max_estimate_error(state.p, truth) <= 1e-4
            results[name] = batch
        # Batching restores k invariants once and pushes once; the
        # single-update driver must do at least as many push operations.
        assert (
            results["base"].sequential_push.total_operations
            >= results["seq"].sequential_push.total_operations
        )
        assert results["base"].restore.num_updates == 5
        assert results["seq"].restore.num_updates == 5

    def test_drivers_apply_updates_to_graph(self, rng):
        g = make_random(rng)
        config = PPRConfig(alpha=0.2, epsilon=1e-3)
        state = PPRState.initial(0, g.capacity)
        sequential_local_push(state, g, config, seeds=[0])
        cpu_seq_update(state, g, insertions([(0, 23), (23, 0)]), config)
        assert g.has_edge(0, 23) and g.has_edge(23, 0)
        assert check_invariant(state, g, 0.2)
