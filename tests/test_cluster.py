"""The replicated serving tier (:mod:`repro.cluster`).

Three contracts under test:

1. **protocol equivalence** — a :class:`~repro.cluster.ClusterGateway`
   answers the typed protocol bit-identically to a single-process
   :class:`~repro.api.Gateway` receiving the same traffic (hashed
   placement pins every source's history to one replica);
2. **replication** — writes ship as ordered WAL-framed deltas, replicas
   track applied versions, and consistency contracts hold across the
   process boundary;
3. **fault tolerance** — a replica killed mid-stream is respawned,
   recovers from the primary's durable store, and its
   ``certified_top_k`` answers are bit-identical to a single-process
   service recovered from the same store at the same version.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro import DynamicDiGraph, PPRService
from repro.api.gateway import Gateway
from repro.api.requests import (
    ANY,
    FRESH,
    BatchQuery,
    Consistency,
    Deadline,
    Health,
    IngestBatch,
    Prefetch,
    ScoreQuery,
    Stats,
    TopKQuery,
)
from repro.cluster import PPRCluster, ReplicaSpec
from repro.config import (
    CatchUpPolicy,
    ClusterConfig,
    PlacementPolicy,
    ServeConfig,
    StoreConfig,
)
from repro.errors import ClusterError, ConflictError
from repro.graph import insertions
from repro.store.recovery import recover_service
from repro.store.wal import pack_record, unpack_record

EDGES = [(1, 0), (2, 0), (2, 1), (0, 2), (3, 1), (4, 3), (1, 4), (3, 0)]


def fresh_service(**serve_kwargs) -> PPRService:
    return PPRService(DynamicDiGraph(EDGES), serve=ServeConfig(**serve_kwargs))


def entries_of(response):
    return [(e.vertex, e.estimate) for e in response.entries]


@pytest.fixture
def cluster():
    with PPRCluster(fresh_service(), ClusterConfig(replicas=2)) as c:
        yield c


class TestReplicaSpec:
    def test_exactly_one_bootstrap_mode(self):
        service = fresh_service()
        with pytest.raises(ClusterError):
            ReplicaSpec(
                replica_id=0,
                config=service.config,
                serve=service.serve,
                graph_arrays=None,
                hubs=(),
                graph_version=0,
                store_root=None,
            )

    def test_replica_serve_config_must_not_carry_a_store(self, tmp_path):
        service = fresh_service()
        with pytest.raises(ClusterError):
            ReplicaSpec(
                replica_id=0,
                config=service.config,
                serve=service.serve.with_(store=StoreConfig(root=str(tmp_path))),
                graph_arrays=service.graph.to_arrays(),
                hubs=(),
                graph_version=0,
            )


class TestWireCodec:
    def test_delta_frames_are_wal_records(self):
        updates = tuple(insertions([(5, 6), (6, 5)]))
        record = unpack_record(pack_record(9, updates))
        assert record.seq == 9
        assert record.updates == updates


class TestProtocolEquivalence:
    def test_reads_bit_identical_to_single_process(self, cluster):
        single = fresh_service()
        burst = [TopKQuery(source=s, k=3, consistency=FRESH)
                 for s in (0, 1, 2, 0, 3, 1)]
        ours = cluster.gateway.submit_many(burst)
        theirs = single.gateway.submit_many(burst)
        for left, right in zip(ours, theirs):
            assert left.ok and right.ok
            assert entries_of(left) == entries_of(right)
            assert left.cold == right.cold
            assert left.snapshot_version == right.snapshot_version
            assert left.staleness == right.staleness

    def test_interleaved_reads_and_writes_match_single_process(self, cluster):
        single = fresh_service()
        trace = [
            TopKQuery(source=0, k=3),
            IngestBatch(updates=tuple(insertions([(2, 3)]))),
            TopKQuery(source=0, k=3),
            TopKQuery(source=3, k=3),
            IngestBatch(updates=tuple(insertions([(4, 0)]))),
            TopKQuery(source=0, k=3, consistency=Consistency.bounded(1)),
            TopKQuery(source=3, k=3, consistency=ANY),
        ]
        ours = cluster.gateway.submit_many(trace)
        theirs = single.gateway.submit_many(trace)
        for left, right in zip(ours, theirs):
            assert left.ok and right.ok
            assert left.snapshot_version == right.snapshot_version
            if hasattr(left, "entries"):
                assert entries_of(left) == entries_of(right)
                assert left.staleness == right.staleness

    def test_batch_query_preserves_request_order_and_duplicates(self, cluster):
        single = fresh_service()
        request = BatchQuery(sources=(3, 0, 3, 1, 0), k=3)
        ours = cluster.gateway.submit(request)
        theirs = single.gateway.submit(request)
        assert [r.source for r in ours.results] == [3, 0, 3, 1, 0]
        for left, right in zip(ours.results, theirs.results):
            assert entries_of(left) == entries_of(right)
            assert left.cold == right.cold

    def test_score_and_prefetch_route_by_owner(self, cluster):
        score = cluster.gateway.submit(ScoreQuery(source=1, target=0))
        assert score.ok and score.estimate > 0
        prefetch = cluster.gateway.submit(Prefetch(sources=(0, 1, 2, 3)))
        assert prefetch.ok and prefetch.requested == 4

    def test_health_and_checkpoint_run_on_the_primary(self, cluster):
        health = cluster.gateway.submit(Health())
        assert health.ok and health.graph_version == 0
        # No store attached: a typed CONFIG failure, not a crash.
        from repro.api.requests import CheckpointNow

        response = cluster.gateway.submit(CheckpointNow())
        assert not response.ok and response.error.code == "CONFIG"

    def test_conflict_error_surfaces_from_primary(self, cluster):
        request = IngestBatch(
            updates=tuple(insertions([(5, 0)])), expect_version=7
        )
        with pytest.raises(ConflictError):
            cluster.gateway.execute(request)
        assert not cluster.gateway.submit(request).ok

    def test_client_works_unchanged_over_the_cluster(self, cluster):
        client = cluster.api
        assert client.top_k(0, k=3).vertices[0] == 0
        assert client.ingest([(2, 4)]).snapshot_version == 1
        assert client.health().graph_version == 1
        stats = client.stats().stats
        assert stats["cluster"]["replicas"] == 2


class TestReplication:
    def test_writes_ship_to_every_replica(self, cluster):
        for edge in [(2, 3), (3, 4), (4, 2)]:
            assert cluster.api.ingest([edge]).ok
        # FRESH reads ride the FIFO behind the deltas; afterwards both
        # replicas have acknowledged head.
        cluster.gateway.submit_many(
            [TopKQuery(source=s, k=3, consistency=FRESH) for s in (0, 1)]
        )
        assert cluster.gateway.replica_versions() == [3, 3]
        assert cluster.gateway.counters["deltas_shipped"] == 3

    def test_barrier_catch_up_policy(self):
        service = fresh_service()
        config = ClusterConfig(replicas=2, catch_up=CatchUpPolicy.BARRIER)
        with PPRCluster(service, config) as cluster:
            cluster.api.ingest([(2, 3)])
            answer = cluster.api.top_k(0, k=3)
            assert answer.snapshot_version == 1
            assert cluster.gateway.replica_versions()[0 % 2] == 1

    def test_round_robin_placement_spreads_reads(self):
        service = fresh_service()
        config = ClusterConfig(
            replicas=2, placement=PlacementPolicy.ROUND_ROBIN
        )
        with PPRCluster(service, config) as cluster:
            for _ in range(4):
                assert cluster.api.top_k(0, k=3).ok
            dispatched = [h.dispatched for h in cluster.gateway.replicas]
            assert all(d > 0 for d in dispatched)

    def test_empty_ingest_still_ships_so_versions_never_diverge(self, cluster):
        # An empty batch bumps the primary's version; replicas must
        # follow or every later delta looks like a replication gap.
        assert cluster.gateway.submit(IngestBatch(updates=())).ok
        assert cluster.api.ingest([(2, 3)]).ok
        answer = cluster.api.top_k(0, k=3, consistency=FRESH)
        assert answer.snapshot_version == 2
        assert cluster.gateway.replica_versions() == [2, 2]
        assert cluster.gateway.counters["respawns"] == 0

    def test_consistency_contracts_across_the_boundary(self, cluster):
        cluster.gateway.submit(BatchQuery(sources=(0, 1), k=3))
        cluster.api.ingest([(2, 3)])
        head = cluster.service.graph_version
        fresh = cluster.api.top_k(0, k=3, consistency=FRESH)
        assert fresh.snapshot_version == head
        lagged = cluster.api.top_k(1, k=3, consistency=ANY)
        assert lagged.snapshot_version <= head


class TestFaultTolerance:
    def test_killed_replica_respawns_and_recovers_from_store(self, tmp_path):
        root = str(tmp_path / "store")
        service = fresh_service(
            store=StoreConfig(root=root, checkpoint_interval=2)
        )
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            for edge in [(2, 3), (3, 0), (4, 1)]:
                assert cluster.api.ingest([edge]).ok
            assert cluster.api.top_k(0, k=3).ok  # replica 0 is warm

            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGKILL)
            # The corpse is detected at the next interaction — shipping
            # this delta or awaiting the read below — and the respawned
            # worker recovers from the store at head version.
            assert cluster.api.ingest([(0, 4)]).ok

            answer = cluster.api.top_k(0, k=3, consistency=FRESH)
            assert answer.ok
            assert cluster.gateway.counters["respawns"] == 1
            head = cluster.service.graph_version
            assert answer.snapshot_version == head

            # The recovered answer must be bit-identical to a
            # single-process service recovered from the same store.
            shadow = recover_service(root, attach=False)
            assert shadow.graph_version == head
            expected = shadow.query(0, k=3)
            assert answer.vertices == expected.vertices
            assert [e.estimate for e in answer.entries] == [
                e.estimate for e in expected.entries
            ]

    def test_killed_replica_respawns_from_snapshot_without_store(self):
        service = fresh_service()
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            cluster.api.ingest([(2, 3)])
            os.kill(cluster.gateway.replicas[1].process.pid, signal.SIGKILL)
            # Source 1 is owned by replica 1: the read detects the death,
            # respawns from an order-exact snapshot, and retries.
            answer = cluster.api.top_k(1, k=3)
            assert answer.ok and answer.snapshot_version == 1
            assert cluster.gateway.counters["respawns"] == 1

            single = fresh_service()
            single.ingest(insertions([(2, 3)]))
            expected = single.query(1, k=3)
            assert answer.vertices == expected.vertices
            assert [e.estimate for e in answer.entries] == [
                e.estimate for e in expected.entries
            ]

    def test_respawn_budget_exhaustion_raises_cluster_error(self):
        service = fresh_service()
        config = ClusterConfig(replicas=1, max_respawns=0)
        with PPRCluster(service, config) as cluster:
            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGKILL)
            response = cluster.gateway.submit(TopKQuery(source=0, k=3))
            assert not response.ok
            assert response.error.code == "CLUSTER"

    def test_respawn_budget_is_per_replica_slot(self):
        # One flaky worker must not consume its siblings' budgets.
        service = fresh_service()
        config = ClusterConfig(replicas=2, max_respawns=1)
        with PPRCluster(service, config) as cluster:
            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGKILL)
            assert cluster.api.top_k(0, k=3).ok  # slot 0 respawn #1
            os.kill(cluster.gateway.replicas[1].process.pid, signal.SIGKILL)
            assert cluster.api.top_k(1, k=3).ok  # slot 1 respawn #1
            assert cluster.gateway.counters["respawns"] == 2
            # Slot 0 dying again exceeds *its* budget.
            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGKILL)
            response = cluster.gateway.submit(TopKQuery(source=0, k=3))
            assert not response.ok and response.error.code == "CLUSTER"

    def test_closed_gateway_refuses_traffic(self):
        cluster = PPRCluster(fresh_service(), ClusterConfig(replicas=1))
        cluster.close()
        cluster.close()  # idempotent
        response = cluster.gateway.submit(TopKQuery(source=0, k=3))
        assert not response.ok and response.error.code == "CLUSTER"


class TestClusterStats:
    def test_stats_surface_reports_topology(self, cluster):
        cluster.api.ingest([(2, 3)])
        cluster.api.top_k(0, k=3)
        stats = cluster.gateway.submit(Stats())
        section = stats.stats["cluster"]
        assert section["replicas"] == 2
        assert section["placement"] == "hashed"
        assert section["deltas_shipped"] == 1
        assert len(section["applied_versions"]) == 2


class TestGatewayParity:
    """The cluster front door mirrors Gateway's scheduler bookkeeping."""

    def test_reads_coalesced_counter_matches_single_process(self):
        single_service = fresh_service()
        single = Gateway(single_service)
        with PPRCluster(fresh_service(), ClusterConfig(replicas=2)) as cluster:
            burst = [TopKQuery(source=s, k=3) for s in (0, 0, 1, 1, 2)]
            cluster.gateway.submit_many(burst)
            single.submit_many(burst)
            assert (
                cluster.gateway.counters["reads_coalesced"]
                == single.counters["reads_coalesced"]
                == 2
            )


class TestDeadlinesUnderFaults:
    """Fault injection: a wedged (SIGSTOP) replica must degrade, not hang.

    SIGKILL (above) exercises the *crash* path — the corpse fails the
    liveness check and the request retries on a respawn. SIGSTOP is the
    nastier failure: the process stays alive, its pipe stays open, and it
    simply never answers. Only the request's own deadline bounds the
    caller's wait; on expiry the gateway must return a typed DEADLINE
    failure, replace the wedged worker (its abandoned ticket could
    otherwise poison the pipe protocol), and keep serving.
    """

    def test_sigstopped_replica_degrades_to_deadline_not_hang(self):
        service = fresh_service()
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            assert cluster.api.top_k(0, k=3).ok  # replica 0 is live
            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGSTOP)

            start = time.monotonic()
            response = cluster.gateway.submit(
                TopKQuery(source=0, k=3, deadline=Deadline.after_ms(250.0))
            )
            elapsed = time.monotonic() - start

            assert not response.ok
            assert response.error.code == "DEADLINE"
            assert response.error.details["budget_ms"] == 250.0
            # Bounded by the deadline (plus respawn cost), nowhere near
            # the 300 s replica response timeout.
            assert elapsed < 30.0
            assert cluster.gateway.counters["deadline_exceeded"] == 1
            # The wedged worker was replaced, not left holding the pipe.
            assert cluster.gateway.counters["respawns"] == 1
            # And the slot serves again — same source, fresh worker.
            after = cluster.gateway.submit(TopKQuery(source=0, k=3))
            assert after.ok

    def test_unaffected_replica_keeps_serving_during_the_wedge(self):
        service = fresh_service()
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGSTOP)
            # Source 1 is owned by replica 1 (hashed placement): traffic
            # to the healthy slot must not block on the wedged one.
            answer = cluster.gateway.submit(
                TopKQuery(source=1, k=3, deadline=Deadline.after_ms(5000.0))
            )
            assert answer.ok
            assert cluster.gateway.counters["respawns"] == 0

    def test_already_expired_deadline_fails_without_touching_replicas(self):
        service = fresh_service()
        with PPRCluster(service, ClusterConfig(replicas=2)) as cluster:
            expired = Deadline.after_ms(1.0)
            time.sleep(0.01)
            response = cluster.gateway.submit(
                TopKQuery(source=0, k=3, deadline=expired)
            )
            assert not response.ok
            assert response.error.code == "DEADLINE"
            assert response.error.details["elapsed_ms"] >= 1.0
            assert cluster.gateway.counters["respawns"] == 0
            assert cluster.gateway.counters["deadline_exceeded"] == 1

    def test_deadline_failure_consumes_respawn_budget_like_a_crash(self):
        service = fresh_service()
        config = ClusterConfig(replicas=2, max_respawns=1)
        with PPRCluster(service, config) as cluster:
            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGSTOP)
            first = cluster.gateway.submit(
                TopKQuery(source=0, k=3, deadline=Deadline.after_ms(150.0))
            )
            assert first.error.code == "DEADLINE"  # respawn #1 for slot 0
            os.kill(cluster.gateway.replicas[0].process.pid, signal.SIGSTOP)
            second = cluster.gateway.submit(
                TopKQuery(source=0, k=3, deadline=Deadline.after_ms(150.0))
            )
            # The second wedge exceeds slot 0's budget: the abandonment
            # cannot replace the worker, so the failure escalates to the
            # cluster's own typed error instead of a deadline.
            assert not second.ok
            assert second.error.code == "CLUSTER"
