"""The partitioned serving tier (:mod:`repro.shard`).

Four contracts under test:

1. **protocol equivalence** — a :class:`~repro.shard.ShardedGateway`
   answers the typed protocol bit-identically to a single-process
   :class:`~repro.api.gateway.Gateway` receiving the same traffic, even
   though every source's rows and states live on exactly one shard and
   pushes fetch remote in-rows through the coordinator relay;
2. **writes** — every shard applies every batch in lock-step, optimistic
   concurrency is checked at the coordinator, and a delete that any
   shard vetoes rejects the batch atomically with the single-process
   engine's typed ``EDGE`` error;
3. **durability and recovery** — each shard persists to its own WAL and
   checkpoints; a SIGKILLed shard is respawned from *its own* store via
   the coordinator manifest, and a whole fleet cold-starts from
   ``store_root`` alone, both bit-identical to the oracle afterwards;
4. **fault injection** — the ``shard.exchange`` / ``shard.apply`` chaos
   sites degrade to typed ``CLUSTER`` errors or deterministic
   revive-and-retry, never a hang.

Bit-identity caveat (same as the cluster tier): a resident source
refreshed incrementally is not bit-identical to a from-scratch
computation at the same version, so oracle comparisons mirror the exact
access pattern on both arms.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro import DynamicDiGraph, PPRService, chaos
from repro.api.requests import (
    ANY,
    FRESH,
    CheckpointNow,
    Consistency,
    IngestBatch,
    TopKQuery,
)
from repro.chaos import Fault, FaultKind, FaultPlan
from repro.config import (
    Backend,
    PPRConfig,
    RefreshPolicy,
    ServeConfig,
    ShardConfig,
    StoreConfig,
)
from repro.errors import ConfigError, ConflictError, EdgeError
from repro.graph import deletions, insertions
from repro.shard import PPRShards, ShardedGateway
from repro.shard.manifest import read_manifest

EDGES = [(1, 0), (2, 0), (2, 1), (0, 2), (3, 1), (4, 3), (1, 4), (3, 0)]

#: EAGER refresh: ingest immediately re-pushes resident sources, which
#: is what drives cross-shard fetches through the coordinator relay.
SERVE = ServeConfig(refresh=RefreshPolicy.EAGER)


def fresh_service() -> PPRService:
    return PPRService(DynamicDiGraph(EDGES), serve=SERVE)


def entries_of(response):
    return [(e.vertex, e.estimate) for e in response.entries]


def identical(left, right) -> bool:
    return (
        left.ok == right.ok
        and entries_of(left) == entries_of(right)
        and left.cold == right.cold
        and left.snapshot_version == right.snapshot_version
        and left.staleness == right.staleness
    )


@pytest.fixture
def fleet():
    with PPRShards(DynamicDiGraph(EDGES), ShardConfig(shards=2), serve=SERVE) as f:
        yield f


class TestConfigSurface:
    def test_hub_tier_is_rejected(self):
        with pytest.raises(ConfigError):
            ShardedGateway(
                DynamicDiGraph(EDGES),
                ShardConfig(shards=2),
                serve=ServeConfig(num_hubs=2),
            )

    def test_non_numpy_backend_is_rejected(self):
        with pytest.raises(ConfigError):
            ShardedGateway(
                DynamicDiGraph(EDGES),
                ShardConfig(shards=2),
                ppr=PPRConfig(backend=Backend.PURE),
            )


class TestProtocolEquivalence:
    def test_reads_bit_identical_to_single_process(self, fleet):
        single = fresh_service()
        burst = [
            TopKQuery(source=s, k=3, consistency=FRESH)
            for s in (0, 1, 2, 0, 3, 1, 4)
        ]
        ours = fleet.gateway.submit_many(burst)
        theirs = single.gateway.submit_many(burst)
        for left, right in zip(ours, theirs):
            assert left.ok and right.ok
            assert identical(left, right)

    def test_interleaved_writes_and_mixed_consistency(self, fleet):
        single = fresh_service()
        bounded = Consistency.bounded(2)
        for step, edge in enumerate([(5, 0), (6, 1), (0, 3), (7, 5)]):
            write = IngestBatch(updates=tuple(insertions([edge])))
            mine = fleet.gateway.submit(write)
            its = single.gateway.submit(write)
            assert mine.ok and its.ok
            assert mine.snapshot_version == its.snapshot_version == step + 1
            reads = [
                TopKQuery(source=0, k=3, consistency=FRESH),
                TopKQuery(source=1, k=3, consistency=bounded),
                TopKQuery(source=edge[0], k=3, consistency=ANY),
            ]
            for left, right in zip(
                fleet.gateway.submit_many(reads),
                single.gateway.submit_many(reads),
            ):
                assert identical(left, right)

    def test_cross_shard_fetches_actually_happened(self, fleet):
        """The equivalence above must not be vacuous: pushes on this
        graph cross the partition and ride the coordinator relay."""
        for s in range(5):
            assert fleet.api.top_k(s, k=3).ok
        section = fleet.api.stats().stats["shard"]
        assert sum(section["exchange_rounds"]) > 0
        assert sum(section["frontier_bytes"]) > 0


class TestWrites:
    def test_conflict_on_stale_expect_version(self, fleet):
        assert fleet.api.ingest([(5, 0)]).ok
        with pytest.raises(ConflictError):
            fleet.gateway.execute(
                IngestBatch(
                    updates=tuple(insertions([(6, 1)])),
                    expect_version=0,
                )
            )

    def test_delete_veto_is_atomic_and_matches_the_oracle(self, fleet):
        single = fresh_service()
        batch = IngestBatch(
            updates=tuple(insertions([(9, 0)]) + deletions([(8, 7)]))
        )
        with pytest.raises(EdgeError) as oracle:
            single.gateway.execute(batch)
        with pytest.raises(EdgeError) as ours:
            fleet.gateway.execute(batch)
        assert str(ours.value) == str(oracle.value)
        # Atomic: the vetoed batch mutated no shard — the version did
        # not advance and the prefix insert is absent everywhere.
        assert fleet.api.stats().stats["shard"]["head"] == 0
        assert fleet.api.top_k(0, k=5).snapshot_version == 0


class TestOperationalSurface:
    def test_ready_reports_per_shard_payloads(self, fleet):
        assert fleet.api.ingest([(5, 0)]).ok
        ready = fleet.api.ready()
        assert ready.ready
        assert len(ready.replicas) == 2
        for payload in ready.replicas:
            assert payload["role"] == "shard"
            assert payload["alive"]
            assert payload["applied_version"] == 1
            assert payload["lag"] == 0
            assert payload["exchange_backlog"] == 0

    def test_stats_shard_section(self, fleet):
        assert fleet.api.top_k(0, k=3).ok
        section = fleet.api.stats().stats["shard"]
        assert section["shards"] == 2
        assert len(section["per_shard"]) == 2
        assert sum(section["edges"]) == len(EDGES)
        owned = [p["owned_vertices"] for p in section["per_shard"]]
        assert sum(owned) == 5  # vertices 0..4, each owned exactly once


class TestDurabilityAndRecovery:
    def make_fleet(self, root) -> PPRShards:
        return PPRShards(
            DynamicDiGraph(EDGES),
            ShardConfig(shards=2),
            serve=SERVE,
            store_root=str(root),
            store_config=StoreConfig(root=str(root), checkpoint_interval=2),
        )

    def test_sigkilled_shard_recovers_from_its_own_store(self, tmp_path):
        with self.make_fleet(tmp_path) as fleet:
            for edge in [(5, 0), (6, 1), (0, 3), (7, 5)]:
                assert fleet.api.ingest([edge]).ok
            os.kill(fleet.gateway.shards[0].process.pid, signal.SIGKILL)
            # The next write round trips over the corpse, revives the
            # shard from its own checkpoint + WAL tail, and completes.
            assert fleet.api.ingest([(8, 2)]).ok
            assert fleet.gateway.counters["respawns"] >= 1

            single = fresh_service()
            for edge in [(5, 0), (6, 1), (0, 3), (7, 5), (8, 2)]:
                assert single.gateway.submit(
                    IngestBatch(updates=tuple(insertions([edge])))
                ).ok
            for source in (0, 1, 2, 5):
                assert identical(
                    fleet.api.top_k(source, k=4),
                    single.api.top_k(source, k=4),
                )

    def test_cold_start_recovers_the_whole_fleet(self, tmp_path):
        with self.make_fleet(tmp_path) as fleet:
            for edge in [(5, 0), (6, 1), (0, 3)]:
                assert fleet.api.ingest([edge]).ok
            assert fleet.gateway.submit(CheckpointNow()).ok
        manifest = read_manifest(str(tmp_path))
        assert manifest.shards == 2
        assert manifest.version == 3

        recovered = ShardedGateway.recover(str(tmp_path))
        try:
            single = fresh_service()
            for edge in [(5, 0), (6, 1), (0, 3)]:
                assert single.gateway.submit(
                    IngestBatch(updates=tuple(insertions([edge])))
                ).ok
            burst = [TopKQuery(source=s, k=4, consistency=FRESH)
                     for s in (0, 1, 2, 3, 5)]
            for left, right in zip(
                recovered.submit_many(burst),
                single.gateway.submit_many(burst),
            ):
                assert identical(left, right)
        finally:
            recovered.close()


class TestChaosSites:
    def test_dropped_exchange_is_a_typed_cluster_error_not_a_hang(self):
        chaos.install(
            FaultPlan(faults=(Fault("shard.exchange", FaultKind.DROP, at=1),))
        )
        with PPRShards(
            DynamicDiGraph(EDGES), ShardConfig(shards=2), serve=SERVE
        ) as fleet:
            responses = [fleet.gateway.submit(TopKQuery(source=s, k=3))
                         for s in range(5)]
            failed = [r for r in responses if not r.ok]
            assert len(failed) == 1, "exactly the dropped fetch fails"
            assert failed[0].error.code == "CLUSTER"
            assert chaos.injected()[0]["site"] == "shard.exchange"
            # The fleet is not wedged: every source answers correctly
            # afterwards (cold flags differ across arms here because the
            # failed attempt perturbs the access pattern).
            single = fresh_service()
            for s in range(5):
                retried = fleet.api.top_k(s, k=3)
                oracle = single.api.top_k(s, k=3)
                assert retried.ok
                assert entries_of(retried) == entries_of(oracle)
                assert retried.snapshot_version == oracle.snapshot_version

    def test_delayed_exchange_still_answers_identically(self):
        chaos.install(
            FaultPlan(faults=(Fault("shard.exchange", FaultKind.DELAY, at=1),))
        )
        with PPRShards(
            DynamicDiGraph(EDGES), ShardConfig(shards=2), serve=SERVE
        ) as fleet:
            single = fresh_service()
            for s in range(5):
                assert identical(
                    fleet.api.top_k(s, k=3), single.api.top_k(s, k=3)
                )
            assert chaos.injected()[0]["kind"] == "delay"

    def test_apply_fault_is_typed_and_the_retried_write_converges(self):
        chaos.install(
            FaultPlan(
                faults=(Fault("shard.apply", FaultKind.ERROR, at=1, replica=1),)
            )
        )
        with PPRShards(
            DynamicDiGraph(EDGES), ShardConfig(shards=2), serve=SERVE
        ) as fleet:
            # Shard 1 dies applying the first batch; its replacement is
            # a fresh chaos install whose visit counter restarts at zero,
            # so the re-shipped frame hits the same scripted fault — the
            # deterministic outcome is a typed CLUSTER error, no hang.
            write = IngestBatch(updates=tuple(insertions([(5, 0)])))
            failed = fleet.gateway.submit(write)
            assert not failed.ok and failed.error.code == "CLUSTER"
            assert fleet.gateway.counters["respawns"] >= 1
            # Clear the plan and retry the *same* batch: the surviving
            # shard absorbs the duplicate frame idempotently, the
            # replacement applies it, and the fleet converges.
            chaos.reset()
            retried = fleet.gateway.submit(write)
            assert retried.ok and retried.snapshot_version == 1
            single = fresh_service()
            assert single.api.ingest([(5, 0)]).ok
            for s in (0, 1, 5):
                left = fleet.api.top_k(s, k=3)
                right = single.api.top_k(s, k=3)
                assert left.ok
                assert entries_of(left) == entries_of(right)
                assert left.snapshot_version == right.snapshot_version

    def test_injected_faults_appear_in_shard_stats(self):
        chaos.install(
            FaultPlan(faults=(Fault("shard.exchange", FaultKind.DELAY, at=1),))
        )
        with PPRShards(
            DynamicDiGraph(EDGES), ShardConfig(shards=2), serve=SERVE
        ) as fleet:
            for s in range(5):
                fleet.api.top_k(s, k=3)
            section = fleet.api.stats().stats["shard"]
            assert section["chaos"][0]["site"] == "shard.exchange"
