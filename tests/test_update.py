"""Unit tests for edge updates."""

from __future__ import annotations

from repro import EdgeOp, EdgeUpdate
from repro.graph.update import count_ops, deletions, insertions, undirected


class TestEdgeUpdate:
    def test_defaults_to_insert(self):
        upd = EdgeUpdate(1, 2)
        assert upd.is_insert and not upd.is_delete
        assert upd.op is EdgeOp.INSERT

    def test_op_values_match_theory(self):
        # Lemma 3 uses op in {+1, -1}.
        assert int(EdgeOp.INSERT) == 1
        assert int(EdgeOp.DELETE) == -1

    def test_reversed(self):
        upd = EdgeUpdate(1, 2, EdgeOp.DELETE)
        rev = upd.reversed()
        assert (rev.u, rev.v, rev.op) == (2, 1, EdgeOp.DELETE)

    def test_inverse(self):
        upd = EdgeUpdate(1, 2, EdgeOp.INSERT)
        assert upd.inverse().op is EdgeOp.DELETE
        assert upd.inverse().inverse() == upd

    def test_str(self):
        assert str(EdgeUpdate(1, 2)) == "+(1->2)"
        assert str(EdgeUpdate(1, 2, EdgeOp.DELETE)) == "-(1->2)"

    def test_is_a_tuple(self):
        u, v, op = EdgeUpdate(3, 4, EdgeOp.DELETE)
        assert (u, v, op) == (3, 4, EdgeOp.DELETE)


class TestHelpers:
    def test_insertions_deletions(self):
        ins = insertions([(0, 1), (1, 2)])
        assert all(u.is_insert for u in ins)
        dels = deletions([(0, 1)])
        assert all(u.is_delete for u in dels)

    def test_undirected_expansion(self):
        expanded = list(undirected(insertions([(0, 1)])))
        assert expanded == [EdgeUpdate(0, 1), EdgeUpdate(1, 0)]

    def test_count_ops(self):
        batch = insertions([(0, 1), (1, 2)]) + deletions([(2, 3)])
        assert count_ops(batch) == (2, 1)
