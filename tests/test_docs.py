"""Docs lint as a tier-1 test: links resolve, code blocks run.

Wraps ``scripts/check_docs.py`` so documentation rot fails the ordinary
test suite, not just CI's dedicated docs job. Link and CLI-command checks
run per file (cheap); the python-block execution check runs once over
every page (each block is a subprocess).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def load_checker():
    path = REPO / "scripts" / "check_docs.py"
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def checker():
    return load_checker()


def test_docs_suite_exists():
    assert (REPO / "README.md").exists()
    assert (REPO / "docs" / "architecture.md").exists()
    assert (REPO / "docs" / "serving.md").exists()


@pytest.mark.parametrize("name", ["README.md", "docs/architecture.md", "docs/serving.md"])
def test_internal_links_resolve(checker, name):
    path = REPO / name
    assert checker.check_links(path, path.read_text(encoding="utf-8")) == []


@pytest.mark.parametrize("name", ["README.md", "docs/architecture.md", "docs/serving.md"])
def test_cli_commands_in_bash_blocks_exist(checker, name):
    path = REPO / name
    assert checker.check_bash_blocks(path, path.read_text(encoding="utf-8")) == []


def test_python_code_blocks_execute(checker):
    errors = []
    for path in checker.docs_files():
        errors.extend(checker.check_python_blocks(path, path.read_text(encoding="utf-8")))
    assert errors == []
