"""Serving-layer behaviour of delta snapshots and lazy hub refresh.

The service-level contracts layered on :mod:`repro.graph.delta`:

* ``SnapshotStrategy.DELTA`` advances the shared view incrementally
  (counted by the new metrics) and serves answers bit-identical to
  ``REBUILD``;
* registering new vertices pads the overlay instead of invalidating it;
* ``ServeConfig.hub_refresh = LAZY`` defers hub re-convergence to the
  next hub query, stays ε-correct, and survives checkpoint/recovery with
  its pending seeds intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    Backend,
    HubRefresh,
    PPRConfig,
    ServeConfig,
    SnapshotStrategy,
    StoreConfig,
)
from repro.errors import ConfigError
from repro.graph import DeltaCSRGraph, DynamicDiGraph, SlidingWindow
from repro.graph.generators import erdos_renyi_graph, rmat_graph
from repro.graph.update import EdgeOp, EdgeUpdate
from repro.core.tracker import DynamicPPRTracker
from repro.serve import PPRService
from repro.store.recovery import recover
from repro.store.store import StateStore

NUMPY_CONFIG = PPRConfig(epsilon=1e-5, backend=Backend.NUMPY, workers=4)


def _graph(seed: int = 3, n: int = 40, m: int = 220) -> DynamicDiGraph:
    rng = np.random.default_rng(seed)
    return DynamicDiGraph(map(tuple, erdos_renyi_graph(n, m, rng=rng).tolist()))


def _random_batches(rng, count: int, graph: DynamicDiGraph, size: int = 6):
    batches = []
    for _ in range(count):
        batch = []
        for _ in range(size):
            arr = graph.edge_array()
            if len(arr) and rng.random() < 0.35:
                u, v = arr[rng.integers(0, len(arr))]
                batch.append(EdgeUpdate(int(u), int(v), EdgeOp.DELETE))
                graph.remove_edge(int(u), int(v))
            else:
                u, v = rng.integers(0, 44, size=2)
                batch.append(EdgeUpdate(int(u), int(v), EdgeOp.INSERT))
                graph.add_edge(int(u), int(v))
        batches.append(batch)
    return batches


def _scripted_batches(seed: int = 7, count: int = 6):
    """A deterministic update script valid against ``_graph(seed=3)``."""
    shadow = _graph()
    return _random_batches(np.random.default_rng(seed), count, shadow)


# ---------------------------------------------------------------------- #
# delta snapshot strategy in the service
# ---------------------------------------------------------------------- #


class TestDeltaStrategy:
    def test_ingest_advances_without_rebuilds(self):
        service = PPRService(
            _graph(), NUMPY_CONFIG, ServeConfig(snapshot=SnapshotStrategy.DELTA)
        )
        service.query(0)  # cold start builds the base (1 rebuild)
        for batch in _scripted_batches():
            service.ingest(batch)
            service.query(0)
        m = service.metrics()
        assert m.snapshot_rebuilds == 1
        assert m.snapshot_delta_applies + m.snapshot_consolidations == 6
        assert "delta snapshots" in m.describe()

    def test_rebuild_strategy_rebuilds_every_version(self):
        service = PPRService(
            _graph(), NUMPY_CONFIG, ServeConfig(snapshot=SnapshotStrategy.REBUILD)
        )
        service.query(0)
        for batch in _scripted_batches(count=3):
            service.ingest(batch)
            service.query(0)
        m = service.metrics()
        assert m.snapshot_rebuilds == 4
        assert m.snapshot_delta_applies == 0

    def test_overlay_threshold_controls_consolidation(self):
        def consolidations(threshold: float) -> int:
            service = PPRService(
                _graph(),
                NUMPY_CONFIG,
                ServeConfig(
                    snapshot=SnapshotStrategy.DELTA,
                    snapshot_overlay_threshold=threshold,
                ),
            )
            service.query(0)
            for batch in _scripted_batches():
                service.ingest(batch)
            return service.metrics().snapshot_consolidations

        assert consolidations(1e-9) == 6  # every batch outgrows the overlay
        assert consolidations(1e9) == 0  # nothing ever does

    def test_answers_bit_identical_to_rebuild(self):
        def run(strategy):
            service = PPRService(
                _graph(), NUMPY_CONFIG, ServeConfig(snapshot=strategy)
            )
            sources = [0, 5, 11]
            service.query_many(sources)
            out = []
            for batch in _scripted_batches():
                service.ingest(batch)
                for s in sources:
                    out.append(
                        [(e.vertex, e.estimate) for e in service.query(s).entries]
                    )
            return out

        assert run(SnapshotStrategy.REBUILD) == run(SnapshotStrategy.DELTA)

    def test_new_vertex_registration_pads_the_overlay(self):
        service = PPRService(
            _graph(), NUMPY_CONFIG, ServeConfig(snapshot=SnapshotStrategy.DELTA)
        )
        service.query(0)
        service.ingest(_scripted_batches(count=1)[0])
        rebuilds = service.metrics().snapshot_rebuilds
        service.query(90)  # unknown id: grows the graph's id space
        assert service.graph.has_vertex(90)
        assert service.metrics().snapshot_rebuilds == rebuilds  # padded, not rebuilt
        assert service.query(90).entries[0].vertex == 90

    def test_external_window_snapshot_feeds_the_delta_chain(self):
        edges = rmat_graph(64, 500, rng=5)
        window = SlidingWindow(edges, batch_size=6)
        graph = DynamicDiGraph(map(tuple, window.initial_edges.tolist()))
        service = PPRService(
            graph, NUMPY_CONFIG, ServeConfig(snapshot=SnapshotStrategy.DELTA)
        )
        source = int(window.initial_edges[0, 0])
        service.query(source)
        for _ in range(3):
            slide = window.slide()
            service.ingest(
                list(slide.updates),
                snapshot=window.delta_snapshot(service.graph.capacity),
            )
            assert service.snapshot_version == service.graph_version
            service.query(source)
        # The externally-maintained view spares the service every rebuild
        # after the cold start.
        assert service.metrics().snapshot_rebuilds == 1


# ---------------------------------------------------------------------- #
# lazy hub refresh
# ---------------------------------------------------------------------- #


class TestLazyHubRefresh:
    SERVE = ServeConfig(num_hubs=3, hub_refresh=HubRefresh.LAZY)

    def test_ingest_defers_hub_pushes(self):
        service = PPRService(_graph(), NUMPY_CONFIG, self.SERVE)
        traces = service.ingest(_scripted_batches(count=1)[0])
        assert traces == {}  # no hub pushes ran
        assert service.hub_pending_seeds  # but the seeds are queued

    def test_hub_query_flushes_and_matches_eager_within_epsilon(self):
        eager = PPRService(
            _graph(), NUMPY_CONFIG, self.SERVE.with_(hub_refresh=HubRefresh.EAGER)
        )
        lazy = PPRService(_graph(), NUMPY_CONFIG, self.SERVE)
        assert eager.hubs == lazy.hubs
        for batch in _scripted_batches():
            eager.ingest(batch)
            lazy.ingest(batch)
        for hub in eager.hubs:
            a = eager.rank_for_hub(hub, 5)
            b = lazy.rank_for_hub(hub, 5)
            for ea, eb in zip(a, b):
                assert ea.vertex == eb.vertex or abs(
                    ea.estimate - eb.estimate
                ) <= 2 * NUMPY_CONFIG.epsilon
        assert not lazy.hub_pending_seeds  # flushed by the queries

    def test_hub_scores_flush_too(self):
        service = PPRService(_graph(), NUMPY_CONFIG, self.SERVE)
        service.ingest(_scripted_batches(count=1)[0])
        assert service.hub_pending_seeds
        service.hub_scores(0)
        assert not service.hub_pending_seeds

    def test_resident_answers_independent_of_hub_refresh(self):
        def run(hub_refresh):
            service = PPRService(
                _graph(), NUMPY_CONFIG, self.SERVE.with_(hub_refresh=hub_refresh)
            )
            service.query_many([0, 5])
            out = []
            for batch in _scripted_batches():
                service.ingest(batch)
                for s in (0, 5):
                    out.append(
                        [(e.vertex, e.estimate) for e in service.query(s).entries]
                    )
            return out

        assert run(HubRefresh.EAGER) == run(HubRefresh.LAZY)

    def test_pending_seeds_survive_checkpoint_recovery(self, tmp_path):
        reference = PPRService(_graph(), NUMPY_CONFIG, self.SERVE)
        persisted = PPRService(_graph(), NUMPY_CONFIG, self.SERVE)
        store = StateStore(
            tmp_path, StoreConfig(root=str(tmp_path), checkpoint_interval=2)
        )
        persisted.attach_store(store)
        for batch in _scripted_batches(count=5):
            reference.ingest(batch)
            persisted.ingest(batch)
        assert persisted.hub_pending_seeds  # crash mid-deferral
        store.close()
        recovered = recover(tmp_path, attach=False).service
        assert recovered.graph_version == reference.graph_version
        assert recovered.hub_pending_seeds == reference.hub_pending_seeds
        # The deferred flush answers bit-identically to the uninterrupted run.
        for hub in reference.hubs:
            assert recovered.rank_for_hub(hub, 5) == reference.rank_for_hub(hub, 5)


# ---------------------------------------------------------------------- #
# tracker delta strategy
# ---------------------------------------------------------------------- #


def test_tracker_delta_strategy_matches_rebuild_bitwise():
    def run(strategy):
        tracker = DynamicPPRTracker(
            _graph(), 0, NUMPY_CONFIG, snapshot_strategy=strategy
        )
        for batch in _scripted_batches():
            tracker.apply_batch(batch)
        return tracker.state

    a = run(SnapshotStrategy.REBUILD)
    b = run(SnapshotStrategy.DELTA)
    assert np.array_equal(a.p, b.p)
    assert np.array_equal(a.r, b.r)


def test_tracker_delta_keeps_overlay_view():
    tracker = DynamicPPRTracker(
        _graph(),
        0,
        NUMPY_CONFIG,
        snapshot_strategy=SnapshotStrategy.DELTA,
        overlay_threshold=1e9,
    )
    for batch in _scripted_batches(count=3):
        tracker.apply_batch(batch)
    assert isinstance(tracker._csr, DeltaCSRGraph)
    assert tracker._csr.overlay_rows > 0
    assert not tracker._csr_dirty


# ---------------------------------------------------------------------- #
# config plumbing
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "kwargs",
    [
        {"snapshot": "delta"},
        {"snapshot_overlay_threshold": 0.0},
        {"snapshot_overlay_threshold": -1.0},
        {"hub_refresh": "lazy"},
    ],
)
def test_serve_config_rejects_bad_delta_knobs(kwargs):
    with pytest.raises(ConfigError):
        ServeConfig(**kwargs)


def test_serve_config_delta_defaults():
    cfg = ServeConfig()
    assert cfg.snapshot is SnapshotStrategy.DELTA
    assert cfg.hub_refresh is HubRefresh.EAGER
    assert cfg.snapshot_overlay_threshold == 0.25
