"""The open-loop load package (:mod:`repro.load`).

Three layers under test:

1. **workload model** — :func:`~repro.load.generate_arrivals` is a pure
   function of its spec (deterministic traces), respects the read/write
   and consistency mixes, and realizes burst phases and hot-key storms;
2. **virtual-time harness** — :func:`~repro.load.run_open_loop`
   conserves every request, applies the admission policy, and with
   injected service times reproduces the defining open-loop shapes:
   bounded queues plateau under overload, unbounded queues collapse;
3. **calibration** — :func:`~repro.load.measure_saturation` recovers an
   injected service rate and :func:`~repro.load.knee_sweep` brackets it.
"""

from __future__ import annotations

import pytest

from repro.api.requests import IngestBatch, TopKQuery
from repro.config import ConsistencyLevel
from repro.errors import ConfigError
from repro.load import (
    LoadSpec,
    PhaseSpec,
    generate_arrivals,
    knee_sweep,
    measure_saturation,
    run_open_loop,
)


def spec_with(**changes) -> LoadSpec:
    base = LoadSpec(
        arrival_rate=300.0,
        duration_s=4.0,
        num_sources=32,
        timeout_ms=100.0,
        seed=5,
    )
    return base.with_(**changes)


class TestWorkloadModel:
    def test_same_spec_same_trace(self):
        spec = spec_with(diurnal_amplitude=0.3)
        first = generate_arrivals(spec)
        second = generate_arrivals(spec)
        assert first == second
        assert len(first) > 0

    def test_different_seed_different_trace(self):
        spec = spec_with()
        assert generate_arrivals(spec) != generate_arrivals(spec.with_(seed=6))

    def test_arrivals_are_ordered_and_inside_the_window(self):
        arrivals = generate_arrivals(spec_with())
        times = [a.time_s for a in arrivals]
        assert times == sorted(times)
        assert all(0 < t < 4.0 for t in times)

    def test_read_write_mix_roughly_honored(self):
        arrivals = generate_arrivals(spec_with(read_fraction=0.8))
        writes = sum(1 for a in arrivals if a.is_write)
        assert 0.1 < writes / len(arrivals) < 0.3
        assert all(
            isinstance(a.request, (TopKQuery, IngestBatch)) for a in arrivals
        )

    def test_consistency_mix_covers_all_three_levels(self):
        arrivals = generate_arrivals(spec_with(consistency_mix=(1.0, 1.0, 1.0)))
        levels = {
            a.request.consistency.level
            for a in arrivals
            if isinstance(a.request, TopKQuery)
        }
        assert levels == {
            ConsistencyLevel.FRESH,
            ConsistencyLevel.BOUNDED,
            ConsistencyLevel.ANY,
        }

    def test_burst_phase_raises_arrival_density(self):
        quiet = spec_with(arrival_rate=200.0, seed=9)
        burst = quiet.with_(
            phases=(PhaseSpec(1.0, 2.0, rate_multiplier=4.0),)
        )
        inside = [a for a in generate_arrivals(burst) if 1.0 <= a.time_s < 2.0]
        outside_rate = 200.0
        # ~4x the base rate over a 1 s span, give or take Poisson noise.
        assert len(inside) > 2.0 * outside_rate

    def test_hot_key_storm_pins_reads_to_the_hot_set(self):
        spec = spec_with(
            phases=(
                PhaseSpec(1.0, 3.0, hot_keys=(3, 4), hot_fraction=0.9),
            )
        )
        storm_reads = [
            a.request.source
            for a in generate_arrivals(spec)
            if 1.0 <= a.time_s < 3.0 and isinstance(a.request, TopKQuery)
        ]
        hot = sum(1 for s in storm_reads if s in (3, 4))
        assert hot / len(storm_reads) > 0.6

    def test_diurnal_modulation_shifts_density_toward_the_crest(self):
        spec = spec_with(arrival_rate=400.0, diurnal_amplitude=0.8, seed=3)
        arrivals = generate_arrivals(spec)
        # sin() crests in the first half of the window and troughs in the
        # second, so the first half must carry visibly more traffic.
        first = sum(1 for a in arrivals if a.time_s < 2.0)
        second = len(arrivals) - first
        assert first > 1.3 * second

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            spec_with(arrival_rate=0.0)
        with pytest.raises(ConfigError):
            spec_with(read_fraction=1.5)
        with pytest.raises(ConfigError):
            spec_with(consistency_mix=(0.0, 0.0, 0.0))
        with pytest.raises(ConfigError):
            spec_with(diurnal_amplitude=1.0)
        with pytest.raises(ConfigError):
            PhaseSpec(2.0, 1.0)
        with pytest.raises(ConfigError):
            PhaseSpec(0.0, 1.0, hot_fraction=0.5)  # hot set missing


class TestOpenLoopHarness:
    def test_conservation_and_accounting(self):
        spec = spec_with()
        report = run_open_loop(
            None, spec, slo_ms=100.0, queue_capacity=4,
            service_time=lambda request: 0.004,
        )
        assert report.offered == len(generate_arrivals(spec))
        assert report.offered == report.shed_total + report.accepted
        assert report.accepted == report.served + report.expired_total
        assert report.completed == report.good + report.late
        assert report.served == report.completed + report.failed
        payload = report.to_dict()
        assert payload["offered"] == report.offered
        assert "p999_ms" in payload and "goodput_rps" in payload
        assert "Open-loop load run" in report.table()

    def test_underload_completes_everything_within_slo(self):
        # 50/s against a 1 ms server: no queueing to speak of.
        report = run_open_loop(
            None, spec_with(arrival_rate=50.0), slo_ms=100.0,
            queue_capacity=16, service_time=lambda request: 0.001,
        )
        assert report.shed_total == 0
        assert report.expired_total == 0
        assert report.good == report.offered
        assert report.p99_ms < 100.0

    def test_bounded_queue_plateaus_where_unbounded_collapses(self):
        """The whole point of admission control, in one deterministic test."""
        service = lambda request: 0.005  # 200/s capacity  # noqa: E731
        overload = spec_with(arrival_rate=800.0)  # 4x saturation
        bounded = run_open_loop(
            None, overload, slo_ms=100.0, queue_capacity=8,
            service_time=service,
        )
        collapsed = run_open_loop(
            None, overload.with_(timeout_ms=None), slo_ms=100.0,
            queue_capacity=None, service_time=service,
        )
        # Bounded: waits are capped at ~8 x 5 ms, so what is admitted is
        # served in time — goodput stays near the 200/s capacity.
        assert bounded.goodput_rps > 150.0
        assert bounded.shed_total > 0
        # Unbounded: everything is accepted, the backlog grows without
        # bound, and almost nothing finishes inside the SLO.
        assert collapsed.shed_total == 0
        assert collapsed.goodput_rps < 0.3 * bounded.goodput_rps
        assert collapsed.p99_ms > 10 * bounded.p99_ms

    def test_any_consistency_sheds_first_under_overload(self):
        report = run_open_loop(
            None, spec_with(arrival_rate=800.0), slo_ms=100.0,
            queue_capacity=8, service_time=lambda request: 0.005,
        )
        assert report.shed_rate("any") > 0
        assert (
            report.shed_rate("any")
            >= report.shed_rate("bounded")
            >= report.shed_rate("critical")
        )

    def test_queued_deadlines_expire_instead_of_serving_dead_work(self):
        # 30 ms budgets against a 20 ms server at 4x overload: deep queue
        # entries die before the server reaches them.
        report = run_open_loop(
            None, spec_with(arrival_rate=200.0, timeout_ms=30.0),
            slo_ms=30.0, queue_capacity=None,
            service_time=lambda request: 0.020,
        )
        assert report.expired_total > 0
        assert report.accepted == report.served + report.expired_total

    def test_downstream_error_codes_are_tallied(self):
        from repro.api.responses import ErrorInfo, TopKResult
        from repro.errors import DeadlineError, OverloadError

        errors = iter([OverloadError(), DeadlineError(), None])

        def flaky(request):
            exc = next(errors, None)
            if exc is None:
                return TopKResult(source=0, entries=(), cold=False)
            return TopKResult.failure(ErrorInfo.from_exception(exc))

        spec = spec_with(arrival_rate=2.0, duration_s=2.0)
        arrivals = generate_arrivals(spec)[:3]
        report = run_open_loop(
            flaky, spec, slo_ms=100.0, queue_capacity=None, arrivals=arrivals
        )
        assert report.failed == 2
        assert report.shed_downstream == 1
        assert report.deadline_failures == 1


class TestCalibration:
    def test_measure_saturation_recovers_injected_rate(self):
        rate = measure_saturation(
            None, spec_with(), service_time=lambda request: 0.002
        )
        assert rate == pytest.approx(500.0, rel=1e-6)

    def test_knee_sweep_scales_rates_and_keeps_reports_ordered(self):
        reports = knee_sweep(
            None, spec_with(), slo_ms=100.0, queue_capacity=8,
            fractions=(0.5, 1.0, 2.0), saturation=200.0,
            service_time=lambda request: 0.005,
        )
        assert [r.arrival_rate for r in reports] == [100.0, 200.0, 400.0]
        # Past saturation the bounded queue sheds instead of collapsing.
        assert reports[-1].shed_total > 0
        assert reports[-1].goodput_rps > 0.7 * max(
            r.goodput_rps for r in reports
        )
