"""Tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigError
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    preferential_attachment_graph,
    rmat_graph,
    star_graph,
)


class TestRmat:
    def test_shape_and_bounds(self, rng):
        edges = rmat_graph(100, 500, rng=rng)
        assert edges.shape == (500, 2)
        assert edges.min() >= 0 and edges.max() < 100

    def test_deterministic_with_seed(self):
        a = rmat_graph(64, 300, rng=7)
        b = rmat_graph(64, 300, rng=7)
        assert np.array_equal(a, b)

    def test_no_self_loops_or_duplicates(self, rng):
        edges = rmat_graph(64, 300, rng=rng)
        assert (edges[:, 0] != edges[:, 1]).all()
        assert len({tuple(e) for e in edges.tolist()}) == len(edges)

    def test_degree_skew(self, rng):
        # R-MAT with default parameters is strongly skewed: the max
        # out-degree should far exceed the average.
        edges = rmat_graph(1024, 8192, rng=rng)
        dout = np.bincount(edges[:, 0], minlength=1024)
        assert dout.max() >= 4 * dout.mean()

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            rmat_graph(1, 10)
        with pytest.raises(ConfigError):
            rmat_graph(10, 0)
        with pytest.raises(ConfigError):
            rmat_graph(10, 10, a=0.8, b=0.3, c=0.3)


class TestPreferentialAttachment:
    def test_fixed_out_degree(self, rng):
        edges = preferential_attachment_graph(200, 3, rng=rng)
        dout = np.bincount(edges[:, 0], minlength=200)
        assert (dout[3:] <= 3).all()
        assert dout[0] == 0  # the seed vertex has no out-edges

    def test_edges_point_backwards(self, rng):
        edges = preferential_attachment_graph(50, 2, rng=rng)
        assert (edges[:, 0] > edges[:, 1]).all()

    def test_in_degree_skew(self, rng):
        edges = preferential_attachment_graph(500, 3, rng=rng)
        din = np.bincount(edges[:, 1], minlength=500)
        assert din.max() >= 5 * din.mean()


class TestErdosRenyi:
    def test_exact_edge_count_distinct(self, rng):
        edges = erdos_renyi_graph(30, 200, rng=rng)
        assert edges.shape == (200, 2)
        assert len({tuple(e) for e in edges.tolist()}) == 200
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_max_edges(self):
        edges = erdos_renyi_graph(5, 20, rng=1)
        assert len(edges) == 20
        with pytest.raises(ConfigError):
            erdos_renyi_graph(5, 21)


class TestUtilityGraphs:
    def test_star(self):
        inward = star_graph(3, inward=True)
        assert sorted(map(tuple, inward.tolist())) == [(1, 0), (2, 0), (3, 0)]
        outward = star_graph(3, inward=False)
        assert sorted(map(tuple, outward.tolist())) == [(0, 1), (0, 2), (0, 3)]

    def test_path(self):
        assert path_graph(3).tolist() == [[0, 1], [1, 2]]

    def test_cycle(self):
        assert cycle_graph(3).tolist() == [[0, 1], [1, 2], [2, 0]]

    def test_complete(self):
        edges = complete_graph(4)
        assert len(edges) == 12
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_validation(self):
        for fn in (path_graph, cycle_graph, complete_graph):
            with pytest.raises(ConfigError):
                fn(1)
        with pytest.raises(ConfigError):
            star_graph(0)
