"""Shared fixtures: the paper's worked-example graph, random graphs, configs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro import Backend, DynamicDiGraph, PPRConfig, PushVariant

# Keep hypothesis fast and deterministic in CI-style runs.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture(scope="session", autouse=True)
def _sweep_shm():
    """No test run may leave ``repro-shm-*`` segments behind.

    SIGKILL tests can orphan shared-memory snapshots faster than the
    stdlib resource tracker reclaims them; sweeping dead-creator
    segments at session teardown keeps /dev/shm clean between runs.
    """
    yield
    from repro.graph.shm import sweep_stale

    sweep_stale()


@pytest.fixture(autouse=True)
def _reset_obs():
    """The tracer is process-global; no test may leak spans into the next."""
    from repro import obs

    yield
    obs.reset()


@pytest.fixture(autouse=True)
def _reset_chaos():
    """The fault injector is process-global; no plan may leak across tests."""
    from repro import chaos

    yield
    chaos.reset()


@pytest.fixture
def paper_graph() -> DynamicDiGraph:
    """The 4-vertex graph of the paper's Figures 1-3.

    Edges {2->1, 3->1, 3->2, 4->3, 1->4}; source s=1, alpha=0.5, eps=0.1.
    Derived from the numbers in the figures: the parallel push from
    scratch must yield P=(0.5, 0.25, 0.1875, 0.0625).
    """
    return DynamicDiGraph([(2, 1), (3, 1), (3, 2), (4, 3), (1, 4)])


@pytest.fixture
def paper_config() -> PPRConfig:
    """The alpha/epsilon of the paper's running examples."""
    return PPRConfig(alpha=0.5, epsilon=0.1, variant=PushVariant.VANILLA, backend=Backend.PURE)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20170901)  # the paper's publication month


def random_graph(
    rng: np.random.Generator, n: int = 30, m: int = 120
) -> DynamicDiGraph:
    """A small random digraph (helper, not a fixture, for parametrized use)."""
    from repro.graph.generators import erdos_renyi_graph

    edges = erdos_renyi_graph(n, m, rng=rng)
    return DynamicDiGraph(map(tuple, edges.tolist()))


def all_variant_configs(
    alpha: float = 0.2, epsilon: float = 1e-4, workers: int = 4
) -> list[PPRConfig]:
    """One config per (variant, backend) combination."""
    configs = []
    for variant in PushVariant:
        for backend in (Backend.PURE, Backend.NUMPY):
            configs.append(
                PPRConfig(
                    alpha=alpha,
                    epsilon=epsilon,
                    variant=variant,
                    backend=backend,
                    workers=workers,
                )
            )
    return configs
