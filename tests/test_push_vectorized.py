"""Backend-equivalence tests: pure reference engine vs numpy engine.

The two engines share the scheduling contract (sorted frontiers, chunked
eager reads), so given the same configuration they must produce the same
push counts, iteration structure and (up to float summation order) the
same final state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Backend,
    CSRGraph,
    DynamicDiGraph,
    PPRConfig,
    PPRState,
    PushVariant,
    parallel_local_push,
)
from repro.graph.generators import erdos_renyi_graph, rmat_graph


def run_both(graph, source, variant, workers, *, epsilon=1e-4, alpha=0.2, seeds=None):
    out = []
    for backend in (Backend.PURE, Backend.NUMPY):
        config = PPRConfig(
            alpha=alpha, epsilon=epsilon, variant=variant, backend=backend, workers=workers
        )
        state = PPRState.initial(source, graph.capacity)
        stats = parallel_local_push(
            state, graph, config, seeds=seeds if seeds is not None else [source]
        )
        out.append((state, stats))
    return out


@pytest.mark.parametrize("variant", list(PushVariant))
@pytest.mark.parametrize("workers", [1, 3, 1000])
def test_equivalence_random_graphs(variant, workers):
    for trial in range(5):
        rng = np.random.default_rng(100 + trial)
        edges = erdos_renyi_graph(30, 140, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        (s1, st1), (s2, st2) = run_both(g, int(edges[0, 0]), variant, workers)
        assert s1.allclose(s2, atol=1e-9), (trial, variant, workers)
        assert st1.pushes == st2.pushes
        assert st1.num_iterations == st2.num_iterations
        assert st1.edge_traversals == st2.edge_traversals
        assert [r.frontier_size for r in st1.iterations] == [
            r.frontier_size for r in st2.iterations
        ]


@pytest.mark.parametrize("variant", [PushVariant.OPT, PushVariant.VANILLA])
def test_equivalence_heavy_tailed(variant, rng):
    edges = rmat_graph(128, 800, rng=rng)
    g = DynamicDiGraph(map(tuple, edges.tolist()))
    (s1, st1), (s2, st2) = run_both(g, int(edges[0, 0]), variant, 8, epsilon=1e-5)
    assert s1.allclose(s2, atol=1e-9)
    assert st1.pushes == st2.pushes


def test_equivalence_with_multigraph(rng):
    g = DynamicDiGraph([(0, 1), (1, 0), (2, 0)])
    g.add_edge(0, 1)  # parallel edge
    g.add_edge(2, 0, count=3)
    (s1, _), (s2, _) = run_both(g, 0, PushVariant.OPT, 2)
    assert s1.allclose(s2, atol=1e-12)


def test_numpy_accepts_prebuilt_csr(rng):
    edges = erdos_renyi_graph(20, 80, rng=rng)
    g = DynamicDiGraph(map(tuple, edges.tolist()))
    csr = CSRGraph.from_edge_array(edges, capacity=g.capacity)
    config = PPRConfig(alpha=0.2, epsilon=1e-4, backend=Backend.NUMPY)
    state = PPRState.initial(0, g.capacity)
    stats = parallel_local_push(state, g, config, seeds=[0], csr=csr)
    state2 = PPRState.initial(0, g.capacity)
    stats2 = parallel_local_push(state2, g, config, seeds=[0])
    assert state.allclose(state2, atol=1e-12)
    assert stats.pushes == stats2.pushes


def test_negative_phase_equivalence(paper_graph):
    # Force negative residuals via a deletion-style perturbation.
    for backend in (Backend.PURE, Backend.NUMPY):
        config = PPRConfig(alpha=0.5, epsilon=0.05, backend=backend)
        state = PPRState.initial(1, paper_graph.capacity)
        parallel_local_push(state, paper_graph, config, seeds=[1])
    base = PPRState.initial(1, paper_graph.capacity)
    config_pure = PPRConfig(alpha=0.5, epsilon=0.05, backend=Backend.PURE)
    parallel_local_push(base, paper_graph, config_pure, seeds=[1])
    base.p[3] += 0.5 * 0.4
    base.r[3] -= 0.4  # Lemma-1-legal perturbation with negative residual
    states = []
    for backend in (Backend.PURE, Backend.NUMPY):
        config = PPRConfig(alpha=0.5, epsilon=0.05, backend=backend)
        state = base.copy()
        stats = parallel_local_push(state, paper_graph, config, seeds=[3])
        assert state.residual_linf() <= 0.05
        states.append(state)
    assert states[0].allclose(states[1], atol=1e-12)
