"""Tests for graph persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicDiGraph, GraphError
from repro.graph.io import (
    load_edge_list,
    load_graph,
    load_npz,
    save_edge_list,
    save_npz,
)


@pytest.fixture
def edges():
    return np.array([[0, 1], [1, 2], [2, 0]], dtype=np.int64)


class TestEdgeList:
    def test_roundtrip(self, edges, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(edges, path, comment="test graph\nline two")
        loaded = load_edge_list(path)
        assert np.array_equal(loaded, edges)
        text = path.read_text()
        assert text.startswith("# test graph")

    def test_snap_style_comments_skipped(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# Directed graph\n% another comment\n\n0 1\n1\t2\n")
        loaded = load_edge_list(path)
        assert loaded.tolist() == [[0, 1], [1, 2]]

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            load_edge_list(tmp_path / "nope.txt")

    def test_bad_shape(self, tmp_path):
        with pytest.raises(GraphError):
            save_edge_list(np.zeros((2, 3), dtype=np.int64), tmp_path / "x.txt")

    def test_explicit_num_nodes_header(self, edges, tmp_path):
        """Trailing isolated vertices are only countable by the caller."""
        path = tmp_path / "g.txt"
        save_edge_list(edges, path, num_nodes=10)
        assert "# Nodes: 10 Edges: 3" in path.read_text()

    def test_inferred_num_nodes_header(self, edges, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(edges, path)
        assert "# Nodes: 3 Edges: 3" in path.read_text()

    def test_fast_path_matches_fallback_on_large_list(self, tmp_path):
        rng = np.random.default_rng(5)
        edges = rng.integers(0, 500, size=(2000, 2)).astype(np.int64)
        path = tmp_path / "big.txt"
        save_edge_list(edges, path, comment="header\nlines")
        assert np.array_equal(load_edge_list(path), edges)

    def test_empty_edge_list(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only comments\n")
        assert load_edge_list(path).shape == (0, 2)


class TestNpz:
    def test_roundtrip(self, edges, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(edges, path)
        assert np.array_equal(load_npz(path), edges)

    def test_missing_key(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(GraphError):
            load_npz(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            load_npz(tmp_path / "nope.npz")


class TestLoadGraph:
    def test_dispatch_by_extension(self, edges, tmp_path):
        txt = tmp_path / "g.txt"
        npz = tmp_path / "g.npz"
        save_edge_list(edges, txt)
        save_npz(edges, npz)
        expected = DynamicDiGraph(map(tuple, edges.tolist()))
        assert load_graph(txt) == expected
        assert load_graph(npz) == expected


class TestFromEdgeArray:
    def test_matches_from_edges(self):
        rng = np.random.default_rng(9)
        edges = rng.integers(0, 40, size=(300, 2)).astype(np.int64)
        fast = DynamicDiGraph.from_edge_array(edges)
        fast.check_consistency()
        assert fast == DynamicDiGraph.from_edges(map(tuple, edges.tolist()))

    def test_parallel_edges_collapse_to_multiplicity(self):
        g = DynamicDiGraph.from_edge_array(np.array([[0, 1], [0, 1], [1, 2]]))
        assert g.multiplicity(0, 1) == 2
        assert g.num_edges == 3

    def test_empty(self):
        g = DynamicDiGraph.from_edge_array(np.empty((0, 2), dtype=np.int64))
        assert g.num_vertices == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphError):
            DynamicDiGraph.from_edge_array(np.zeros((3, 3), dtype=np.int64))
