"""Unit tests for the delta-CSR snapshot overlay (:mod:`repro.graph.delta`)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.config import Backend, PPRConfig, PushVariant
from repro.core.push_parallel import parallel_local_push
from repro.core.state import PPRState
from repro.errors import ConfigError, GraphError
from repro.graph import (
    CSRGraph,
    DeltaCSRGraph,
    DynamicDiGraph,
    SlidingWindow,
    random_permutation_stream,
)
from repro.graph.generators import rmat_graph
from repro.graph.update import EdgeOp, EdgeUpdate, deletions, insertions


def small_graph() -> DynamicDiGraph:
    return DynamicDiGraph([(0, 1), (1, 2), (2, 0), (3, 1), (1, 0), (0, 1)])


def assert_csr_equal(a: CSRGraph, b: CSRGraph) -> None:
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.dout, b.dout)


def apply_and_advance(
    graph: DynamicDiGraph, view: DeltaCSRGraph, updates: list[EdgeUpdate]
) -> DeltaCSRGraph:
    for update in updates:
        graph.apply(update)
    return view.apply_updates(graph, updates)


# ---------------------------------------------------------------------- #
# digraph / csr helpers
# ---------------------------------------------------------------------- #


def test_in_row_matches_from_digraph_order():
    g = small_graph()
    csr = CSRGraph.from_digraph(g)
    for u in g.vertices():
        assert np.array_equal(g.in_row(u), csr.in_neighbors(u))


def test_in_row_unknown_vertex_is_empty():
    assert small_graph().in_row(99).size == 0


def test_csr_in_degrees_vectorized():
    csr = CSRGraph.from_digraph(small_graph())
    ids = np.array([0, 1, 3], dtype=np.int64)
    assert np.array_equal(
        csr.in_degrees(ids), np.array([csr.in_degree(int(v)) for v in ids])
    )


# ---------------------------------------------------------------------- #
# wrap / reads
# ---------------------------------------------------------------------- #


def test_wrap_delegates_to_base():
    g = small_graph()
    csr = CSRGraph.from_digraph(g)
    view = DeltaCSRGraph.wrap(csr)
    assert view.num_vertices == csr.num_vertices
    assert view.num_edges == csr.num_edges
    assert view.overlay_rows == 0
    frontier = np.arange(g.capacity, dtype=np.int64)
    s1, t1 = view.gather_in_edges(frontier)
    s2, t2 = csr.gather_in_edges(frontier)
    assert np.array_equal(s1, s2)
    assert np.array_equal(t1, t2)
    assert_csr_equal(view.consolidate(), csr)


def test_apply_updates_is_order_exact_with_rebuild():
    g = small_graph()
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    view = apply_and_advance(
        g,
        view,
        insertions([(2, 1), (4, 0), (0, 1)]) + deletions([(1, 2)]),
    )
    ref = CSRGraph.from_digraph(g)
    assert_csr_equal(view.consolidate(), ref)
    for u in g.vertices():
        assert np.array_equal(view.in_neighbors(u), ref.in_neighbors(u))
        assert view.in_degree(u) == ref.in_degree(u)
    ids = np.fromiter(g.vertices(), dtype=np.int64)
    assert np.array_equal(view.in_degrees(ids), ref.in_degrees(ids))


def test_apply_updates_grows_capacity_for_new_vertices():
    g = small_graph()
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    view = apply_and_advance(g, view, insertions([(9, 7)]))
    assert view.num_vertices == 10
    assert view.in_degree(7) == 1
    assert view.in_degree(8) == 0  # registered id space, no adjacency
    assert int(view.dout[9]) == 1
    assert_csr_equal(view.consolidate(), CSRGraph.from_digraph(g))


def test_apply_updates_multiplicities_and_full_deletion():
    g = DynamicDiGraph([(0, 1), (0, 1), (2, 1)])
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    view = apply_and_advance(g, view, deletions([(0, 1)]))
    assert list(view.in_neighbors(1)) == [0, 2]
    view = apply_and_advance(g, view, deletions([(0, 1)]))
    assert list(view.in_neighbors(1)) == [2]
    assert_csr_equal(view.consolidate(), CSRGraph.from_digraph(g))


def test_views_are_persistent():
    g = small_graph()
    v0 = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    before = v0.consolidate()
    apply_and_advance(g, v0, insertions([(4, 2)]))
    # The original view is untouched by the newer version.
    assert_csr_equal(v0.consolidate(), before)


def test_gather_in_edges_mixed_base_and_overlay():
    edges = rmat_graph(256, 2000, rng=7)
    g = DynamicDiGraph(map(tuple, edges.tolist()))
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    rng = np.random.default_rng(0)
    for _ in range(5):
        pairs = rng.integers(0, 300, size=(8, 2))
        view = apply_and_advance(
            g, view, insertions(map(tuple, pairs.tolist()))
        )
    ref = CSRGraph.from_digraph(g)
    frontier = np.unique(rng.integers(0, g.capacity, size=64)).astype(np.int64)
    s1, t1 = view.gather_in_edges(frontier)
    s2, t2 = ref.gather_in_edges(frontier)
    assert np.array_equal(s1, s2)
    assert np.array_equal(t1, t2)


def test_with_capacity_pads_dense_arrays():
    g = small_graph()
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g)).with_capacity(12)
    assert view.num_vertices == 12
    assert view.in_degree(11) == 0
    assert int(view.dout[11]) == 0
    view.ensure_covers(12)
    assert view.with_capacity(4) is view  # never shrinks


def test_ensure_covers_rejects_small_views():
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(small_graph()))
    with pytest.raises(ConfigError):
        view.ensure_covers(100)


def test_dout_validation():
    csr = CSRGraph.from_digraph(small_graph())
    with pytest.raises(GraphError):
        DeltaCSRGraph(csr, np.zeros(1, dtype=np.int64), {}, np.zeros(1, bool), 0)


# ---------------------------------------------------------------------- #
# consolidation policy
# ---------------------------------------------------------------------- #


def test_overlay_accounting_and_threshold():
    g = small_graph()
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    assert view.overlay_fraction == 0.0
    assert not view.should_consolidate(0.01)
    view = apply_and_advance(g, view, insertions([(0, 2), (3, 2)]))
    assert view.overlay_rows == 1  # both inserts hit vertex 2
    assert view.overlay_entries == len(view.in_neighbors(2))
    assert view.should_consolidate(0.01)
    with pytest.raises(ConfigError):
        view.should_consolidate(0.0)


def test_consolidated_resets_overlay():
    g = small_graph()
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    view = apply_and_advance(g, view, insertions([(0, 2)]))
    fresh = view.consolidated()
    assert fresh.overlay_rows == 0
    assert fresh.num_edges == view.num_edges
    assert_csr_equal(fresh.base, CSRGraph.from_digraph(g))


def test_memory_bytes_counts_overlay():
    g = small_graph()
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    base_bytes = view.memory_bytes()
    view = apply_and_advance(g, view, insertions([(0, 2)]))
    assert view.memory_bytes() > base_bytes


# ---------------------------------------------------------------------- #
# window (edge-array) mode
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("undirected", [False, True])
def test_window_delta_snapshot_matches_full_rebuild(undirected):
    edges = random_permutation_stream(rmat_graph(256, 2500, rng=3), rng=1)
    cap = int(edges.max()) + 1
    live = SlidingWindow(edges, batch_size=21, undirected=undirected)
    full = SlidingWindow(edges, batch_size=21, undirected=undirected)
    assert_csr_equal(
        live.delta_snapshot(cap).consolidate(), full.snapshot(cap)
    )
    for _ in range(12):
        live.slide()
        full.slide()
        view = live.delta_snapshot(cap, overlay_threshold=0.2)
        assert_csr_equal(view.consolidate(), full.snapshot(cap))


def test_window_delta_snapshot_reuses_the_view():
    edges = random_permutation_stream(rmat_graph(128, 1200, rng=4), rng=2)
    window = SlidingWindow(edges, batch_size=5)
    first = window.delta_snapshot()
    again = window.delta_snapshot()
    assert again is first  # no slide in between: same maintained view
    window.slide()
    advanced = window.delta_snapshot(overlay_threshold=1e9)
    assert advanced is not first
    assert advanced.overlay_rows > 0


@pytest.mark.parametrize("undirected", [False, True])
def test_window_delta_snapshot_rebuilds_after_skipped_slides(undirected):
    """Sliding past a full window-length between calls breaks the
    incremental chain; the next call must fall back to a rebuild, not
    ask the stale view to drop edges it never held."""
    edges = random_permutation_stream(rmat_graph(128, 1500, rng=6), rng=5)
    window = SlidingWindow(edges, batch_size=40, undirected=undirected)
    cap = int(edges.max()) + 1
    window.delta_snapshot(cap)
    for _ in range(5):  # 5 * 40 > window_size of 150: chain broken
        window.slide()
    view = window.delta_snapshot(cap)
    assert_csr_equal(view.consolidate(), window.snapshot(cap))
    # And the chain re-forms incrementally afterwards.
    window.slide()
    again = window.delta_snapshot(cap)
    assert_csr_equal(again.consolidate(), window.snapshot(cap))


def test_apply_edge_delta_rejects_overdrop():
    g = DynamicDiGraph([(0, 1)])
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    with pytest.raises(GraphError):
        view.apply_edge_delta(
            np.empty((0, 2), dtype=np.int64),
            np.array([[0, 1], [2, 1]], dtype=np.int64),
        )


def test_apply_edge_delta_rejects_too_small_capacity():
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(DynamicDiGraph([(0, 1)])))
    with pytest.raises(GraphError):
        view.apply_edge_delta(
            np.array([[5, 6]], dtype=np.int64),
            np.empty((0, 2), dtype=np.int64),
            capacity=3,
        )


# ---------------------------------------------------------------------- #
# the push engines consume the overlay view
# ---------------------------------------------------------------------- #


def push_states(graph: DynamicDiGraph, csr, config: PPRConfig):
    state = PPRState.initial(0, graph.capacity)
    parallel_local_push(state, graph, config, seeds=[0], csr=csr)
    return state


@pytest.mark.parametrize("variant", list(PushVariant))
def test_vectorized_push_identical_on_overlay_view(variant):
    edges = rmat_graph(128, 900, rng=9)
    g = DynamicDiGraph(map(tuple, edges.tolist()))
    g.add_vertex(0)
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    view = apply_and_advance(g, view, insertions([(1, 0), (0, 5), (7, 0)]))
    ref = CSRGraph.from_digraph(g)
    config = PPRConfig(backend=Backend.NUMPY, epsilon=1e-4, variant=variant)
    a = push_states(g, view, config)
    b = push_states(g, ref, config)
    assert np.array_equal(a.p, b.p)
    assert np.array_equal(a.r, b.r)


def test_overlay_view_pickles_for_the_multiprocess_engine():
    g = small_graph()
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    view = apply_and_advance(g, view, insertions([(3, 0)]))
    clone = pickle.loads(pickle.dumps(view))
    assert_csr_equal(clone.consolidate(), view.consolidate())
    frontier = np.arange(g.capacity, dtype=np.int64)
    s1, t1 = clone.gather_in_edges(frontier)
    s2, t2 = view.gather_in_edges(frontier)
    assert np.array_equal(s1, s2)
    assert np.array_equal(t1, t2)


def test_repr_mentions_overlay():
    g = small_graph()
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(g))
    view = apply_and_advance(g, view, insertions([(3, 0)]))
    assert "overlay=1 rows" in repr(view)
