"""Tests for the incremental Monte-Carlo baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigError, DynamicDiGraph, ground_truth_linear
from repro.baselines.montecarlo import IncrementalMonteCarloPPR
from repro.graph.generators import erdos_renyi_graph
from repro.graph.update import deletions, insertions


def small_graph(seed=0, n=12, m=50):
    edges = erdos_renyi_graph(n, m, rng=np.random.default_rng(seed))
    return DynamicDiGraph(map(tuple, edges.tolist()))


class TestEstimationAccuracy:
    def test_static_estimate_close_to_truth(self):
        g = small_graph()
        mc = IncrementalMonteCarloPPR(g.copy(), 3, 0.3, walks_per_vertex=3000, rng=1)
        truth = ground_truth_linear(g, 3, 0.3)
        err = np.abs(mc.estimate_vector()[: len(truth)] - truth).max()
        # MC standard error ~ sqrt(p/w) ~ 0.01 at w=3000; allow 5 sigma.
        assert err < 0.05

    def test_estimates_are_probabilities(self):
        mc = IncrementalMonteCarloPPR(small_graph(), 0, 0.3, walks_per_vertex=50, rng=2)
        vec = mc.estimate_vector()
        assert ((vec >= 0) & (vec <= 1)).all()

    def test_estimate_unknown_vertex_is_zero(self):
        mc = IncrementalMonteCarloPPR(small_graph(), 0, 0.3, walks_per_vertex=5, rng=3)
        assert mc.estimate(99999) == 0.0

    def test_source_estimate_at_least_alpha(self):
        # A walk from s is absorbed immediately at s with probability alpha.
        mc = IncrementalMonteCarloPPR(small_graph(), 2, 0.5, walks_per_vertex=4000, rng=4)
        assert mc.estimate(2) >= 0.4  # E = alpha + return mass >= 0.5 - noise


class TestIncrementalMaintenance:
    def test_incremental_tracks_truth(self):
        g = small_graph(seed=7)
        mc = IncrementalMonteCarloPPR(g, 1, 0.3, walks_per_vertex=2000, rng=5)
        updates = insertions([(0, 1), (4, 1), (1, 6)]) + deletions([(0, 1)])
        stats = mc.apply_batch(updates)
        assert stats.walks_regenerated > 0
        truth = ground_truth_linear(mc.graph, 1, 0.3)
        err = np.abs(mc.estimate_vector()[: len(truth)] - truth).max()
        assert err < 0.06

    def test_new_vertices_get_walks(self):
        g = small_graph()
        mc = IncrementalMonteCarloPPR(g, 0, 0.3, walks_per_vertex=4, rng=6)
        walks_before = mc.num_walks
        mc.apply_batch(insertions([(50, 0), (0, 51)]))
        assert mc.num_walks == walks_before + 2 * 4

    def test_index_consistency_after_updates(self):
        g = small_graph(seed=9)
        mc = IncrementalMonteCarloPPR(g, 0, 0.25, walks_per_vertex=10, rng=7)
        rng = np.random.default_rng(8)
        present = [(u, v) for u, v, _ in g.unique_edges()]
        for _ in range(40):
            if present and rng.random() < 0.5:
                u, v = present.pop(int(rng.integers(0, len(present))))
                mc.apply_batch(deletions([(u, v)]))
            else:
                u, v = int(rng.integers(0, 12)), int(rng.integers(0, 12))
                if u == v:
                    continue
                mc.apply_batch(insertions([(u, v)]))
                present.append((u, v))
        # Index integrity: every walk is indexed at exactly its path set.
        for wid, walk in enumerate(mc._walks):
            for vertex in set(walk.path):
                assert wid in mc._index[vertex]
        for vertex, ids in mc._index.items():
            for wid in ids:
                assert vertex in mc._walks[wid].path

    def test_deterministic_with_seed(self):
        a = IncrementalMonteCarloPPR(small_graph(), 0, 0.3, walks_per_vertex=20, rng=42)
        b = IncrementalMonteCarloPPR(small_graph(), 0, 0.3, walks_per_vertex=20, rng=42)
        assert np.array_equal(a.estimate_vector(), b.estimate_vector())


class TestCosts:
    def test_stats_counters_positive(self):
        g = small_graph()
        mc = IncrementalMonteCarloPPR(g, 0, 0.3, walks_per_vertex=6, rng=10)
        assert mc.initial_stats.walk_steps >= mc.num_walks  # >= 1 step each
        assert mc.initial_stats.index_ops > 0
        assert mc.index_size() > 0

    def test_dangling_vertices_kill_walks(self):
        # Graph where 1 is dangling: walks from 0 passing 1 die there.
        g = DynamicDiGraph([(0, 1)])
        mc = IncrementalMonteCarloPPR(g, 0, 0.5, walks_per_vertex=2000, rng=11)
        truth = ground_truth_linear(mc.graph, 0, 0.5)
        assert abs(mc.estimate(0) - truth[0]) < 0.05
        assert mc.estimate(1) == pytest.approx(0.0)  # 1 never reaches 0


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigError):
            IncrementalMonteCarloPPR(small_graph(), 0, 0.3, walks_per_vertex=0)
        with pytest.raises(ConfigError):
            IncrementalMonteCarloPPR(small_graph(), 0, 1.5)
