"""Tests for the ablation studies (design-choice claims)."""

from __future__ import annotations

import pytest

from repro.bench.ablations import (
    ablation_batching,
    ablation_frontier_generation,
    ablation_parallel_loss,
)


class TestParallelLossAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_parallel_loss(
            dataset="youtube", worker_widths=(1, 64, 100_000)
        )

    def test_sequential_baseline_row(self, result):
        assert result.rows[0][1] == "sequential"
        assert result.rows[0][5] == 1.0

    def test_vanilla_pays_parallel_loss(self, result):
        vanilla = [row for row in result.rows if row[1] == "vanilla"]
        assert all(row[5] >= 1.0 for row in vanilla)

    def test_eager_narrows_the_gap(self, result):
        # At each width, OPT pushes <= VANILLA pushes (Section 4.1's claim).
        vanilla = {row[2]: row[3] for row in result.rows if row[1] == "vanilla"}
        opt = {row[2]: row[3] for row in result.rows if row[1] == "opt"}
        assert set(vanilla) == set(opt)
        assert all(opt[w] <= vanilla[w] for w in vanilla)

    def test_fully_eager_approaches_sequential(self, result):
        seq_pushes = result.rows[0][3]
        opt_1 = next(row for row in result.rows if row[1] == "opt" and row[2] == 1)
        opt_wide = next(
            row for row in result.rows if row[1] == "opt" and row[2] == 100_000
        )
        assert opt_1[3] <= opt_wide[3]
        assert opt_1[3] <= 1.5 * seq_pushes


class TestBatchingAblation:
    def test_batching_never_worse(self):
        result = ablation_batching(dataset="youtube", num_slides=2)
        per_update = result.rows[0]
        batched = result.rows[1]
        assert per_update[4] >= batched[4]


class TestFrontierAblation:
    def test_local_detection_eliminates_sync(self):
        result = ablation_frontier_generation(dataset="youtube", num_slides=1)
        by_variant = {row[1]: row for row in result.rows}
        assert by_variant["vanilla"][3] > 0
        assert by_variant["eager"][3] > 0
        assert by_variant["dupdetect"][3] == 0
        assert by_variant["opt"][3] == 0
