"""Unit tests for CSR snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CSRGraph, DynamicDiGraph, GraphError
from repro.graph.generators import erdos_renyi_graph


class TestFromDigraph:
    def test_simple(self):
        g = DynamicDiGraph([(0, 2), (1, 2), (2, 0)])
        csr = CSRGraph.from_digraph(g)
        assert csr.num_vertices == 3
        assert csr.num_edges == 3
        assert sorted(csr.in_neighbors(2).tolist()) == [0, 1]
        assert csr.in_neighbors(1).tolist() == []
        assert csr.dout.tolist() == [1, 1, 1]

    def test_multiplicity_expanded(self):
        g = DynamicDiGraph()
        g.add_edge(0, 1, count=3)
        csr = CSRGraph.from_digraph(g)
        assert csr.in_neighbors(1).tolist() == [0, 0, 0]
        assert csr.dout[0] == 3

    def test_capacity_padding(self):
        g = DynamicDiGraph([(0, 1)])
        csr = CSRGraph.from_digraph(g, capacity=10)
        assert csr.num_vertices == 10
        assert csr.in_degree(9) == 0

    def test_capacity_too_small_raises(self):
        g = DynamicDiGraph([(0, 5)])
        with pytest.raises(GraphError):
            CSRGraph.from_digraph(g, capacity=3)


class TestFromEdgeArray:
    def test_matches_digraph_construction(self, rng):
        edges = erdos_renyi_graph(25, 100, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        a = CSRGraph.from_digraph(g, capacity=25)
        b = CSRGraph.from_edge_array(edges, capacity=25)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.dout, b.dout)
        for u in range(25):
            assert sorted(a.in_neighbors(u).tolist()) == sorted(
                b.in_neighbors(u).tolist()
            )

    def test_empty(self):
        csr = CSRGraph.from_edge_array(np.empty((0, 2), dtype=np.int64))
        assert csr.num_vertices == 0
        assert csr.num_edges == 0

    def test_bad_shape_raises(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_array(np.zeros((3, 3), dtype=np.int64))

    def test_negative_ids_raise(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_array(np.array([[-1, 0]]))


class TestGatherInEdges:
    def test_gather(self):
        g = DynamicDiGraph([(0, 2), (1, 2), (3, 1)])
        csr = CSRGraph.from_digraph(g)
        sources, targets = csr.gather_in_edges(np.array([2, 1]))
        # frontier[0]=2 has in-nbrs {0,1}; frontier[1]=1 has in-nbr {3}
        assert sources.tolist() == [0, 0, 1]
        assert sorted(targets[:2].tolist()) == [0, 1]
        assert targets[2] == 3

    def test_gather_empty_frontier(self):
        g = DynamicDiGraph([(0, 1)])
        csr = CSRGraph.from_digraph(g)
        sources, targets = csr.gather_in_edges(np.empty(0, dtype=np.int64))
        assert len(sources) == 0 and len(targets) == 0

    def test_gather_matches_python_loop(self, rng):
        edges = erdos_renyi_graph(30, 150, rng=rng)
        csr = CSRGraph.from_edge_array(edges)
        frontier = np.unique(rng.choice(30, size=10))
        sources, targets = csr.gather_in_edges(frontier)
        expected = []
        for i, u in enumerate(frontier):
            for v in csr.in_neighbors(int(u)):
                expected.append((i, int(v)))
        assert sorted(zip(sources.tolist(), targets.tolist())) == sorted(expected)


class TestValidation:
    def test_inconsistent_arrays_raise(self):
        with pytest.raises(GraphError):
            CSRGraph(
                np.array([0, 1]),
                np.array([0, 0], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )

    def test_memory_bytes_positive(self):
        csr = CSRGraph.from_edge_array(np.array([[0, 1], [1, 0]]))
        assert csr.memory_bytes() > 0
        assert "n=2" in repr(csr)
