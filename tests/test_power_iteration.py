"""Tests for the power-iteration baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CSRGraph, ConvergenceError, DynamicDiGraph, ground_truth_linear
from repro.baselines.power_iteration import power_iteration_ppr
from repro.graph.generators import erdos_renyi_graph


class TestPowerIteration:
    def test_matches_linear_solver(self, rng):
        edges = erdos_renyi_graph(40, 200, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        result = power_iteration_ppr(g, 0, 0.15)
        truth = ground_truth_linear(g, 0, 0.15)
        assert np.abs(result.vector - truth).max() < 1e-9

    def test_accepts_csr(self, rng):
        edges = erdos_renyi_graph(20, 80, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        from_graph = power_iteration_ppr(g, 0, 0.2)
        from_csr = power_iteration_ppr(CSRGraph.from_digraph(g), 0, 0.2)
        assert np.allclose(from_graph.vector, from_csr.vector)

    def test_work_counted(self, rng):
        edges = erdos_renyi_graph(20, 80, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        result = power_iteration_ppr(g, 0, 0.2)
        # Theta(m) per sweep — the reason the paper rejects this scheme.
        assert result.edge_operations == result.iterations * g.num_edges
        assert result.iterations > 1

    def test_convergence_error(self, rng):
        edges = erdos_renyi_graph(20, 80, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        with pytest.raises(ConvergenceError):
            power_iteration_ppr(g, 0, 0.15, tol=1e-14, max_iterations=2)

    def test_dangling_graph(self):
        g = DynamicDiGraph([(0, 1)])  # 1 dangling
        result = power_iteration_ppr(g, 0, 0.5)
        assert result.vector[0] == pytest.approx(0.5)
        assert result.vector[1] == pytest.approx(0.0)
