"""Durable state store: WAL framing, checkpoints, retention, recovery.

The load-bearing test is :class:`TestCrashRecovery` — the acceptance
contract of :mod:`repro.store`: a service recovered from checkpoint +
WAL-tail replay answers ``certified_top_k`` bit-for-bit like an
uninterrupted run at the same graph version.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Backend,
    DynamicDiGraph,
    FsyncPolicy,
    PPRConfig,
    PPRService,
    ServeConfig,
    StateStore,
    StoreConfig,
    StoreError,
    insertions,
    recover_service,
)
from repro.graph.generators import erdos_renyi_graph
from repro.graph.update import EdgeOp, EdgeUpdate
from repro.store.checkpoint import (
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    restore_service,
    write_checkpoint,
)
from repro.store.recovery import recover
from repro.store.wal import (
    WriteAheadLog,
    decode_updates,
    encode_updates,
    scan_segment,
    truncate_torn_tail,
)

NUMPY_CONFIG = PPRConfig(epsilon=1e-6, backend=Backend.NUMPY, workers=4)


def _batch(*pairs: tuple[int, int], op: EdgeOp = EdgeOp.INSERT) -> list[EdgeUpdate]:
    return [EdgeUpdate(u, v, op) for u, v in pairs]


def _service(seed: int = 3, n: int = 50, m: int = 250) -> PPRService:
    rng = np.random.default_rng(seed)
    graph = DynamicDiGraph(map(tuple, erdos_renyi_graph(n, m, rng=rng).tolist()))
    return PPRService(graph, NUMPY_CONFIG, ServeConfig(cache_capacity=16, num_hubs=2))


def _random_batches(rng: np.random.Generator, count: int, n: int = 50):
    batches = []
    for _ in range(count):
        pairs = rng.integers(0, n, size=(5, 2))
        batches.append(insertions((int(a), int(b)) for a, b in pairs if a != b))
    return [b for b in batches if b]


# ---------------------------------------------------------------------- #
# WAL
# ---------------------------------------------------------------------- #


class TestWalCodec:
    def test_roundtrip(self):
        batch = _batch((0, 1), (2, 3)) + _batch((1, 0), op=EdgeOp.DELETE)
        assert decode_updates(encode_updates(batch)) == batch

    def test_empty_batch(self):
        assert decode_updates(encode_updates([])) == []

    def test_bad_length_rejected(self):
        with pytest.raises(StoreError):
            decode_updates(b"\x00" * 23)

    def test_bad_op_rejected(self):
        rows = np.array([[0, 1, 7]], dtype="<i8")
        with pytest.raises(StoreError):
            decode_updates(rows.tobytes())


class TestWriteAheadLog:
    def test_append_and_read_back(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, _batch((0, 1)))
        wal.append(2, _batch((1, 2), (2, 0)))
        wal.close()
        records = list(WriteAheadLog(tmp_path).iter_records())
        assert [r.seq for r in records] == [1, 2]
        assert list(records[1].updates) == _batch((1, 2), (2, 0))

    def test_rotation_creates_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, _batch((0, 1)))
        wal.rotate()
        wal.append(2, _batch((1, 2)))
        wal.close()
        assert len(wal.segments()) == 2
        assert [r.seq for r in wal.iter_records()] == [1, 2]

    def test_iter_after_seq_skips_prefix(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for seq in (1, 2, 3):
            wal.append(seq, _batch((seq, 0)))
        wal.close()
        assert [r.seq for r in wal.iter_records(after_seq=2)] == [3]

    def test_sequence_gap_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, _batch((0, 1)))
        wal.rotate()
        wal.append(5, _batch((1, 2)))  # hole: 2..4 missing
        wal.close()
        with pytest.raises(StoreError, match="gap"):
            list(wal.iter_records())

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        segment = wal.append(1, _batch((0, 1)))
        wal.append(2, _batch((1, 2)))
        wal.close()
        whole = segment.read_bytes()
        segment.write_bytes(whole[:-5])  # tear mid-frame
        scan = scan_segment(segment)
        assert [r.seq for r in scan.records] == [1]
        assert not scan.clean
        dropped = truncate_torn_tail(segment)
        assert dropped > 0
        assert scan_segment(segment).clean

    def test_corrupt_crc_stops_scan(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        segment = wal.append(1, _batch((0, 1)))
        wal.append(2, _batch((1, 2)))
        wal.close()
        data = bytearray(segment.read_bytes())
        data[25] ^= 0xFF  # flip one payload byte of the first frame
        segment.write_bytes(bytes(data))
        assert scan_segment(segment).records == ()

    def test_drop_segments_covered_by(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, _batch((0, 1)))
        wal.rotate()
        wal.append(2, _batch((1, 2)))
        wal.rotate()
        wal.append(3, _batch((2, 0)))
        wal.close()
        wal.drop_segments_covered_by(2)
        assert [r.seq for r in wal.iter_records()] == [3]

    def test_fsync_policies_accepted(self, tmp_path):
        for policy in FsyncPolicy:
            directory = tmp_path / policy.value
            wal = WriteAheadLog(directory, fsync=policy)
            wal.append(1, _batch((0, 1)))
            wal.close()
            assert [r.seq for r in wal.iter_records()] == [1]


# ---------------------------------------------------------------------- #
# checkpoints
# ---------------------------------------------------------------------- #


class TestCheckpoint:
    def test_roundtrip_restores_bit_exact_state(self, tmp_path):
        service = _service()
        service.query_many([0, 1, 2])
        service.ingest(insertions([(0, 5), (5, 9)]))
        path = write_checkpoint(tmp_path, service)
        restored = restore_service(read_checkpoint(path))
        assert restored.graph_version == service.graph_version
        assert restored.graph == service.graph
        assert restored.resident_sources() == service.resident_sources()
        assert restored.hubs == service.hubs
        for s in (0, 1, 2):
            a = restored.cache.peek(s)
            b = service.cache.peek(s)
            assert np.array_equal(a.state.p, b.state.p)
            assert np.array_equal(a.state.r, b.state.r)
            assert a.pending_seeds == b.pending_seeds
            assert a.version == b.version

    def test_restored_csr_is_bit_identical(self, tmp_path):
        from repro.graph.csr import CSRGraph

        service = _service()
        service.ingest(insertions([(3, 7)]))
        path = write_checkpoint(tmp_path, service)
        restored = restore_service(read_checkpoint(path))
        a = CSRGraph.from_digraph(service.graph)
        b = CSRGraph.from_digraph(restored.graph)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.dout, b.dout)

    def test_config_survives(self, tmp_path):
        service = _service()
        path = write_checkpoint(tmp_path, service)
        checkpoint = read_checkpoint(path)
        assert checkpoint.config == NUMPY_CONFIG
        assert checkpoint.serve.cache_capacity == 16
        assert checkpoint.serve.num_hubs == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StoreError):
            read_checkpoint(tmp_path / "checkpoint-000000000000.npz")

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "checkpoint-000000000007.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(StoreError, match="unreadable"):
            read_checkpoint(path)

    def test_latest_falls_back_past_damage(self, tmp_path):
        service = _service()
        write_checkpoint(tmp_path, service)
        service.ingest(insertions([(1, 4)]))
        newest = write_checkpoint(tmp_path, service)
        newest.write_bytes(b"garbage")
        checkpoint = latest_checkpoint(tmp_path)
        assert checkpoint.version == 0

    def test_latest_none_for_empty_dir(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None


# ---------------------------------------------------------------------- #
# StateStore: cadence, retention, compaction
# ---------------------------------------------------------------------- #


class TestStateStore:
    def test_checkpoint_cadence_and_wal_compaction(self, tmp_path):
        service = _service()
        store = StateStore(
            tmp_path, StoreConfig(root=str(tmp_path), checkpoint_interval=2)
        )
        service.attach_store(store)  # baseline checkpoint at v0
        rng = np.random.default_rng(0)
        for batch in _random_batches(rng, 5):
            service.ingest(batch)
        status = store.status()
        # v0 baseline pruned down to retain_checkpoints=2: v2 and v4 remain.
        assert [c.version for c in status.checkpoints] == [2, 4]
        # WAL holds only the tail past the newest checkpoint.
        assert status.replay_batches == 1
        assert status.wal_records == 1

    def test_retention_prunes_old_checkpoints(self, tmp_path):
        service = _service()
        store = StateStore(
            tmp_path,
            StoreConfig(
                root=str(tmp_path), checkpoint_interval=1, retain_checkpoints=3
            ),
        )
        service.attach_store(store)
        rng = np.random.default_rng(1)
        for batch in _random_batches(rng, 6):
            service.ingest(batch)
        versions = [c.version for c in store.status().checkpoints]
        assert len(versions) == 3
        assert versions == sorted(versions)
        assert versions[-1] == service.graph_version

    def test_serve_config_auto_attaches_store(self, tmp_path):
        root = tmp_path / "auto"
        rng = np.random.default_rng(2)
        graph = DynamicDiGraph(map(tuple, erdos_renyi_graph(30, 120, rng=rng).tolist()))
        service = PPRService(
            graph,
            NUMPY_CONFIG,
            ServeConfig(store=StoreConfig(root=str(root), checkpoint_interval=1)),
        )
        assert service.store is not None
        assert (root / "checkpoints").exists()
        service.ingest(insertions([(0, 7)]))
        recovered = recover_service(root)
        assert recovered.graph_version == 1
        assert recovered.graph == service.graph


# ---------------------------------------------------------------------- #
# recovery
# ---------------------------------------------------------------------- #


class TestCrashRecovery:
    SOURCES = [0, 1, 2, 3, 4, 5]

    def _twin_runs(self, tmp_path, num_batches: int = 8, interval: int = 3):
        """An uninterrupted service and a persisted twin fed identically."""
        reference = _service()
        persisted = _service()
        reference.query_many(self.SOURCES)
        persisted.query_many(self.SOURCES)
        store = StateStore(
            tmp_path, StoreConfig(root=str(tmp_path), checkpoint_interval=interval)
        )
        persisted.attach_store(store)
        rng = np.random.default_rng(11)
        for batch in _random_batches(rng, num_batches):
            reference.ingest(batch)
            persisted.ingest(batch)
        store.close()
        return reference, persisted.graph_version

    def test_recovered_topk_bit_exact_vs_uninterrupted(self, tmp_path):
        """The acceptance criterion: ingest K batches, crash, recover,
        and certified_top_k matches the uninterrupted run exactly."""
        reference, version = self._twin_runs(tmp_path)
        result = recover(tmp_path, attach=False)
        recovered = result.service
        assert recovered.graph_version == reference.graph_version == version
        assert result.replayed_batches > 0  # the WAL tail actually replayed
        for s in self.SOURCES:
            assert (
                recovered.query(s, 10).entries == reference.query(s, 10).entries
            )

    def test_recovered_hub_rankings_bit_exact(self, tmp_path):
        reference, _ = self._twin_runs(tmp_path)
        recovered = recover_service(tmp_path, attach=False)
        assert recovered.hubs == reference.hubs
        for hub in reference.hubs:
            assert recovered.rank_for_hub(hub, 5) == reference.rank_for_hub(hub, 5)

    def test_recovery_survives_torn_wal_tail(self, tmp_path):
        reference, _ = self._twin_runs(tmp_path)
        # Tear the last WAL frame mid-payload, as a crash during append would.
        segments = WriteAheadLog(tmp_path / "wal").segments()
        last = segments[-1]
        last.write_bytes(last.read_bytes()[:-7])
        result = recover(tmp_path, attach=False)
        assert result.torn_bytes_dropped > 0
        # The torn batch is lost; everything up to it is intact.
        assert result.service.graph_version == reference.graph_version - 1

    def test_recovery_reattaches_store_and_keeps_persisting(self, tmp_path):
        self._twin_runs(tmp_path)
        recovered = recover_service(tmp_path)
        assert recovered.store is not None
        before = recovered.graph_version
        recovered.ingest(insertions([(2, 9)]))
        recovered.store.close()
        again = recover_service(tmp_path, attach=False)
        assert again.graph_version == before + 1

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no checkpoint"):
            recover_service(tmp_path)

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(StoreError, match="not found"):
            recover_service(tmp_path / "nope")

    def test_rejected_batch_never_poisons_the_log(self, tmp_path):
        """A batch the graph rejects must not reach the WAL: the store
        stays recoverable and later good batches log clean sequence."""
        service = _service()
        store = StateStore(
            tmp_path, StoreConfig(root=str(tmp_path), checkpoint_interval=100)
        )
        service.attach_store(store)
        service.ingest(insertions([(0, 7)]))
        from repro import EdgeError, deletions

        with pytest.raises(EdgeError):
            service.ingest(deletions([(45, 46)]))  # edge never existed
        service.ingest(insertions([(1, 8)]))  # service keeps going
        store.close()
        recovered = recover_service(tmp_path, attach=False)
        assert recovered.graph_version == 2
        assert recovered.graph.has_edge(0, 7)
        assert recovered.graph.has_edge(1, 8)
        assert not recovered.graph.has_edge(45, 46)

    def test_ingest_works_after_recovering_fully_torn_segment(self, tmp_path):
        """A crash tearing the *first* frame of a fresh segment leaves an
        empty file behind after truncation; the recovered service must be
        able to reuse that segment name and keep ingesting."""
        service = _service()
        store = StateStore(
            tmp_path, StoreConfig(root=str(tmp_path), checkpoint_interval=100)
        )
        service.attach_store(store)
        service.ingest(insertions([(0, 7)]))
        store.close()
        # Tear the single frame of the only segment down to a partial header.
        segment = WriteAheadLog(tmp_path / "wal").segments()[0]
        segment.write_bytes(segment.read_bytes()[:9])
        recovered = recover_service(tmp_path)  # reattaches a store
        assert recovered.graph_version == 0  # the torn batch is lost
        recovered.ingest(insertions([(0, 7)]))  # must not raise
        recovered.store.close()
        again = recover_service(tmp_path, attach=False)
        assert again.graph_version == 1
        assert again.graph.has_edge(0, 7)

    def test_config_mismatch_refused(self, tmp_path):
        self._twin_runs(tmp_path)
        with pytest.raises(StoreError, match="mismatch"):
            recover_service(tmp_path, config=NUMPY_CONFIG.with_(epsilon=1e-4))

    def test_crash_during_checkpoint_rename_recovers_from_previous(
        self, tmp_path
    ):
        """Chaos at the ``checkpoint.rename`` seam: dying between the npz
        tmp-write and the atomic rename must leave the *previous*
        checkpoint authoritative, with the WAL tail carrying everything
        since — and the recovered ``certified_top_k`` bit-exact against
        the uninterrupted twin."""
        from repro import chaos
        from repro.chaos import Fault, FaultKind, FaultPlan

        reference = _service()
        persisted = _service()
        reference.query_many([0, 1, 2, 3])
        persisted.query_many([0, 1, 2, 3])
        store = StateStore(
            tmp_path, StoreConfig(root=str(tmp_path), checkpoint_interval=3)
        )
        persisted.attach_store(store)  # baseline checkpoint (plan not armed)
        # Cadence renames at v3 (visit 1) and v6 (visit 2); the injected
        # OSError is the crash window between tmp-write and rename.
        chaos.install(
            FaultPlan(
                faults=(
                    Fault(
                        "checkpoint.rename",
                        FaultKind.ERROR,
                        at=2,
                        message="power cut mid-rename",
                    ),
                ),
                name="torn-checkpoint",
            )
        )
        rng = np.random.default_rng(11)
        died_at = None
        for batch in _random_batches(rng, 8):
            reference.ingest(batch)
            try:
                persisted.ingest(batch)
            except OSError:
                died_at = persisted.graph_version
                break  # the process is gone: no close(), no cleanup
        assert died_at == 6
        chaos.reset()

        # The torn tmp file is ignored; the newest *named* checkpoint is
        # still v3, and the WAL tail replays v4..v6 on top of it.
        assert latest_checkpoint(tmp_path / "checkpoints") is not None
        result = recover(tmp_path, attach=False)
        assert result.checkpoint_version == 3
        assert result.replayed_batches == 3
        recovered = result.service
        assert recovered.graph_version == reference.graph_version == 6
        for s in [0, 1, 2, 3]:
            assert (
                recovered.query(s, 10).entries == reference.query(s, 10).entries
            )

    def test_matching_config_accepted(self, tmp_path):
        _, version = self._twin_runs(tmp_path)
        recovered = recover_service(tmp_path, config=NUMPY_CONFIG, attach=False)
        assert recovered.graph_version == version
