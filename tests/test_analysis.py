"""Tests for the theoretical-bound helpers and parallel-loss measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigError,
    DynamicDiGraph,
    PPRConfig,
    PPRState,
    PushVariant,
    parallel_bound_directed,
    parallel_bound_undirected,
    parallel_local_push,
    parallel_loss,
    residual_change_bound,
    sequential_bound,
)
from repro.core.analysis import measure_residual_change
from repro.graph.generators import erdos_renyi_graph
from repro.graph.update import insertions


class TestBoundFormulas:
    def test_sequential_bound_shape(self):
        # O(K + K/(n eps) + d/eps): each term scales as expected.
        base = sequential_bound(K=100, n=1000, d=10, epsilon=1e-3)
        assert sequential_bound(K=200, n=1000, d=10, epsilon=1e-3) > base
        assert sequential_bound(K=100, n=1000, d=20, epsilon=1e-3) > base
        assert sequential_bound(K=100, n=1000, d=10, epsilon=1e-4) > base

    def test_parallel_bounds_match_equations(self):
        # Equations 4 and 5, evaluated by hand for one parameter point.
        K, n, d, eps, a = 10, 100, 5.0, 1e-2, 0.5
        a2 = a * a
        expected_d = d / (a * eps) + K * (a + 4) / (n * a2) + K * (2 / a2 + 2 / (a2 * n * eps))
        assert parallel_bound_directed(K, n, d, eps, a) == pytest.approx(expected_d)
        expected_u = d / (a * eps) + 2 * K / a + K * (4 / a2 + 4 / (a2 * n * eps))
        assert parallel_bound_undirected(K, n, d, eps, a) == pytest.approx(expected_u)

    def test_undirected_bound_dominates_directed_K_terms(self):
        # An undirected update is two directed updates: its K terms are ~2x.
        args = dict(K=50, n=1000, d=8.0, epsilon=1e-3, alpha=0.15)
        assert parallel_bound_undirected(**args) > parallel_bound_directed(**args)

    def test_residual_change_bound_formula(self):
        # Lemma 3: k (2 n eps + 2) / (alpha dout).
        assert residual_change_bound(3, 100, 1e-2, 0.5, 4) == pytest.approx(
            3 * (2 * 100 * 1e-2 + 2) / (0.5 * 4)
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            sequential_bound(0, 10, 1.0, 1e-3)
        with pytest.raises(ConfigError):
            residual_change_bound(1, 10, 1e-3, 0.5, 0)


class TestMeasuredResidualChange:
    def test_bound_holds_on_random_batches(self, rng):
        edges = erdos_renyi_graph(12, 40, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        config = PPRConfig(alpha=0.3, epsilon=1e-2)
        batch = insertions([(0, 5), (0, 7), (3, 2)])
        measurements = measure_residual_change(g, batch, config)
        assert {m.vertex for m in measurements} == {0, 3}
        by_vertex = {m.vertex: m for m in measurements}
        assert by_vertex[0].updates_from_vertex == 2
        for m in measurements:
            assert m.within_bound
            assert m.measured >= 0

    def test_original_graph_untouched(self, rng):
        edges = erdos_renyi_graph(10, 30, rng=rng)
        g = DynamicDiGraph(map(tuple, edges.tolist()))
        before = g.copy()
        measure_residual_change(g, insertions([(0, 5)]), PPRConfig(alpha=0.3, epsilon=1e-2))
        assert g == before


class TestParallelLoss:
    def test_vanilla_parallel_never_beats_sequential(self):
        # Lemma 4's consequence on push counts, over several random graphs.
        for seed in range(8):
            rng = np.random.default_rng(seed)
            edges = erdos_renyi_graph(25, 120, rng=rng)
            g = DynamicDiGraph(map(tuple, edges.tolist()))
            state = PPRState.initial(0, g.capacity)
            config = PPRConfig(
                alpha=0.2, epsilon=1e-4, variant=PushVariant.VANILLA, workers=1000
            )
            report = parallel_loss(g, state, config, seeds=[0])
            assert report.parallel_pushes >= report.sequential_pushes
            assert report.ratio >= 1.0
            assert report.loss == report.parallel_pushes - report.sequential_pushes

    def test_paper_example_loss(self, paper_graph, paper_config):
        state = PPRState.initial(1, paper_graph.capacity)
        report = parallel_loss(paper_graph, state, paper_config, seeds=[1])
        assert report.sequential_pushes == 4
        assert report.parallel_pushes == 5
        assert report.loss == 1

    def test_eager_reduces_loss(self):
        # Across random graphs, OPT's total pushes are <= VANILLA's.
        total = {PushVariant.VANILLA: 0, PushVariant.OPT: 0}
        for seed in range(8):
            rng = np.random.default_rng(100 + seed)
            edges = erdos_renyi_graph(30, 160, rng=rng)
            g = DynamicDiGraph(map(tuple, edges.tolist()))
            for variant in total:
                config = PPRConfig(alpha=0.2, epsilon=1e-4, variant=variant, workers=4)
                state = PPRState.initial(0, g.capacity)
                stats = parallel_local_push(state, g, config, seeds=[0])
                total[variant] += stats.pushes
        assert total[PushVariant.OPT] <= total[PushVariant.VANILLA]
