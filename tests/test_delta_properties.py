"""Property-based tests (hypothesis) for delta-CSR snapshots.

The laws the ingest hot path rests on (see ``docs/performance.md``):

1. for *any* interleaved insert/delete stream applied batch-by-batch, the
   maintained :class:`~repro.graph.delta.DeltaCSRGraph` — both its merged
   reads and its consolidation — equals ``CSRGraph.from_digraph`` of the
   live graph **array-for-array** (order-exact, hence bit-exact float
   summation in the vectorized push);
2. the sliding-window variant maintained by
   :meth:`~repro.graph.stream.SlidingWindow.delta_snapshot` equals the
   full ``snapshot()`` rebuild at every slide;
3. a :class:`~repro.serve.PPRService` serving under the ``DELTA``
   snapshot strategy answers every ``certified_top_k`` query
   **bit-identically** to one serving under ``REBUILD``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Backend, PPRConfig, ServeConfig, SnapshotStrategy
from repro.graph import (
    CSRGraph,
    DeltaCSRGraph,
    DynamicDiGraph,
    SlidingWindow,
)
from repro.graph.update import EdgeOp, EdgeUpdate
from repro.serve import PPRService

N_VERTICES = 14


@st.composite
def applied_update_batches(draw, max_batches=6, max_batch=8):
    """Batches of updates valid to apply in order (deletes hit live edges)."""
    multiplicity: dict[tuple[int, int], int] = {}
    batches: list[list[EdgeUpdate]] = []
    for _ in range(draw(st.integers(1, max_batches))):
        batch: list[EdgeUpdate] = []
        for _ in range(draw(st.integers(1, max_batch))):
            live = sorted(e for e, c in multiplicity.items() if c > 0)
            if live and draw(st.booleans()):
                u, v = draw(st.sampled_from(live))
                multiplicity[(u, v)] -= 1
                batch.append(EdgeUpdate(u, v, EdgeOp.DELETE))
            else:
                u = draw(st.integers(0, N_VERTICES - 1))
                v = draw(st.integers(0, N_VERTICES - 1))
                multiplicity[(u, v)] = multiplicity.get((u, v), 0) + 1
                batch.append(EdgeUpdate(u, v, EdgeOp.INSERT))
        batches.append(batch)
    return batches


def assert_csr_equal(a: CSRGraph, b: CSRGraph) -> None:
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.dout, b.dout)


@given(applied_update_batches())
@settings(max_examples=40)
def test_delta_overlay_equals_rebuild_before_and_after_consolidation(batches):
    graph = DynamicDiGraph()
    view: DeltaCSRGraph | None = None
    for batch in batches:
        for update in batch:
            graph.apply(update)
        if view is None:
            view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(graph))
            continue
        view = view.apply_updates(graph, batch)
        ref = CSRGraph.from_digraph(graph)
        # Before consolidation: every merged read equals the rebuild.
        assert view.num_edges == ref.num_edges
        ids = np.arange(graph.capacity, dtype=np.int64)
        assert np.array_equal(view.in_degrees(ids), ref.in_degrees(ids))
        s1, t1 = view.gather_in_edges(ids)
        s2, t2 = ref.gather_in_edges(ids)
        assert np.array_equal(s1, s2)
        assert np.array_equal(t1, t2)
        assert np.array_equal(view.dout[: graph.capacity], ref.dout)
        # After consolidation: array-for-array equality, and the fresh
        # base keeps answering identically.
        consolidated = view.consolidate()
        assert_csr_equal(consolidated, ref)
        assert_csr_equal(view.consolidated().consolidate(), ref)


@given(
    batch_size=st.integers(1, 30),
    num_slides=st.integers(1, 8),
    undirected=st.booleans(),
    seed=st.integers(0, 10),
)
@settings(max_examples=20, deadline=None)
def test_window_delta_snapshot_equals_rebuild(
    batch_size, num_slides, undirected, seed
):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, 40, size=(400, 2)).astype(np.int64)
    cap = 40
    live = SlidingWindow(edges, batch_size=batch_size, undirected=undirected)
    full = SlidingWindow(edges, batch_size=batch_size, undirected=undirected)
    for _ in range(min(num_slides, live.num_slides_available)):
        live.slide()
        full.slide()
        view = live.delta_snapshot(cap, overlay_threshold=0.3)
        assert_csr_equal(view.consolidate(), full.snapshot(cap))


@given(applied_update_batches(max_batches=4, max_batch=6), st.data())
@settings(max_examples=15, deadline=None)
def test_served_answers_bit_identical_under_both_strategies(batches, data):
    config = PPRConfig(backend=Backend.NUMPY, epsilon=1e-3, workers=4)

    def serve(strategy: SnapshotStrategy) -> list[list[tuple[int, float]]]:
        graph = DynamicDiGraph([(0, 1), (1, 2), (2, 0), (3, 0)])
        service = PPRService(
            graph,
            config,
            ServeConfig(cache_capacity=4, snapshot=strategy),
        )
        sources = [0, 2]
        service.query_many(sources)
        answers = []
        for batch in batches:
            service.ingest(batch)
            for s in sources:
                served = service.query(s, 5)
                answers.append([(e.vertex, e.estimate) for e in served.entries])
        return answers

    # Identical float bits, not just identical rankings.
    assert serve(SnapshotStrategy.REBUILD) == serve(SnapshotStrategy.DELTA)
