"""A faithful miniature of Ligra's vertex-centric abstraction.

Ligra (Shun & Blelloch, PPoPP'13) exposes two primitives over a frontier
abstraction (``vertexSubset``):

* ``edgeMap(G, U, F, C)`` — apply ``F`` over the edges out of ``U`` whose
  targets satisfy ``C``, returning the subset of targets for which ``F``
  returned true. Ligra's signature trick is representation switching: a
  *sparse* frontier traverses only its own edges; a *dense* frontier scans
  all vertices when the frontier's edge volume exceeds ``m / 20``.
* ``vertexMap(U, F)`` — apply ``F`` to every vertex of the subset.

This module reproduces that interface with vectorized kernels (``F`` and
``C`` take numpy arrays — a Python Ligra would be written exactly this
way) and with Ligra's ``removeDuplicates`` pass for sparse frontier
output: duplicates are merged through a flags array, which is the generic
synchronization cost that the paper's local duplicate detection avoids
(Section 5.3's comparison point).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ...errors import GraphError
from ...graph.delta import CSRView

#: Ligra's dense/sparse switching threshold: |edges from frontier| > m / 20.
DENSE_DIVISOR = 20


class VertexSubset:
    """A set of vertices in sparse (id array) or dense (bool mask) form."""

    def __init__(
        self,
        num_vertices: int,
        *,
        ids: np.ndarray | None = None,
        mask: np.ndarray | None = None,
    ) -> None:
        if (ids is None) == (mask is None):
            raise GraphError("provide exactly one of ids or mask")
        self.num_vertices = num_vertices
        self._ids = None if ids is None else np.asarray(ids, dtype=np.int64)
        self._mask = mask

    @classmethod
    def from_ids(cls, num_vertices: int, ids: np.ndarray) -> "VertexSubset":
        return cls(num_vertices, ids=np.unique(np.asarray(ids, dtype=np.int64)))

    @classmethod
    def empty(cls, num_vertices: int) -> "VertexSubset":
        return cls(num_vertices, ids=np.empty(0, dtype=np.int64))

    @property
    def is_dense(self) -> bool:
        return self._mask is not None

    def to_ids(self) -> np.ndarray:
        if self._ids is None:
            self._ids = np.flatnonzero(self._mask).astype(np.int64)
        return self._ids

    def to_mask(self) -> np.ndarray:
        if self._mask is None:
            mask = np.zeros(self.num_vertices, dtype=bool)
            mask[self._ids] = True
            self._mask = mask
        return self._mask

    def __len__(self) -> int:
        if self._ids is not None:
            return int(len(self._ids))
        return int(self._mask.sum())

    def __repr__(self) -> str:
        form = "dense" if self.is_dense else "sparse"
        return f"VertexSubset({len(self)} of {self.num_vertices}, {form})"


@dataclass
class EdgeMapResult:
    """Output frontier plus the work the edgeMap performed."""

    frontier: VertexSubset
    edges_traversed: int
    dense_mode: bool
    scanned_vertices: int
    duplicate_flag_ops: int


# An UpdateFn receives (sources, targets) for a block of edges and returns a
# bool array: True where the target should join the output frontier. It may
# mutate shared per-vertex state (that is the point of edgeMap).
UpdateFn = Callable[[np.ndarray, np.ndarray], np.ndarray]
CondFn = Callable[[np.ndarray], np.ndarray]


def edge_map(
    graph: "LigraGraph",
    frontier: VertexSubset,
    update: UpdateFn,
    cond: CondFn | None = None,
    *,
    dense_divisor: int = DENSE_DIVISOR,
) -> EdgeMapResult:
    """Ligra's edgeMap over the graph's *in*-edges of the frontier.

    (The local push propagates along in-edges; Ligra keeps both edge
    directions precisely so algorithms can pick. ``update`` plays the role
    of F, ``cond`` of C.)
    """
    csr = graph.in_csr
    ids = frontier.to_ids()
    if ids.size == 0:
        return EdgeMapResult(VertexSubset.empty(frontier.num_vertices), 0, False, 0, 0)
    frontier_edges = int(csr.in_degrees(ids).sum())
    threshold = max(1, csr.num_edges // dense_divisor)
    dense = (len(ids) + frontier_edges) > threshold

    src_pos, targets = csr.gather_in_edges(ids)
    sources = ids[src_pos]
    scanned = 0
    if cond is not None:
        keep = cond(targets)
        sources = sources[keep]
        targets = targets[keep]
    included = update(sources, targets)
    candidates = targets[included]

    flag_ops = 0
    if dense:
        # Dense mode builds the output as a mask: one scan over vertices,
        # no duplicate problem, but pays the full scan.
        scanned = csr.num_vertices
        mask = np.zeros(csr.num_vertices, dtype=bool)
        mask[candidates] = True
        out = VertexSubset(csr.num_vertices, mask=mask)
    else:
        # Sparse mode: removeDuplicates via a flags array (CAS per write).
        flag_ops = int(candidates.size)
        out = VertexSubset.from_ids(csr.num_vertices, candidates)
    return EdgeMapResult(
        frontier=out,
        edges_traversed=int(targets.size),
        dense_mode=dense,
        scanned_vertices=scanned,
        duplicate_flag_ops=flag_ops,
    )


def vertex_map(
    subset: VertexSubset,
    fn: Callable[[np.ndarray], None],
) -> int:
    """Apply ``fn`` to the subset's ids; returns vertices touched."""
    ids = subset.to_ids()
    if ids.size:
        fn(ids)
    return int(ids.size)


class LigraGraph:
    """Graph wrapper holding the snapshot view(s) edgeMap needs.

    Any object satisfying the narrow snapshot interface works — a frozen
    :class:`~repro.graph.csr.CSRGraph` or a delta overlay
    (:class:`~repro.graph.delta.DeltaCSRGraph`).
    """

    def __init__(self, in_csr: CSRView) -> None:
        self.in_csr = in_csr

    @property
    def num_vertices(self) -> int:
        return self.in_csr.num_vertices

    @property
    def num_edges(self) -> int:
        return self.in_csr.num_edges

    def __repr__(self) -> str:
        return f"LigraGraph(n={self.num_vertices}, m={self.num_edges})"
