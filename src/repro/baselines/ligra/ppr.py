"""Dynamic PPR implemented on the vertex-centric framework (the paper's
``Ligra`` baseline).

Expresses the batch parallel push with ``edgeMap``/``vertexMap`` only.
Being generic, the framework can express *snapshot* (Algorithm 3)
semantics but not the paper's application-specific optimizations:

* no eager propagation — edgeMap's bulk-synchronous contract hands the
  update function a fixed view of the frontier's values;
* no local duplicate detection — frontier output dedup goes through the
  framework's flags array / dense scan.

That gap is exactly what Section 5.3 measures when comparing ``Ligra``
against the specialized CPU-MT implementation.
"""

from __future__ import annotations

from ...obs import clock
from collections.abc import Sequence

import numpy as np

from ...config import Phase, PPRConfig
from ...core.invariant import restore_invariant
from ...core.state import PPRState
from ...core.stats import BatchStats, IterationRecord, PushStats, RestoreStats
from ...errors import ConvergenceError
from ...graph.csr import CSRGraph
from ...graph.digraph import DynamicDiGraph
from ...graph.update import EdgeUpdate
from .framework import LigraGraph, VertexSubset, edge_map, vertex_map


class LigraDynamicPPR:
    """Tracker-compatible dynamic PPR maintenance on the mini framework."""

    def __init__(
        self,
        graph: DynamicDiGraph,
        source: int,
        config: PPRConfig | None = None,
    ) -> None:
        self.config = config or PPRConfig()
        self.graph = graph
        if not graph.has_vertex(source):
            graph.add_vertex(source)
        self.state = PPRState.initial(source, graph.capacity)
        self.initial_stats = self._push([source])

    @property
    def source(self) -> int:
        return self.state.source

    def estimate(self, v: int) -> float:
        return self.state.estimate(v)

    # ------------------------------------------------------------------ #
    # the push, in vertex-centric clothing
    # ------------------------------------------------------------------ #

    def _phase(
        self,
        lgraph: LigraGraph,
        phase: Phase,
        seeds: Sequence[int],
        stats: PushStats,
    ) -> None:
        config = self.config
        epsilon = config.epsilon
        alpha = config.alpha
        state = self.state
        r = state.r
        dout = lgraph.in_csr.dout

        def exceeds(values: np.ndarray) -> np.ndarray:
            return values > epsilon if phase is Phase.POS else values < -epsilon

        seed_ids = np.unique(np.asarray(list(seeds), dtype=np.int64))
        seed_ids = seed_ids[exceeds(r[seed_ids])] if seed_ids.size else seed_ids
        frontier = VertexSubset.from_ids(lgraph.num_vertices, seed_ids)
        rounds = 0
        while len(frontier):
            rec = IterationRecord(phase=phase, frontier_size=len(frontier))
            weights = np.zeros(lgraph.num_vertices)

            def self_update(vertices: np.ndarray) -> None:
                w = r[vertices].copy()
                weights[vertices] = w
                state.p[vertices] += alpha * w
                r[vertices] = 0.0
                rec.residual_pushed += float(np.abs(w).sum())

            vertex_map(frontier, self_update)

            def propagate(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
                inc = (1.0 - alpha) * weights[sources] / dout[targets]
                np.add.at(r, targets, inc)
                rec.atomic_adds += int(targets.size)
                # F returns True for targets now over threshold; the
                # framework dedups (Algorithm-3-style UniqueEnqueue).
                return exceeds(r[targets])

            result = edge_map(lgraph, frontier, propagate)
            rec.edge_traversals += result.edges_traversed
            rec.enqueue_attempts += result.duplicate_flag_ops or len(
                result.frontier
            )
            rec.dedup_checks += result.duplicate_flag_ops
            # The framework returns every target that satisfied F at its
            # own update; keep only those still over threshold (dense mode
            # re-checks during its scan, mirroring Ligra's cond usage).
            out_ids = result.frontier.to_ids()
            out_ids = out_ids[exceeds(r[out_ids])] if out_ids.size else out_ids
            frontier = VertexSubset.from_ids(lgraph.num_vertices, out_ids)
            rec.enqueued = len(frontier)
            stats.record(rec)
            rounds += 1
            if rounds > config.max_iterations:
                raise ConvergenceError(rounds, state.residual_linf())

    def _push(self, seeds: Sequence[int]) -> BatchStats:
        batch = BatchStats()
        start = clock.now()
        csr = CSRGraph.from_digraph(self.graph)
        self.state.ensure_capacity(csr.num_vertices)
        lgraph = LigraGraph(csr)
        self._phase(lgraph, Phase.POS, seeds, batch.push)
        self._phase(lgraph, Phase.NEG, seeds, batch.push)
        batch.wall_time = clock.now() - start
        return batch

    def apply_batch(self, updates: Sequence[EdgeUpdate]) -> BatchStats:
        """Batch restore-invariant, then the vertex-centric push."""
        touched: list[int] = []
        change = 0.0
        for update in updates:
            self.graph.apply(update)
            delta = restore_invariant(self.state, self.graph, update, self.config.alpha)
            touched.append(update.u)
            change += abs(delta)
        batch = self._push(touched)
        batch.restore = RestoreStats(len(updates), change)
        return batch

    def __repr__(self) -> str:
        return f"LigraDynamicPPR(source={self.source}, n={self.graph.num_vertices})"
