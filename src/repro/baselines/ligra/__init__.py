"""Mini vertex-centric graph-processing framework (Ligra-style) baseline."""

from .framework import EdgeMapResult, LigraGraph, VertexSubset, edge_map, vertex_map
from .ppr import LigraDynamicPPR

__all__ = [
    "EdgeMapResult",
    "LigraDynamicPPR",
    "LigraGraph",
    "VertexSubset",
    "edge_map",
    "vertex_map",
]
