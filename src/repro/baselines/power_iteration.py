"""Power-iteration PPR (the paper's first related-work scheme).

Recomputes the full vector from scratch; every sweep costs ``Theta(m)``,
which is why the paper dismisses it for dynamic maintenance (Section 6).
Included as an additional ground-truth implementation and as the
from-scratch cost reference in ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..graph.csr import CSRGraph
from ..graph.digraph import DynamicDiGraph
from ..utils.validation import check_fraction


@dataclass(frozen=True)
class PowerIterationResult:
    """Solution vector plus the work performed."""

    vector: np.ndarray
    iterations: int
    edge_operations: int


def power_iteration_ppr(
    graph: DynamicDiGraph | CSRGraph,
    source: int,
    alpha: float,
    *,
    tol: float = 1e-12,
    max_iterations: int = 10_000,
) -> PowerIterationResult:
    """Iterate ``p <- alpha e_s + (1-alpha) D^{-1} A p`` to a fixpoint.

    Works on either graph representation. The in-CSR snapshot stores, for
    each vertex ``u``, its in-neighbors ``v`` (each edge ``v -> u``); the
    sweep scatters ``p[u] / dout(v)`` contributions onto ``v`` — the same
    linear operator the local push applies incrementally.
    """
    check_fraction("alpha", alpha)
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_digraph(graph)
    cap = max(csr.num_vertices, source + 1)
    # For each in-edge (v -> u) stored at position i: indices[i] = v and u is
    # the row. Build the row ids once for vectorized sweeps.
    rows = np.repeat(
        np.arange(csr.num_vertices, dtype=np.int64),
        np.diff(csr.indptr),
    )
    cols = csr.indices
    dout = csr.dout.astype(np.float64)
    safe_dout = np.where(dout > 0, dout, 1.0)

    e_s = np.zeros(cap)
    e_s[source] = alpha
    p = e_s.copy()
    edge_ops = 0
    for iteration in range(1, max_iterations + 1):
        # p_new[v] = alpha 1{v=s} + (1-alpha)/dout(v) * sum_{x in Nout(v)} p[x]
        contrib = p[rows] / safe_dout[cols]
        acc = np.bincount(cols, weights=contrib, minlength=cap)
        nxt = e_s + (1.0 - alpha) * acc
        edge_ops += len(cols)
        delta = float(np.abs(nxt - p).max())
        p = nxt
        if delta <= tol:
            return PowerIterationResult(p, iteration, edge_ops)
    raise ConvergenceError(max_iterations, delta)
