"""Baseline systems the paper evaluates against."""

from .ligra.framework import LigraGraph, VertexSubset, edge_map, vertex_map
from .ligra.ppr import LigraDynamicPPR
from .montecarlo import IncrementalMonteCarloPPR, MonteCarloStats
from .power_iteration import power_iteration_ppr

__all__ = [
    "IncrementalMonteCarloPPR",
    "LigraDynamicPPR",
    "LigraGraph",
    "MonteCarloStats",
    "VertexSubset",
    "edge_map",
    "power_iteration_ppr",
    "vertex_map",
]
