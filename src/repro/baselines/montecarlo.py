"""Incremental Monte-Carlo PPR (Bahmani, Chowdhury, Goel — the paper's
``Monte-Carlo`` baseline).

Semantics match the library's reverse/contribution PPR: the estimate of
``pi_v(s)`` is the fraction of decay-``alpha`` random walks *started at
v* that are absorbed at ``s``. Following the paper's setup, ``w = 6|V|``
total walks are maintained, i.e. ``walks_per_vertex = 6``.

Incremental maintenance keeps, per walk, its full trajectory, plus an
inverted index ``vertex -> walks that visit it``. When an edge update
changes ``dout(u)``, every walk through ``u`` is invalidated from its
first visit of ``u`` and re-simulated on the new graph — exactly the
bookkeeping whose cost the paper identifies as Monte-Carlo's bottleneck
(Section 5.3): trace storage, inverted-index updates, and re-walk steps.
All three are counted in :class:`MonteCarloStats` so the cost model can
price them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..graph.digraph import DynamicDiGraph
from ..graph.update import EdgeUpdate
from ..utils.rng import RngLike, ensure_rng


@dataclass
class MonteCarloStats:
    """Work counters for one maintenance batch (or initial build)."""

    walk_steps: int = 0
    index_ops: int = 0
    walks_regenerated: int = 0

    def merge(self, other: "MonteCarloStats") -> None:
        self.walk_steps += other.walk_steps
        self.index_ops += other.index_ops
        self.walks_regenerated += other.walks_regenerated


class _Walk:
    """One stored random walk: trajectory and absorption outcome."""

    __slots__ = ("start", "path", "absorbed_at")

    def __init__(self, start: int) -> None:
        self.start = start
        self.path: list[int] = []
        self.absorbed_at: int | None = None


class IncrementalMonteCarloPPR:
    """Maintain reverse-PPR estimates to ``source`` with stored walks.

    Parameters
    ----------
    graph:
        Initial graph; the estimator takes ownership (updates must go
        through :meth:`apply_batch`).
    source:
        The absorption target ``s``.
    alpha:
        Stop probability of the decay walk.
    walks_per_vertex:
        Walks maintained per start vertex (paper: ``w = 6 |V|`` total).
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        source: int,
        alpha: float = 0.15,
        *,
        walks_per_vertex: int = 6,
        rng: RngLike = None,
        max_walk_length: int = 10_000,
    ) -> None:
        if walks_per_vertex < 1:
            raise ConfigError(f"walks_per_vertex must be >= 1, got {walks_per_vertex}")
        if not 0.0 < alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
        self.graph = graph
        self.source = source
        self.alpha = alpha
        self.walks_per_vertex = walks_per_vertex
        self.max_walk_length = max_walk_length
        self._rng = ensure_rng(rng)
        self._walks: list[_Walk] = []
        self._index: dict[int, set[int]] = {}
        self._absorbed_count: dict[int, int] = {}
        if not graph.has_vertex(source):
            graph.add_vertex(source)
        self.initial_stats = MonteCarloStats()
        for v in list(graph.vertices()):
            self._create_walks(v, self.initial_stats)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def estimate(self, v: int) -> float:
        """Estimated ``pi_v(s)``: fraction of ``v``'s walks absorbed at s."""
        if not self.graph.has_vertex(v):
            return 0.0
        return self._absorbed_count.get(v, 0) / self.walks_per_vertex

    def estimate_vector(self) -> np.ndarray:
        out = np.zeros(self.graph.capacity)
        for v, count in self._absorbed_count.items():
            out[v] = count / self.walks_per_vertex
        return out

    @property
    def num_walks(self) -> int:
        return len(self._walks)

    def index_size(self) -> int:
        """Total inverted-index entries (the memory the paper highlights)."""
        return sum(len(s) for s in self._index.values())

    # ------------------------------------------------------------------ #
    # walk simulation
    # ------------------------------------------------------------------ #

    def _choose_out_neighbor(self, u: int) -> int | None:
        dout = self.graph.out_degree(u)
        if dout == 0:
            return None
        pick = int(self._rng.integers(0, dout))
        for v, mult in self.graph.out_neighbors(u):
            pick -= mult
            if pick < 0:
                return v
        raise AssertionError("out-degree bookkeeping out of sync")

    def _extend(self, walk: _Walk, walk_id: int, current: int, stats: MonteCarloStats) -> None:
        """Simulate from ``current`` until absorption/death; record trace."""
        while True:
            walk.path.append(current)
            visits = self._index.setdefault(current, set())
            if walk_id not in visits:
                visits.add(walk_id)
                stats.index_ops += 1
            stats.walk_steps += 1
            if len(walk.path) > self.max_walk_length:  # pragma: no cover - guard
                walk.absorbed_at = None
                return
            if self._rng.random() < self.alpha:
                walk.absorbed_at = current
                return
            nxt = self._choose_out_neighbor(current)
            if nxt is None:
                walk.absorbed_at = None  # died at a dangling vertex
                return
            current = nxt

    def _set_absorbed(self, walk: _Walk, delta: int) -> None:
        if walk.absorbed_at == self.source:
            start = walk.start
            self._absorbed_count[start] = self._absorbed_count.get(start, 0) + delta
            if self._absorbed_count[start] == 0:
                del self._absorbed_count[start]

    def _create_walks(self, v: int, stats: MonteCarloStats) -> None:
        for _ in range(self.walks_per_vertex):
            walk = _Walk(v)
            walk_id = len(self._walks)
            self._walks.append(walk)
            self._extend(walk, walk_id, v, stats)
            self._set_absorbed(walk, +1)

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #

    def _regenerate_through(self, u: int, stats: MonteCarloStats) -> None:
        """Re-simulate every stored walk visiting ``u`` from its first visit."""
        affected = list(self._index.get(u, ()))
        for walk_id in affected:
            walk = self._walks[walk_id]
            try:
                cut = walk.path.index(u)
            except ValueError:  # pragma: no cover - index out of sync
                continue
            self._set_absorbed(walk, -1)
            # Remove the dropped suffix from the inverted index (entries for
            # vertices that no longer appear in the prefix).
            suffix = walk.path[cut:]
            prefix = walk.path[:cut]
            prefix_set = set(prefix)
            for vertex in set(suffix) - prefix_set:
                self._index[vertex].discard(walk_id)
                stats.index_ops += 1
            walk.path = prefix
            self._extend(walk, walk_id, u, stats)
            self._set_absorbed(walk, +1)
            stats.walks_regenerated += 1

    def apply_batch(self, updates: Sequence[EdgeUpdate]) -> MonteCarloStats:
        """Apply edge updates and repair all affected walks."""
        stats = MonteCarloStats()
        for update in updates:
            known_u = self.graph.has_vertex(update.u)
            known_v = self.graph.has_vertex(update.v)
            self.graph.apply(update)
            if not known_u:
                self._create_walks(update.u, stats)
            if not known_v:
                self._create_walks(update.v, stats)
            # dout(u) changed: every walk through u took its next hop from a
            # distribution that no longer exists.
            self._regenerate_through(update.u, stats)
        return stats

    def __repr__(self) -> str:
        return (
            f"IncrementalMonteCarloPPR(source={self.source},"
            f" walks={len(self._walks)}, index={self.index_size()})"
        )
