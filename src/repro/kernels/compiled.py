"""ctypes bindings and the phase driver for the compiled push backend.

:func:`compiled_phase` mirrors :func:`repro.core.push_vectorized.vectorized_phase`
iteration for iteration. The C kernel (``_push.c``) only does neighbor
propagation and next-frontier candidate emission; everything numpy computes
with array *reductions* — the frontier self-updates ``p += alpha*w`` /
``r -= w``, the ``residual_pushed`` mass sums, the eager second pass — stays
in numpy here so summation order (and therefore every bit of the result)
matches the oracle. See the header comment of ``_push.c`` for the full
bit-identity contract.
"""

from __future__ import annotations

import ctypes
import threading
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from ..config import Phase, PPRConfig
from ..core.push_vectorized import _BINCOUNT_THRESHOLD, _exceeds, _prepare_seeds
from ..core.state import PPRState
from ..core.stats import IterationRecord, PushStats
from ..errors import ConvergenceError
from .build import ABI_VERSION

_I64 = ctypes.c_int64
_F64 = ctypes.c_double
_PTR = ctypes.c_void_p

#: repro_push_iteration's exact parameter list; keep in lockstep with _push.c.
_ARGTYPES = [
    _PTR,  # r
    _I64,  # rcap
    _I64,  # nrows
    _PTR,  # row_start
    _PTR,  # row_count
    _PTR,  # row_overlay
    _PTR,  # base_indices
    _PTR,  # overlay_indices
    _PTR,  # dout
    _PTR,  # frontier
    _I64,  # frontier_len
    _F64,  # one_minus_alpha
    _F64,  # epsilon
    _F64,  # sign
    _I64,  # eager
    _I64,  # local_detect
    _I64,  # chunk_width
    _I64,  # bincount_threshold
    _PTR,  # weights
    _PTR,  # touch_stamp
    _PTR,  # before_val
    _PTR,  # dense_acc
    _PTR,  # enqueued_mask
    _PTR,  # current_mask
    _PTR,  # touched_buf
    _PTR,  # out_next
    _PTR,  # counters
    _PTR,  # token_io
]


class KernelLibrary:
    """One loaded ``_push`` shared library."""

    def __init__(self, path: Path) -> None:
        self.path = path
        cdll = ctypes.CDLL(str(path))
        cdll.repro_kernel_abi.restype = _I64
        cdll.repro_kernel_abi.argtypes = []
        abi = int(cdll.repro_kernel_abi())
        if abi != ABI_VERSION:
            raise OSError(
                f"kernel ABI mismatch: library {path} is v{abi},"
                f" expected v{ABI_VERSION}"
            )
        cdll.repro_push_iteration.restype = _I64
        cdll.repro_push_iteration.argtypes = _ARGTYPES
        self._iteration = cdll.repro_push_iteration


class _Scratch:
    """Process-wide reusable kernel buffers, grown monotonically.

    ``touch_stamp`` + ``token`` implement first-touch detection without
    per-chunk clearing; the other buffers are maintained all-zero by the
    kernel itself (it re-clears exactly the entries it set). One scratch
    per process is enough: engines run a push under the service lock, and
    the multiprocess backend forks workers with their own copy.
    """

    __slots__ = (
        "cap",
        "token",
        "counters",
        "touch_stamp",
        "before_val",
        "dense_acc",
        "enqueued_mask",
        "current_mask",
        "touched_buf",
        "out_next",
        "lock",
    )

    def __init__(self) -> None:
        self.cap = 0
        self.token = np.zeros(1, dtype=np.int64)
        self.counters = np.zeros(4, dtype=np.int64)
        self.lock = threading.Lock()

    def ensure(self, rcap: int) -> None:
        if rcap <= self.cap:
            return
        cap = max(rcap, 2 * self.cap)
        self.touch_stamp = np.full(cap, -1, dtype=np.int64)
        self.before_val = np.empty(cap, dtype=np.float64)
        self.dense_acc = np.zeros(cap, dtype=np.float64)
        self.enqueued_mask = np.zeros(cap, dtype=np.uint8)
        self.current_mask = np.zeros(cap, dtype=np.uint8)
        self.touched_buf = np.empty(cap, dtype=np.int64)
        self.out_next = np.empty(cap, dtype=np.int64)
        self.cap = cap


_SCRATCH = _Scratch()


def _run_iteration(
    lib: KernelLibrary,
    scratch: _Scratch,
    r: np.ndarray,
    ka: dict,
    frontier: np.ndarray,
    weights: np.ndarray,
    *,
    one_minus_alpha: float,
    epsilon: float,
    sign: float,
    eager: bool,
    local_detect: bool,
    chunk_width: int,
) -> int:
    return int(
        lib._iteration(
            r.ctypes.data,
            len(r),
            ka["num_rows"],
            ka["row_start"].ctypes.data,
            ka["row_count"].ctypes.data,
            ka["row_overlay"].ctypes.data,
            ka["base_indices"].ctypes.data,
            ka["overlay_indices"].ctypes.data,
            ka["dout"].ctypes.data,
            frontier.ctypes.data,
            len(frontier),
            one_minus_alpha,
            epsilon,
            sign,
            1 if eager else 0,
            1 if local_detect else 0,
            chunk_width,
            _BINCOUNT_THRESHOLD,
            weights.ctypes.data,
            scratch.touch_stamp.ctypes.data,
            scratch.before_val.ctypes.data,
            scratch.dense_acc.ctypes.data,
            scratch.enqueued_mask.ctypes.data,
            scratch.current_mask.ctypes.data,
            scratch.touched_buf.ctypes.data,
            scratch.out_next.ctypes.data,
            scratch.counters.ctypes.data,
            scratch.token.ctypes.data,
        )
    )


def compiled_phase(
    lib: KernelLibrary,
    state: PPRState,
    ka: dict,
    phase: Phase,
    config: PPRConfig,
    seeds: Iterable[int] | None,
    stats: PushStats,
) -> bool:
    """Run one sign phase through the compiled kernel to exhaustion.

    Returns ``False`` (without touching any state) when the prepared
    frontier contains ids outside the kernel arrays — the caller then runs
    the numpy oracle for this phase instead.
    """
    epsilon = config.epsilon
    alpha = config.alpha
    one_minus_alpha = 1.0 - alpha
    sign = 1.0 if phase is Phase.POS else -1.0
    eager = config.variant.eager
    local_detect = config.variant.local_duplicate_detection
    nrows = ka["num_rows"]

    frontier = _prepare_seeds(state, phase, epsilon, seeds)
    # _prepare_seeds output is sorted ascending; later frontiers only hold
    # in-neighbors (< nrows) and reactivated frontier members.
    if frontier.size and int(frontier[-1]) >= nrows:
        return False

    scratch = _SCRATCH
    with scratch.lock:
        counters = scratch.counters
        rounds = 0
        while frontier.size:
            r = state.r
            scratch.ensure(len(r))
            frontier = np.ascontiguousarray(frontier, dtype=np.int64)
            rec = IterationRecord(phase=phase, frontier_size=int(frontier.size))
            counters[:] = 0
            if eager:
                consistent = np.empty(len(frontier), dtype=np.float64)
                n_out = _run_iteration(
                    lib,
                    scratch,
                    r,
                    ka,
                    frontier,
                    consistent,
                    one_minus_alpha=one_minus_alpha,
                    epsilon=epsilon,
                    sign=sign,
                    eager=True,
                    local_detect=local_detect,
                    chunk_width=config.workers,
                )
                candidates = scratch.out_next[:n_out].copy()
                # Session 2 — self-update with the consistent values.
                state.p[frontier] += alpha * consistent
                r[frontier] -= consistent
                rec.residual_pushed += float(np.abs(consistent).sum())
                reactivated = frontier[_exceeds(r[frontier], phase, epsilon)]
                rec.second_pass_enqueued = int(reactivated.size)
                pieces = [a for a in (candidates, reactivated) if a.size]
                if pieces:
                    new = np.concatenate(pieces)
                    rec.enqueued = int(new.size)
                    frontier = np.sort(new)
                else:
                    rec.enqueued = 0
                    frontier = np.empty(0, dtype=np.int64)
            else:
                weights = r[frontier].copy()
                state.p[frontier] += alpha * weights
                r[frontier] = 0.0
                rec.residual_pushed += float(np.abs(weights).sum())
                n_out = _run_iteration(
                    lib,
                    scratch,
                    r,
                    ka,
                    frontier,
                    weights,
                    one_minus_alpha=one_minus_alpha,
                    epsilon=epsilon,
                    sign=sign,
                    eager=False,
                    local_detect=local_detect,
                    chunk_width=max(int(frontier.size), 1),
                )
                new = scratch.out_next[:n_out].copy()
                rec.enqueued = int(new.size)
                frontier = np.sort(new)
            rec.edge_traversals += int(counters[0])
            rec.atomic_adds += int(counters[1])
            rec.enqueue_attempts += int(counters[2])
            rec.dedup_checks += int(counters[3])
            stats.record(rec)
            rounds += 1
            if rounds > config.max_iterations:
                raise ConvergenceError(rounds, state.residual_linf())
    return True
