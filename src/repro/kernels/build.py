"""On-demand build of the compiled push kernel.

The kernel is a single C file (``_push.c``) with no dependencies beyond a
C compiler, so instead of a build-time extension (which would make
``pip install`` require a toolchain) it is compiled lazily on first use
and cached as a shared library keyed by the SHA-256 of (source, compiler,
flags). Hosts without a compiler simply never get a library — the caller
falls back to the numpy engine, which is the correctness oracle anyway.

Environment knobs:

``REPRO_KERNEL_CC``
    Compiler executable (default: first of ``cc``, ``gcc``, ``clang`` on
    ``PATH``).
``REPRO_KERNEL_CACHE``
    Directory holding built libraries (default:
    ``$XDG_CACHE_HOME/repro-kernels`` or ``~/.cache/repro-kernels``).

``-ffp-contract=off`` is load-bearing: a fused multiply-add rounds once
where the numpy oracle rounds twice, and the whole point of the compiled
backend is bit-identical answers (see ``docs/performance.md``).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

SOURCE = Path(__file__).with_name("_push.c")

#: No -ffast-math, no contraction: bit-identity beats the last few percent.
CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")

#: Bumped when the C signature changes; baked into the cache key.
ABI_VERSION = 1


class KernelBuildError(RuntimeError):
    """Raised internally when the kernel cannot be built; never escapes
    :func:`build_library` (callers get ``None`` + reason instead)."""


def find_compiler() -> str | None:
    """The C compiler to use, or ``None`` when the host has none."""
    override = os.environ.get("REPRO_KERNEL_CC")
    if override:
        return shutil.which(override) or (
            override if os.path.exists(override) else None
        )
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def _cache_key(source: bytes, compiler: str) -> str:
    digest = hashlib.sha256()
    digest.update(source)
    digest.update(compiler.encode())
    digest.update(" ".join(CFLAGS).encode())
    digest.update(f"abi={ABI_VERSION}".encode())
    return digest.hexdigest()[:24]


def build_library() -> tuple[Path | None, str]:
    """Build (or reuse) the kernel library.

    Returns ``(path, reason)``: ``path`` is the shared library, or ``None``
    with a human-readable reason (no compiler, compile failure, missing
    source). Never raises — an unbuildable kernel is a supported
    configuration, not an error.
    """
    if not SOURCE.exists():  # pragma: no cover - packaging bug guard
        return None, f"kernel source missing: {SOURCE}"
    compiler = find_compiler()
    if compiler is None:
        return None, "no C compiler on PATH (set REPRO_KERNEL_CC to override)"
    source = SOURCE.read_bytes()
    target = cache_dir() / f"push-{_cache_key(source, compiler)}.so"
    if target.exists():
        return target, f"cached ({target})"
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            suffix=".so", prefix="push-build-", dir=str(target.parent)
        )
        os.close(fd)
        cmd = [compiler, *CFLAGS, str(SOURCE), "-o", tmp]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            os.unlink(tmp)
            detail = (proc.stderr or proc.stdout or "").strip()[:400]
            return None, f"compile failed ({' '.join(cmd)}): {detail}"
        os.replace(tmp, target)  # atomic: concurrent builders race safely
    except OSError as exc:
        return None, f"kernel build I/O error: {exc}"
    except subprocess.TimeoutExpired:
        return None, "kernel compile timed out"
    return target, f"built with {compiler}"
