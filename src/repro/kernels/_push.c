/* Compiled forward-push kernel: one frontier iteration per call.
 *
 * This is the scalar-C twin of repro/core/push_vectorized.py. It must stay
 * BIT-IDENTICAL to the numpy engine, which constrains every line:
 *
 *  - increments are computed per edge as (one_minus_alpha * w) / (double)dout
 *    -- two rounding steps in that exact order, like numpy's
 *    `(1.0 - alpha) * weights[src_idx] / dout[targets]`;
 *  - the accumulation branch mirrors _scatter_add's crossover: a chunk with
 *    more edge traversals than max(bincount_threshold, rcap) accumulates into
 *    a zeroed dense buffer and then adds the WHOLE buffer back (numpy's
 *    `r += np.bincount(...)` adds +0.0 to every untouched slot, normalizing
 *    -0.0 residuals to +0.0 -- the full-capacity loop reproduces that);
 *    smaller chunks fold each increment straight into r in edge order,
 *    matching unbuffered np.add.at;
 *  - "before" values are captured at a vertex's first touch within a chunk,
 *    which is the value numpy snapshots for the whole chunk (no add can have
 *    reached the vertex earlier in the same chunk);
 *  - compile with -ffp-contract=off: a fused multiply-add would round once
 *    where numpy rounds twice.
 *
 * The caller (repro/kernels/compiled.py) keeps every side effect that numpy
 * computes with array reductions -- p/r frontier self-updates, residual-mass
 * sums, the second eager pass -- in numpy, so summation order there is
 * untouched. The kernel only propagates increments and emits next-frontier
 * candidates; candidate ORDER may differ from numpy (first-touch vs sorted),
 * which is erased by the caller's np.sort, exactly as in the numpy engine.
 *
 * Scratch contract: touch_stamp persists across calls (init -1, paired with
 * the monotone token in token_io); dense_acc, enqueued_mask and current_mask
 * must be all-zero at entry and are re-zeroed before returning (O(touched),
 * not O(capacity)).
 */

#include <stdint.h>

#define REPRO_KERNEL_ABI 1

int64_t repro_kernel_abi(void) { return REPRO_KERNEL_ABI; }

/* The paper's pushCond for both phases: sign=+1 tests v > eps (POS),
 * sign=-1 tests v < -eps (NEG). Multiplying by +-1.0 is exact. */
static int pushes(double value, double sign, double epsilon) {
    return sign * value > epsilon;
}

int64_t repro_push_iteration(
    double *r,
    int64_t rcap,
    int64_t nrows,
    const int64_t *row_start,
    const int64_t *row_count,
    const uint8_t *row_overlay,
    const int64_t *base_indices,
    const int64_t *overlay_indices,
    const int64_t *dout,
    const int64_t *frontier,
    int64_t frontier_len,
    double one_minus_alpha,
    double epsilon,
    double sign,
    int64_t eager,
    int64_t local_detect,
    int64_t chunk_width,
    int64_t bincount_threshold,
    double *weights,        /* [frontier_len] in (snapshot) / out (eager) */
    int64_t *touch_stamp,   /* [rcap] persistent, init -1 */
    double *before_val,     /* [rcap] */
    double *dense_acc,      /* [rcap] all zeros at entry and exit */
    uint8_t *enqueued_mask, /* [rcap] zeros at entry and exit */
    uint8_t *current_mask,  /* [rcap] zeros at entry and exit */
    int64_t *touched_buf,   /* [rcap] */
    int64_t *out_next,      /* [rcap] next-frontier candidates (unsorted) */
    int64_t *counters,      /* [4] traversals, adds, attempts, dedup checks */
    int64_t *token_io       /* [1] persistent monotone chunk token */
) {
    int64_t n_out = 0;
    int use_current = (eager != 0) && (local_detect == 0);
    int64_t dense_floor = bincount_threshold > rcap ? bincount_threshold : rcap;
    int64_t start, i, j, k;

    if (chunk_width < 1) chunk_width = 1;
    if (use_current) {
        for (i = 0; i < frontier_len; i++) current_mask[frontier[i]] = 1;
    }

    for (start = 0; start < frontier_len; start += chunk_width) {
        int64_t len = frontier_len - start;
        const int64_t *chunk = frontier + start;
        double *w = weights + start;
        int64_t chunk_edges = 0;
        int64_t ntouched = 0;
        int64_t attempts = 0;
        int64_t tok;
        int use_dense;

        if (len > chunk_width) len = chunk_width;
        if (eager) { /* chunk-wide simultaneous reads (Algorithm 4) */
            for (i = 0; i < len; i++) w[i] = r[chunk[i]];
        }
        for (i = 0; i < len; i++) {
            if (chunk[i] < nrows) chunk_edges += row_count[chunk[i]];
        }
        if (chunk_edges == 0) continue;

        tok = ++token_io[0];
        use_dense = chunk_edges > dense_floor;
        for (i = 0; i < len; i++) {
            int64_t f = chunk[i];
            int64_t cnt;
            const int64_t *idx;
            double scaled;
            if (f >= nrows) continue;
            cnt = row_count[f];
            if (cnt == 0) continue;
            idx = (row_overlay[f] ? overlay_indices : base_indices) + row_start[f];
            scaled = one_minus_alpha * w[i];
            for (j = 0; j < cnt; j++) {
                int64_t t = idx[j];
                double inc = scaled / (double)dout[t];
                if (touch_stamp[t] != tok) {
                    touch_stamp[t] = tok;
                    before_val[t] = r[t];
                    touched_buf[ntouched++] = t;
                }
                if (use_dense) {
                    dense_acc[t] += inc;
                } else {
                    r[t] += inc;
                }
            }
        }
        if (use_dense) {
            for (i = 0; i < rcap; i++) r[i] += dense_acc[i];
            for (k = 0; k < ntouched; k++) dense_acc[touched_buf[k]] = 0.0;
        }
        counters[0] += chunk_edges;
        counters[1] += chunk_edges;

        /* Attempts: adds landing on vertices whose post-chunk value passes
         * (the numpy engine's documented accounting approximation). */
        for (i = 0; i < len; i++) {
            int64_t f = chunk[i];
            int64_t cnt;
            const int64_t *idx;
            if (f >= nrows) continue;
            cnt = row_count[f];
            idx = (row_overlay[f] ? overlay_indices : base_indices) + row_start[f];
            for (j = 0; j < cnt; j++) {
                if (pushes(r[idx[j]], sign, epsilon)) attempts++;
            }
        }
        counters[2] += attempts;

        if (local_detect) {
            /* Monotonicity within a phase: the threshold crossing is seen
             * by exactly one chunk, so emissions are disjoint across
             * chunks and n_out never exceeds rcap. */
            for (k = 0; k < ntouched; k++) {
                int64_t t = touched_buf[k];
                if (!pushes(before_val[t], sign, epsilon) &&
                    pushes(r[t], sign, epsilon)) {
                    out_next[n_out++] = t;
                }
            }
        } else {
            counters[3] += attempts;
            for (k = 0; k < ntouched; k++) {
                int64_t t = touched_buf[k];
                if (!pushes(r[t], sign, epsilon)) continue;
                if (use_current && current_mask[t]) continue;
                if (enqueued_mask[t]) continue;
                enqueued_mask[t] = 1;
                out_next[n_out++] = t;
            }
        }
    }

    if (use_current) {
        for (i = 0; i < frontier_len; i++) current_mask[frontier[i]] = 0;
    }
    if (!local_detect) {
        for (k = 0; k < n_out; k++) enqueued_mask[out_next[k]] = 0;
    }
    return n_out;
}
