"""Runtime-selected push kernels: compiled C fast path, numpy oracle.

Every push engine that runs on CSR arrays (``Backend.NUMPY``) routes its
per-phase loop through :func:`kernel_phase`, which picks between

* the **compiled** kernel — ``_push.c`` built on demand (:mod:`.build`)
  and driven through ctypes (:mod:`.compiled`); and
* the **numpy** kernel — :func:`repro.core.push_vectorized.vectorized_phase`,
  the always-available correctness oracle.

Selection comes from ``PPRConfig.kernel`` when set, else the
``REPRO_KERNEL`` environment variable (``compiled|numpy|auto``; default
``auto``). The two are bit-identical by contract — ``auto`` is safe to
leave on everywhere — and CI runs differential property tests
(``tests/test_kernel_properties.py``) to keep them that way.

Views the compiled kernel cannot address at all (e.g. the sharded tier's
distributed views, which fetch remote rows mid-push) fall back to numpy
per push even under ``REPRO_KERNEL=compiled``; *unavailability* of the
compiled kernel (no compiler, build failure) under ``compiled`` raises
:class:`~repro.errors.BackendError` instead.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..config import KernelConfig, KernelMode, Phase, PPRConfig
from ..core.push_vectorized import vectorized_phase
from ..core.state import PPRState
from ..core.stats import PushStats
from ..errors import BackendError
from ..graph.delta import CSRView
from .build import build_library
from .compiled import KernelLibrary, compiled_phase

__all__ = [
    "describe",
    "kernel_phase",
    "load_library",
    "reset",
    "selected_backend",
]

#: (compiler, cache_dir) -> (KernelLibrary | None, reason). Process-wide:
#: the build is content-addressed, so one entry per toolchain is enough.
_LIBRARIES: dict[tuple[str | None, str | None], tuple[KernelLibrary | None, str]] = {}


def reset() -> None:
    """Forget cached load results (tests flip env vars between cases)."""
    _LIBRARIES.clear()


def load_library(
    kernel: KernelConfig | None = None,
) -> tuple[KernelLibrary | None, str]:
    """Build/load the compiled kernel once per process.

    Returns ``(library, reason)``; ``library`` is ``None`` when the host
    cannot provide one (the reason says why). Never raises.
    """
    kernel = kernel or KernelConfig()
    key = (kernel.compiler, kernel.cache_dir)
    cached = _LIBRARIES.get(key)
    if cached is not None:
        return cached
    import os

    overrides = {}
    if kernel.compiler is not None:
        overrides["REPRO_KERNEL_CC"] = kernel.compiler
    if kernel.cache_dir is not None:
        overrides["REPRO_KERNEL_CACHE"] = kernel.cache_dir
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)
    try:
        path, reason = build_library()
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    library: KernelLibrary | None = None
    if path is not None:
        try:
            library = KernelLibrary(path)
        except OSError as exc:
            library, reason = None, f"load failed: {exc}"
    _LIBRARIES[key] = (library, reason)
    return library, reason


def _kernel_config(config: PPRConfig | None) -> KernelConfig:
    if config is not None and config.kernel is not None:
        return config.kernel
    return KernelConfig.from_env()


def selected_backend(config: PPRConfig | None = None) -> tuple[str, str]:
    """The kernel this process would run: ``("compiled"|"numpy", reason)``.

    Raises :class:`BackendError` when the selection *forces* the compiled
    kernel and none is available.
    """
    kernel = _kernel_config(config)
    if kernel.mode is KernelMode.NUMPY:
        return "numpy", "forced by configuration"
    library, reason = load_library(kernel)
    if library is not None:
        return "compiled", reason
    if kernel.mode is KernelMode.COMPILED:
        raise BackendError(
            f"REPRO_KERNEL=compiled but the kernel is unavailable: {reason}"
        )
    return "numpy", f"fallback: {reason}"


def describe(config: PPRConfig | None = None) -> dict[str, str]:
    """Selection summary for smoke scripts and ``repro kernel-bench``."""
    kernel = _kernel_config(config)
    try:
        backend, reason = selected_backend(config)
    except BackendError as exc:
        backend, reason = "unavailable", str(exc)
    return {"mode": kernel.mode.value, "backend": backend, "reason": reason}


def kernel_phase(
    state: PPRState,
    csr: CSRView,
    phase: Phase,
    config: PPRConfig,
    seeds: Iterable[int] | None,
    stats: PushStats,
) -> str:
    """Run one sign phase through the selected kernel; returns the one used."""
    kernel = _kernel_config(config)
    if kernel.mode is not KernelMode.NUMPY:
        library, reason = load_library(kernel)
        if library is None:
            if kernel.mode is KernelMode.COMPILED:
                raise BackendError(
                    f"REPRO_KERNEL=compiled but the kernel is unavailable: {reason}"
                )
        elif getattr(csr, "prefetch_rows", None) is None:
            arrays = getattr(csr, "kernel_arrays", None)
            if arrays is not None and compiled_phase(
                library, state, arrays(), phase, config, seeds, stats
            ):
                return "compiled"
    vectorized_phase(state, csr, phase, config, seeds, stats)
    return "numpy"
