"""The shared request-scheduling policy of every gateway front door.

:meth:`repro.api.gateway.Gateway.submit_many` and
:meth:`repro.cluster.gateway.ClusterGateway.submit_many` must agree on
*when* requests may be reordered or merged — writes are barriers, and
only maximal runs of same-shaped top-k reads between them coalesce into
one batched engine call. This module is that policy, extracted so the
single-process and replicated schedulers share one implementation
instead of drifting apart:

* :func:`plan_schedule` — turn a request sequence into an ordered list
  of :class:`Single` / :class:`ReadRun` steps (pure, no engine access);
* :func:`scatter_run_results` — fan a coalesced batch's per-source
  results back out to every request position, replaying the cold-flag
  semantics per-request dispatch would have produced;
* :func:`fail_run` — shape one batch failure into per-position typed
  failures.

The plan is deterministic: two gateways given the same request sequence
and the same ``(coalesce, max_batch)`` knobs produce identical steps,
which is what lets the cluster benchmark assert bit-identical answers
across the single-process and replicated schedulers.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Mapping, Union

from .requests import ApiRequest, Deadline, TopKQuery
from .responses import ApiResponse, ErrorInfo, TopKResult


@dataclass(frozen=True)
class Single:
    """One request executed at its arrival position (writes always are)."""

    position: int


@dataclass(frozen=True)
class ReadRun:
    """A maximal coalescible run of top-k reads between two barriers.

    ``positions`` are the run's request indices in arrival order;
    ``sources`` the deduplicated source ids in first-occurrence order —
    one batched engine call over ``sources`` answers every position.
    """

    positions: tuple[int, ...]
    sources: tuple[int, ...]
    #: Tightest member deadline — the coalesced batch must honour the most
    #: impatient request it answers. Excluded from equality so plans with
    #: and without deadlines compare by shape.
    deadline: Deadline | None = field(default=None, compare=False, repr=False)

    @property
    def coalesced(self) -> int:
        """Requests answered without their own engine call (duplicates)."""
        return len(self.positions) - len(self.sources)


ScheduleStep = Union[Single, ReadRun]


def plan_schedule(
    requests: Sequence[ApiRequest], *, coalesce: bool, max_batch: int
) -> list[ScheduleStep]:
    """Plan a request sequence into ordered schedule steps.

    Writes (:attr:`~repro.api.requests.ApiRequest.is_write`) and
    non-top-k reads become :class:`Single` steps at their arrival
    position. With ``coalesce`` on, maximal runs of
    :class:`~repro.api.requests.TopKQuery` sharing ``(k, consistency)``
    become :class:`ReadRun` steps — a run closes once it holds
    ``max_batch`` *unique* sources (duplicates inside the run never
    count against the cap). A run of length one degenerates to
    ``Single`` so the executor's per-request path keeps serving the
    common case.
    """
    steps: list[ScheduleStep] = []
    i = 0
    while i < len(requests):
        request = requests[i]
        if coalesce and isinstance(request, TopKQuery):
            group = [i]
            unique: dict[int, None] = {request.source: None}
            j = i + 1
            while (
                j < len(requests)
                and isinstance(requests[j], TopKQuery)
                and requests[j].k == request.k
                and requests[j].consistency == request.consistency
                and len(unique) < max_batch
            ):
                unique.setdefault(requests[j].source, None)
                group.append(j)
                j += 1
            if len(group) > 1:
                steps.append(
                    ReadRun(
                        tuple(group),
                        tuple(unique),
                        deadline=Deadline.tightest(
                            [requests[p].deadline for p in group]
                        ),
                    )
                )
                i = j
                continue
        steps.append(Single(i))
        i += 1
    return steps


def scatter_run_results(
    requests: Sequence[ApiRequest],
    run: ReadRun,
    by_source: Mapping[int, TopKResult],
    responses: list[ApiResponse | None],
) -> None:
    """Fan one coalesced batch's per-source results back to positions.

    Duplicate occurrences of a cold source are rewritten as cache hits —
    per-request dispatch would have admitted on the first occurrence
    only, and with the scheduler's lock held there is no intervening
    write, so the duplicate answers are exactly the ones per-request
    dispatch would have produced.
    """
    seen: set[int] = set()
    for position in run.positions:
        request = requests[position]
        assert isinstance(request, TopKQuery)
        result = by_source[request.source]
        if request.source in seen and result.cold:
            served = (
                dc_replace(result.served, cold=False)
                if result.served is not None
                else None
            )
            result = dc_replace(result, cold=False, served=served)
        seen.add(request.source)
        responses[position] = result


def fail_run(
    requests: Sequence[ApiRequest],
    run: ReadRun,
    error: ErrorInfo,
    snapshot_version: int,
    responses: list[ApiResponse | None],
) -> None:
    """Shape one batch failure into a typed failure per run position."""
    for position in run.positions:
        request = requests[position]
        assert isinstance(request, TopKQuery)
        responses[position] = TopKResult.failure(
            error,
            snapshot_version=snapshot_version,
            source=request.source,
        )
