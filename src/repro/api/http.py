"""Stdlib HTTP/JSON front-end for the gateway (``repro serve``).

A thin :mod:`http.server`-based adapter — no third-party web framework —
mapping routes onto the typed protocol:

========  =============== =================================================
method    route           operation
========  =============== =================================================
``POST``  ``/v1/query``   one request object, or ``{"requests": [...]}``
                          for a scheduled (read-coalesced) sequence
``POST``  ``/v1/ingest``  an :class:`~repro.api.requests.IngestBatch`
``GET``   ``/v1/stats``   structured metrics
``GET``   ``/v1/metrics`` Prometheus text exposition of the same stats
``GET``   ``/v1/healthz`` liveness probe (200 while the process serves)
``GET``   ``/v1/readyz``  readiness probe (503 while degraded/failing over)
``GET``   ``/v1/trace/<id>`` spans of one sampled trace (:mod:`repro.obs`)
``GET``   ``/v1/slow``    slow-query log (``?threshold_ms=`` re-filters)
========  =============== =================================================

With tracing enabled (``ObsConfig.enabled``), sampled requests mint
their trace at this front door: the response JSON carries ``trace_id``
(also sent as an ``X-Trace-Id`` header), which keys ``/v1/trace/<id>``.

Bodies and responses are the ``to_dict`` forms of the request/response
dataclasses, so the wire protocol is exactly the embedded one — an HTTP
answer is bit-identical JSON to the embedded client's ``to_dict()`` for
the same snapshot version (floats serialize via ``repr``, the shortest
round-trip form). Error codes map onto HTTP statuses (``REQUEST`` → 400,
``VERTEX``/``EDGE`` → 404, ``CONFLICT`` → 409, …); unknown routes and
malformed JSON come back as the same structured error envelope.

The server is a :class:`~http.server.ThreadingHTTPServer`; the gateway's
internal lock serializes engine access across worker threads.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.error import HTTPError
from urllib.parse import parse_qs, urlencode, urlsplit
from urllib.request import Request, urlopen

from .. import obs
from ..errors import ReproError, RequestError
from .gateway import Gateway
from .metrics import render_prometheus
from .requests import Health, IngestBatch, Ready, Stats, request_from_dict
from .resilience import DeterministicJitter, RetryPolicy
from .responses import ErrorInfo, StatsResult

#: Stable error code -> HTTP status.
STATUS_FOR_CODE = {
    "REQUEST": 400,
    "CONFIG": 400,
    "VERTEX": 404,
    "EDGE": 404,
    "GRAPH": 400,
    "CONFLICT": 409,
    "STREAM": 400,
    "CONVERGENCE": 500,
    "BACKEND": 500,
    "STORE": 500,
    "OVERLOAD": 429,
    "DEADLINE": 503,
    "CLUSTER": 503,
    "REPRO": 500,
    "INTERNAL": 500,
}


def status_for(error: ErrorInfo | None) -> int:
    """The HTTP status expressing a response's error (200 when ok)."""
    if error is None:
        return 200
    return STATUS_FOR_CODE.get(error.code, 500)


class GatewayHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one gateway."""

    daemon_threads = True

    def __init__(self, gateway: Gateway, host: str, port: int) -> None:
        self.gateway = gateway
        super().__init__((host, port), GatewayRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class GatewayRequestHandler(BaseHTTPRequestHandler):
    """Route HTTP traffic onto the typed gateway protocol."""

    server_version = "repro-gateway"
    protocol_version = "HTTP/1.1"
    #: Quiet by default; ``repro serve --verbose`` flips it.
    log_traffic = False

    @property
    def gateway(self) -> Gateway:
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.log_traffic:
            super().log_message(format, *args)

    # -------------------------------------------------------------- #
    # plumbing
    # -------------------------------------------------------------- #

    def _send_json(
        self, status: int, payload: dict[str, Any], trace_id: str | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_info(self, error: ErrorInfo, status: int | None = None) -> None:
        self._send_json(
            status_for(error) if status is None else status,
            {"ok": False, "error": error.to_dict()},
        )

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("empty request body (want a JSON object)")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"malformed JSON body: {exc}") from exc

    # -------------------------------------------------------------- #
    # routes
    # -------------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        parts = urlsplit(self.path)
        route = parts.path
        if route == "/v1/healthz":
            self._send_gateway(Health())
        elif route == "/v1/readyz":
            self._send_ready()
        elif route == "/v1/stats":
            self._send_gateway(Stats())
        elif route == "/v1/metrics":
            self._send_metrics()
        elif route.startswith("/v1/trace/"):
            self._send_trace(route[len("/v1/trace/"):])
        elif route == "/v1/slow":
            self._send_slow(parse_qs(parts.query))
        else:
            self._send_error_info(
                ErrorInfo(code="REQUEST", message=f"unknown route: GET {self.path}"),
                status=404,
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        try:
            if self.path == "/v1/query":
                payload = self._read_body()
                if isinstance(payload, dict) and "requests" in payload:
                    items = payload["requests"]
                    if not isinstance(items, list):
                        raise RequestError("'requests' must be a JSON array")
                    requests = [request_from_dict(item) for item in items]
                    # One ingress (and so one trace) for the whole batch:
                    # its members share the root span, and the scheduler's
                    # run spans show which members coalesced together.
                    ing = obs.ingress(
                        "http.request", route="/v1/query", requests=len(requests)
                    )
                    with ing:
                        for request in requests:
                            obs.attach(request, ing.ctx)
                        responses = self.gateway.submit_many(requests)
                        body = {"responses": [r.to_dict() for r in responses]}
                        if ing.trace_id is not None:
                            body["trace_id"] = ing.trace_id
                        with obs.span("http.respond"):
                            self._send_json(200, body, trace_id=ing.trace_id)
                else:
                    self._send_gateway(request_from_dict(payload))
            elif self.path == "/v1/ingest":
                payload = self._read_body()
                if not isinstance(payload, dict):
                    raise RequestError("ingest body must be a JSON object")
                self._send_gateway(IngestBatch.from_dict(payload))
            else:
                self._send_error_info(
                    ErrorInfo(
                        code="REQUEST", message=f"unknown route: POST {self.path}"
                    ),
                    status=404,
                )
        except ReproError as exc:
            self._send_error_info(ErrorInfo.from_exception(exc))

    def _send_gateway(self, request: Any) -> None:
        ing = obs.ingress("http.request", route=self.path, op=request.op)
        with ing:
            obs.attach(request, ing.ctx)
            response = self.gateway.submit(request)
            payload = response.to_dict()
            if ing.trace_id is not None:
                payload["trace_id"] = ing.trace_id
            with obs.span("http.respond", status=status_for(response.error)):
                self._send_json(
                    status_for(response.error), payload, trace_id=ing.trace_id
                )

    def _send_ready(self) -> None:
        """Readiness maps the ``ready`` bit onto HTTP: 200 ready, 503 not.

        Distinct from ``/v1/healthz`` (pure liveness, 200 while the
        process serves): a load balancer drains a backend on 503 here —
        e.g. mid-failover, a dead replica, or an open circuit breaker —
        without the supervisor restarting a perfectly alive process.
        """
        ing = obs.ingress("http.request", route=self.path, op="ready")
        with ing:
            request = Ready()
            obs.attach(request, ing.ctx)
            response = self.gateway.submit(request)
            payload = response.to_dict()
            if ing.trace_id is not None:
                payload["trace_id"] = ing.trace_id
            status = status_for(response.error)
            if status == 200 and not getattr(response, "ready", True):
                status = 503
            with obs.span("http.respond", status=status):
                self._send_json(status, payload, trace_id=ing.trace_id)

    def _send_trace(self, trace_id: str) -> None:
        spans = obs.trace(trace_id)
        if not spans:
            self._send_error_info(
                ErrorInfo(
                    code="REQUEST",
                    message=f"unknown or expired trace: {trace_id!r}",
                ),
                status=404,
            )
            return
        self._send_json(200, {"ok": True, "trace_id": trace_id, "spans": spans})

    def _send_slow(self, query: dict[str, list[str]]) -> None:
        threshold_ms: float | None = None
        raw = query.get("threshold_ms")
        if raw:
            try:
                threshold_ms = float(raw[0])
            except ValueError:
                self._send_error_info(
                    ErrorInfo(
                        code="REQUEST",
                        message=f"threshold_ms must be a number, got {raw[0]!r}",
                    )
                )
                return
        entries = obs.slow(threshold_ms)
        self._send_json(
            200,
            {
                "ok": True,
                "threshold_ms": (
                    threshold_ms
                    if threshold_ms is not None
                    else obs.TRACER.slowlog.threshold_ms
                ),
                "entries": entries,
            },
        )

    def _send_metrics(self) -> None:
        response = self.gateway.submit(Stats())
        if response.error is not None or not isinstance(response, StatsResult):
            self._send_error_info(
                response.error
                or ErrorInfo(code="INTERNAL", message="stats unavailable")
            )
            return
        body = render_prometheus(response.stats).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def make_server(
    gateway: Gateway, host: str | None = None, port: int | None = None
) -> GatewayHTTPServer:
    """Bind (but do not run) the HTTP front-end.

    Defaults come from the gateway's :class:`~repro.config.ApiConfig`;
    port ``0`` gets an ephemeral port (check ``server.server_address``).
    Call ``serve_forever()`` (from any thread) and ``shutdown()`` to stop.
    """
    return GatewayHTTPServer(
        gateway,
        gateway.config.host if host is None else host,
        gateway.config.port if port is None else port,
    )


def serve_http(
    gateway: Gateway, host: str | None = None, port: int | None = None
) -> None:
    """Run the HTTP front-end until interrupted (the ``repro serve`` loop)."""
    server = make_server(gateway, host, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()


#: Error codes safe to retry on an idempotent request: transient serving
#: conditions (failover window, queue spike, missed deadline), never a
#: problem with the request itself.
RETRYABLE_CODES = frozenset({"CLUSTER", "DEADLINE", "OVERLOAD"})

#: Write operations — never retried (a lost ack could double-apply).
_NON_IDEMPOTENT_OPS = frozenset({"ingest", "checkpoint"})


class HttpClient:
    """Minimal stdlib HTTP client speaking the gateway protocol.

    The network twin of :class:`repro.api.client.Client`, used by tests,
    the smoke script, and ``examples/http_client_demo.py``. Raises the
    typed :class:`~repro.errors.ReproError` a failed response encodes.

    With a :class:`~repro.api.resilience.RetryPolicy`, *idempotent*
    requests (every GET; query reads, but never writes) that fail with a
    transport error or a transient typed failure (``CLUSTER`` /
    ``DEADLINE`` / ``OVERLOAD``) are retried under exponential backoff
    with deterministic jitter; each attempt gets the full ``timeout``.
    Writes are never retried — a lost ack could mean a double-apply —
    which is what ``expect_version`` conditional ingest is for.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self._jitter = DeterministicJitter()

    def _request(
        self,
        method: str,
        route: str,
        payload: dict[str, Any] | None = None,
        *,
        idempotent: bool | None = None,
    ) -> dict[str, Any]:
        if idempotent is None:
            idempotent = method == "GET"
        policy = self.retry
        attempts = policy.attempts if (policy is not None and idempotent) else 1
        for attempt in range(attempts):
            if attempt:
                time.sleep(policy.backoff_s(attempt - 1, self._jitter.next()))
            try:
                return self._request_once(method, route, payload)
            except ReproError as exc:
                if exc.code not in RETRYABLE_CODES or attempt == attempts - 1:
                    raise
            except HTTPError:
                # A decoded non-typed server answer — not transient.
                raise
            except OSError:
                # URLError (connection refused/reset, socket timeout):
                # the server may be mid-restart or mid-failover.
                if attempt == attempts - 1:
                    raise
        raise AssertionError("unreachable: retry loop returns or raises")

    def _request_once(
        self, method: str, route: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        url = f"{self.base_url}{route}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except HTTPError as exc:
            body = json.loads(exc.read() or b"{}")
            info = body.get("error")
            if info:
                raise ErrorInfo(
                    code=str(info.get("code", "INTERNAL")),
                    message=str(info.get("message", "")),
                    details=dict(info.get("details", {})),
                ).to_exception() from None
            raise

    def query(self, payload: dict[str, Any]) -> dict[str, Any]:
        """POST one request object to ``/v1/query``."""
        return self._request(
            "POST",
            "/v1/query",
            payload,
            idempotent=payload.get("op") not in _NON_IDEMPOTENT_OPS,
        )

    def query_many(self, payloads: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """POST a scheduled request sequence to ``/v1/query``."""
        body = self._request(
            "POST",
            "/v1/query",
            {"requests": payloads},
            idempotent=all(
                p.get("op") not in _NON_IDEMPOTENT_OPS for p in payloads
            ),
        )
        return list(body["responses"])

    def ingest(
        self,
        updates: list[list[Any]],
        *,
        expect_version: int | None = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"updates": updates}
        if expect_version is not None:
            payload["expect_version"] = expect_version
        return self._request("POST", "/v1/ingest", payload)

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> str:
        """GET the Prometheus text exposition from ``/v1/metrics``."""
        url = f"{self.base_url}/v1/metrics"
        with urlopen(Request(url, method="GET"), timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def trace(self, trace_id: str) -> list[dict[str, Any]]:
        """GET the spans of one sampled trace from ``/v1/trace/<id>``."""
        body = self._request("GET", f"/v1/trace/{trace_id}")
        return list(body["spans"])

    def slow(self, threshold_ms: float | None = None) -> list[dict[str, Any]]:
        """GET the slow-query log from ``/v1/slow``."""
        route = "/v1/slow"
        if threshold_ms is not None:
            # urlencode percent-escapes the "+" of exponent notation,
            # which parse_qs would otherwise decode into a space.
            route += "?" + urlencode({"threshold_ms": float(threshold_ms)})
        body = self._request("GET", route)
        return list(body["entries"])

    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def readyz(self) -> dict[str, Any]:
        """GET ``/v1/readyz`` — the readiness payload, degraded or not.

        A degraded cluster answers HTTP 503 *with* the full per-replica
        payload; this returns that payload (``ready: false``) rather than
        raising, so probes can report what exactly is degraded.
        """
        url = f"{self.base_url}/v1/readyz"
        try:
            with urlopen(Request(url, method="GET"), timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except HTTPError as exc:
            if exc.code == 503:
                body = json.loads(exc.read() or b"{}")
                if "ready" in body:
                    return body
            raise
