"""Admission control and overload shedding for the gateway front doors.

Under open-loop traffic (arrivals do not wait for completions — see
``docs/load.md``) an unprotected server past saturation builds an
unbounded backlog: every request eventually completes, but none within
its SLO, so *goodput collapses to zero* exactly when load peaks. The fix
is classic: bound the queue and shed the cheapest work first, so the
work that is admitted still finishes on time.

This module is that policy, in two shapes sharing one classification:

* :class:`AdmissionController` — a thread-safe depth gate the real
  gateways (:class:`~repro.api.gateway.Gateway`,
  :class:`~repro.cluster.gateway.ClusterGateway`) consult in
  ``submit``: requests past their priority class's depth threshold are
  shed with :class:`~repro.errors.OverloadError` (stable code
  ``OVERLOAD``, HTTP 429) before any engine work happens.
* :class:`AdmissionQueue` — a deterministic virtual-time bounded queue
  the open-loop load harness (:mod:`repro.load`) and the property tests
  simulate with: FIFO within each priority class, highest class served
  first, deadline-expired entries dropped at dequeue.

Priority classes (shed thresholds as a fraction of capacity ``Q``):

========== ============================================= ==========
class      requests                                      shed at
========== ============================================= ==========
ANY        ``ANY``-consistency reads, prefetch hints     ``0.5 Q``
BOUNDED    ``BOUNDED``-consistency reads                 ``0.75 Q``
CRITICAL   ``FRESH`` reads, writes, hub reads            ``Q``
ADMIN      stats / health probes                         never
========== ============================================= ==========

So under mounting overload ANY reads are refused first, then BOUNDED,
and only a full queue refuses FRESH reads and writes — observability
probes always get through.
"""

from __future__ import annotations

import enum
import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Any

from ..config import ConsistencyLevel
from ..errors import ConfigError, OverloadError
from .requests import ApiRequest, Consistency, Health, Prefetch, Ready, Stats


class Priority(enum.IntEnum):
    """Shed-order classes, lowest value shed first."""

    ANY = 0
    BOUNDED = 1
    CRITICAL = 2
    ADMIN = 3


#: Fraction of queue capacity at which each class starts shedding.
SHED_FRACTION: dict[Priority, float] = {
    Priority.ANY: 0.5,
    Priority.BOUNDED: 0.75,
    Priority.CRITICAL: 1.0,
}


def priority_of(request: ApiRequest) -> Priority:
    """Classify one request into its admission priority class."""
    if isinstance(request, (Stats, Health, Ready)):
        return Priority.ADMIN
    if isinstance(request, Prefetch):
        return Priority.ANY  # warming hints are the cheapest work to drop
    if request.is_write:
        return Priority.CRITICAL
    consistency = getattr(request, "consistency", None)
    if isinstance(consistency, Consistency):
        if consistency.level is ConsistencyLevel.ANY:
            return Priority.ANY
        if consistency.level is ConsistencyLevel.BOUNDED:
            return Priority.BOUNDED
    return Priority.CRITICAL


def shed_threshold(priority: Priority, capacity: int) -> int:
    """Queue depth at (or past) which this class is refused admission.

    ADMIN has no threshold at all — observability probes are admitted at
    any depth (they are the tool for diagnosing the overload), so their
    nominal threshold is reported as ``capacity + 1`` but the gates skip
    the check entirely: even a stack of admin probes past capacity must
    not shed the next one.
    """
    if priority is Priority.ADMIN:
        return capacity + 1
    return max(1, int(capacity * SHED_FRACTION[priority]))


# ---------------------------------------------------------------------- #
# thread-safe gate (real gateways)
# ---------------------------------------------------------------------- #


class AdmissionController:
    """Queue-depth backpressure gate shared by a gateway's callers.

    Depth counts requests admitted but not yet finished — with the
    gateway's execution serialized by its lock, that is the number of
    concurrent callers queued on the lock plus the one executing. The
    gate is consulted *before* the lock, so shed requests never wait.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"admission capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._depth = 0
        #: Per-class admitted/shed counts (stats surface).
        self.admitted: Counter[str] = Counter()
        self.shed: Counter[str] = Counter()

    @property
    def depth(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._lock:
            return self._depth

    def admit(self, request: ApiRequest) -> Priority:
        """Admit or shed one request; sheds raise ``OverloadError``.

        Every successful ``admit`` must be paired with one
        :meth:`release` once the request finishes (success or failure).
        """
        priority = priority_of(request)
        with self._lock:
            threshold = shed_threshold(priority, self.capacity)
            if priority is not Priority.ADMIN and self._depth >= threshold:
                self.shed[priority.name.lower()] += 1
                raise OverloadError(
                    priority=priority.name.lower(),
                    depth=self._depth,
                    limit=self.capacity,
                )
            self._depth += 1
            self.admitted[priority.name.lower()] += 1
        return priority

    def release(self) -> None:
        """Mark one admitted request finished, freeing its queue slot."""
        with self._lock:
            self._depth = max(0, self._depth - 1)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe counters (the ``/v1/stats`` admission section)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "depth": self._depth,
                "admitted": dict(self.admitted),
                "shed": dict(self.shed),
            }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(capacity={self.capacity}, depth={self.depth},"
            f" shed={sum(self.shed.values())})"
        )


# ---------------------------------------------------------------------- #
# virtual-time bounded queue (load harness, property tests)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Ticket:
    """One admitted queue entry: payload plus admission bookkeeping."""

    seq: int
    item: Any
    priority: Priority
    #: Virtual-time instant past which the entry is dead (None = no deadline).
    expires_at: float | None = None


class AdmissionQueue:
    """Deterministic bounded priority queue over virtual time.

    The single-threaded twin of :class:`AdmissionController`: ``offer``
    applies the same shed thresholds at arrival, ``poll`` serves the
    highest priority class first and FIFO within a class, dropping
    entries whose deadline expired while queued. Time is an explicit
    ``now`` argument, so the open-loop harness can simulate hours of
    arrivals reproducibly and the property tests can explore arbitrary
    interleavings.

    Conservation (checked by ``tests/test_load_properties.py``)::

        offered  == accepted + shed          (at offer)
        accepted == polled + expired + depth (at any instant)
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"admission capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queues: dict[Priority, deque[Ticket]] = {
            priority: deque() for priority in Priority
        }
        self._seq = 0
        self.accepted: Counter[str] = Counter()
        self.shed: Counter[str] = Counter()
        self.expired: Counter[str] = Counter()
        self.polled: Counter[str] = Counter()

    @property
    def depth(self) -> int:
        """Entries currently queued across every priority class."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def offered(self) -> int:
        """Total arrivals seen (accepted + shed)."""
        return sum(self.accepted.values()) + sum(self.shed.values())

    def offer(
        self,
        item: Any,
        priority: Priority,
        *,
        expires_at: float | None = None,
    ) -> bool:
        """Admit one arrival, or shed it (``False``) past its threshold."""
        if priority is not Priority.ADMIN and self.depth >= shed_threshold(
            priority, self.capacity
        ):
            self.shed[priority.name.lower()] += 1
            return False
        self._seq += 1
        self._queues[priority].append(
            Ticket(self._seq, item, priority, expires_at)
        )
        self.accepted[priority.name.lower()] += 1
        return True

    def poll(self, now: float = 0.0) -> Ticket | None:
        """Pop the next serveable entry at virtual instant ``now``.

        Highest priority class first, FIFO within a class;
        deadline-expired entries are counted and skipped, never served.
        Returns ``None`` when nothing serveable remains.
        """
        for priority in sorted(Priority, reverse=True):
            queue = self._queues[priority]
            while queue:
                ticket = queue.popleft()
                if ticket.expires_at is not None and now >= ticket.expires_at:
                    self.expired[priority.name.lower()] += 1
                    continue
                self.polled[priority.name.lower()] += 1
                return ticket
        return None

    def counts(self) -> dict[str, Any]:
        """JSON-safe snapshot of every conservation counter."""
        return {
            "capacity": self.capacity,
            "depth": self.depth,
            "offered": self.offered,
            "accepted": dict(self.accepted),
            "shed": dict(self.shed),
            "expired": dict(self.expired),
            "polled": dict(self.polled),
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue(capacity={self.capacity}, depth={self.depth},"
            f" offered={self.offered})"
        )
