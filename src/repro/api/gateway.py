"""The gateway: validate, route, and schedule typed requests.

:class:`Gateway` is the single public seam between callers (embedded
:class:`~repro.api.client.Client`, the HTTP front-end, the ``PPRService``
compatibility shims) and the serving engine beneath. It owns three
responsibilities the engine should not:

* **protocol** — requests are validated dataclasses, answers are typed
  responses, failures are :class:`~repro.api.responses.ErrorInfo` with
  the stable codes of :mod:`repro.errors` (never raw tracebacks);
* **scheduling** — :meth:`submit_many` runs mixed read/write traffic in
  arrival order with writes as barriers, and *coalesces* runs of
  same-shaped top-k reads between writes into one batched engine call,
  deduplicating repeated sources (heavy-tailed query mixes repeat the
  same hot sources constantly — one certify serves them all);
* **ordering** — an :class:`~repro.api.requests.IngestBatch` carrying
  ``expect_version`` applies only against that exact snapshot version
  (optimistic concurrency), so external writers can order their writes
  against the versions their reads observed.

One lock serializes execution: the HTTP front-end's worker threads and
embedded callers share a gateway safely. Consistency levels (FRESH /
BOUNDED / ANY) are enforced per read via the engine's staleness contract.
See ``docs/api.md`` for the full protocol.
"""

from __future__ import annotations

import threading
from collections import Counter
from collections.abc import Sequence
from typing import TYPE_CHECKING

from .. import obs
from ..config import ApiConfig
from ..obs import clock
from ..errors import (
    ConfigError,
    ConflictError,
    DeadlineError,
    OverloadError,
    ReproError,
    RequestError,
)
from .admission import AdmissionController
from .scheduling import ReadRun, fail_run, plan_schedule, scatter_run_results
from .requests import (
    ApiRequest,
    BatchQuery,
    CheckpointNow,
    Health,
    HubQuery,
    IngestBatch,
    Prefetch,
    Ready,
    ScoreQuery,
    Stats,
    TopKQuery,
)
from .responses import (
    ApiResponse,
    BatchResult,
    CheckpointResult,
    ErrorInfo,
    HealthResult,
    HubResult,
    IngestResult,
    PrefetchResult,
    ReadyResult,
    ScoreResult,
    StatsResult,
    TopKResult,
)

if TYPE_CHECKING:
    from ..serve.service import PPRService, ServedQuery

#: Request class -> response class, used to shape error responses.
RESPONSE_FOR: dict[type[ApiRequest], type[ApiResponse]] = {
    TopKQuery: TopKResult,
    BatchQuery: BatchResult,
    HubQuery: HubResult,
    ScoreQuery: ScoreResult,
    IngestBatch: IngestResult,
    Prefetch: PrefetchResult,
    CheckpointNow: CheckpointResult,
    Stats: StatsResult,
    Health: HealthResult,
    Ready: ReadyResult,
}


class Gateway:
    """Typed request/response front door of one :class:`PPRService`.

    Parameters
    ----------
    service:
        The serving engine to front. The gateway becomes its single
        entry point; the engine's legacy methods delegate back here.
    config:
        Gateway knobs (:class:`repro.config.ApiConfig`): read-coalescing
        width, bind address for the HTTP front-end, defaults.

    Examples
    --------
    >>> from repro import DynamicDiGraph, PPRService
    >>> from repro.api import TopKQuery
    >>> service = PPRService(DynamicDiGraph([(1, 0), (2, 0), (0, 1)]))
    >>> response = service.gateway.submit(TopKQuery(source=0, k=2))
    >>> response.ok and response.vertices[0] == 0
    True
    """

    def __init__(self, service: "PPRService", config: ApiConfig | None = None) -> None:
        self.service = service
        self.config = config or ApiConfig()
        # One engine, one scheduler: a directly-constructed gateway becomes
        # the service's own (so the compatibility shims route through it,
        # not through a second lazily-created one); if the service already
        # has a gateway, share its lock so serialization still holds across
        # both front doors.
        if service._gateway is None:
            service._gateway = self
            self._lock = threading.RLock()
        else:
            self._lock = service._gateway._lock
        #: Per-op request counts plus scheduler counters (stats surface).
        self.counters: Counter[str] = Counter()
        #: Bounded-queue backpressure gate; None when admission_queue == 0.
        self.admission: AdmissionController | None = (
            AdmissionController(self.config.admission_queue)
            if self.config.admission_queue
            else None
        )
        # Install the observability config process-wide — but only when it
        # actually asks for something, so a default-configured gateway
        # never clobbers a tracer someone else already set up.
        if self.config.obs.enabled or self.config.obs.export_path:
            obs.configure(self.config.obs)

    # ------------------------------------------------------------------ #
    # single-request paths
    # ------------------------------------------------------------------ #

    def submit(self, request: ApiRequest) -> ApiResponse:
        """Execute one request; failures become error-carrying responses.

        The protocol edge: every :class:`~repro.errors.ReproError` is
        mapped to a typed response whose ``error`` holds the stable code
        and structured details. Non-library exceptions propagate — they
        are bugs, not protocol outcomes.

        With :attr:`~repro.config.ApiConfig.admission_queue` set, the
        request first passes the bounded admission gate: past its
        priority class's depth threshold it is shed *before* waiting on
        the lock, failing with stable code ``OVERLOAD`` (HTTP 429).
        """
        try:
            if self.admission is not None:
                self.admission.admit(request)
                try:
                    return self.execute(request)
                finally:
                    self.admission.release()
            return self.execute(request)
        except ReproError as exc:
            self.counters["errors"] += 1
            if isinstance(exc, OverloadError):
                self.counters["shed"] += 1
            elif isinstance(exc, DeadlineError):
                self.counters["deadline_exceeded"] += 1
            shape = RESPONSE_FOR.get(type(request), ApiResponse)
            return shape.failure(
                ErrorInfo.from_exception(exc),
                snapshot_version=self.service.graph_version,
            )

    def execute(self, request: ApiRequest) -> ApiResponse:
        """Execute one request, raising typed errors (the embedded path)."""
        if not isinstance(request, ApiRequest):
            raise RequestError(f"not an ApiRequest: {request!r}")
        queued = clock.now()
        with self._lock:
            start = clock.now()
            waited = start - queued
            self.counters[request.op] += 1
            # Checked under the lock so time spent queued on it counts
            # against the budget — an overloaded gateway fails the wait,
            # it does not serve answers nobody is waiting for anymore.
            deadline = getattr(request, "deadline", None)
            if deadline is not None and deadline.expired():
                raise deadline.to_error()
            obs.observe("queue.wait", waited)
            source = getattr(request, "source", None)
            ctx = obs.trace_of(request)
            if ctx is None:
                with obs.measured(f"request.{request.op}", source=source):
                    return self._dispatch(request, start)
            with obs.activate(ctx):
                # The wait was already observed above; record the span
                # without a second histogram feed.
                obs.record_span(
                    "queue.wait", start=queued, duration=waited, observe=False
                )
                with obs.span("gateway.execute", op=request.op):
                    with obs.measured(
                        f"request.{request.op}",
                        trace_id=ctx.trace_id,
                        source=source,
                    ):
                        return self._dispatch(request, start)

    def _dispatch(self, request: ApiRequest, start: float) -> ApiResponse:
        """Route one admitted request to the engine (lock already held)."""
        if isinstance(request, TopKQuery):
            served = self.service._execute_query(
                request.source,
                request.k,
                max_staleness=request.consistency.max_staleness,
            )
            return self._topk_result(served, request.k)
        if isinstance(request, BatchQuery):
            return self._execute_batch(request, start)
        if isinstance(request, ScoreQuery):
            score = self.service._execute_score(
                request.source,
                request.target,
                max_staleness=request.consistency.max_staleness,
            )
            return ScoreResult(
                source=score.source,
                target=score.target,
                estimate=score.estimate,
                error_bound=score.error_bound,
                cold=score.cold,
                snapshot_version=score.snapshot_version,
                staleness=score.staleness_updates,
                wall_time_s=score.wall_time,
            )
        if isinstance(request, HubQuery):
            entries = self.service._execute_rank_for_hub(request.hub, request.k)
            return HubResult(
                hub=request.hub,
                k=len(entries),
                entries=tuple(entries),
                snapshot_version=self.service.graph_version,
                wall_time_s=clock.now() - start,
            )
        if isinstance(request, IngestBatch):
            return self._execute_ingest(request, start)
        if isinstance(request, Prefetch):
            for source in request.sources:
                self.service._execute_prefetch(source)
            return PrefetchResult(
                requested=len(request.sources),
                pending=len(self.service.pool.pending),
                snapshot_version=self.service.graph_version,
                wall_time_s=clock.now() - start,
            )
        if isinstance(request, CheckpointNow):
            if self.service.store is None:
                raise ConfigError(
                    "no state store attached: set ServeConfig.store or"
                    " call PPRService.attach_store"
                )
            path = self.service.store.checkpoint(self.service)
            return CheckpointResult(
                path=str(path),
                written=True,
                snapshot_version=self.service.graph_version,
                wall_time_s=clock.now() - start,
            )
        if isinstance(request, Stats):
            stats = dict(self.service.metrics().to_dict())
            stats["gateway"] = dict(self.counters)
            if self.admission is not None:
                stats["admission"] = self.admission.to_dict()
            stats["obs"] = obs.snapshot()
            return StatsResult(
                stats=stats,
                snapshot_version=self.service.graph_version,
                wall_time_s=clock.now() - start,
            )
        if isinstance(request, Health):
            service = self.service
            return HealthResult(
                status="ok",
                graph_version=service.graph_version,
                num_vertices=service.graph.num_vertices,
                num_edges=service.graph.num_edges,
                resident=len(service.cache),
                hubs=len(service.hubs),
                snapshot_version=service.graph_version,
                wall_time_s=clock.now() - start,
            )
        if isinstance(request, Ready):
            # A single-process gateway has no replication machinery that
            # could be degraded: alive implies ready.
            return ReadyResult(
                ready=True,
                status="ready",
                primary="embedded",
                epoch=0,
                replicas=(),
                snapshot_version=self.service.graph_version,
                wall_time_s=clock.now() - start,
            )
        raise RequestError(f"unhandled request type: {type(request).__name__}")

    # ------------------------------------------------------------------ #
    # scheduling: mixed read/write traffic
    # ------------------------------------------------------------------ #

    def submit_many(
        self, requests: Sequence[ApiRequest], *, coalesce: bool | None = None
    ) -> list[ApiResponse]:
        """Run a request sequence in order, coalescing reads between writes.

        Writes (:attr:`~repro.api.requests.ApiRequest.is_write`) execute
        at their arrival position — a read never observes a version its
        predecessor writes had not produced, nor one a successor write
        already advanced. Between writes, maximal runs of
        :class:`~repro.api.requests.TopKQuery` sharing ``(k,
        consistency)`` are answered by **one** batched engine call:
        repeated sources are deduplicated (one certify answers all
        duplicates bit-identically — with the gateway lock held there is
        no intervening write, so the duplicate answers are the ones
        per-request dispatch would have produced) and cold sources are
        admitted together in shared-snapshot push batches. Responses come
        back in request order.

        The barrier/coalescing policy itself lives in
        :mod:`repro.api.scheduling`, shared with the replicated
        :class:`~repro.cluster.gateway.ClusterGateway` so both schedulers
        plan identical steps for identical traffic.
        """
        if coalesce is None:
            coalesce = self.config.coalesce_reads
        with self._lock:  # one atomic schedule; RLock keeps submit() happy
            responses: list[ApiResponse | None] = [None] * len(requests)
            steps = plan_schedule(
                requests, coalesce=coalesce, max_batch=self.config.max_batch
            )
            for step in steps:
                if isinstance(step, ReadRun):
                    self._coalesce_run(requests, step, responses)
                else:
                    responses[step.position] = self.submit(requests[step.position])
            return [r for r in responses if r is not None]

    def _coalesce_run(
        self,
        requests: Sequence[ApiRequest],
        run: ReadRun,
        responses: list[ApiResponse | None],
    ) -> None:
        """Answer one coalesced run of top-k reads via a single batch."""
        first = requests[run.positions[0]]
        assert isinstance(first, TopKQuery)
        self.counters["reads_coalesced"] += run.coalesced
        batch_request = BatchQuery(
            sources=run.sources,
            k=first.k,
            consistency=first.consistency,
            deadline=run.deadline,
        )
        batch = self._submit_run(requests, run, batch_request)
        if batch.error is not None:
            fail_run(requests, run, batch.error, batch.snapshot_version, responses)
            return
        assert isinstance(batch, BatchResult)
        by_source = {result.source: result for result in batch.results}
        scatter_run_results(requests, run, by_source, responses)

    def _submit_run(
        self,
        requests: Sequence[ApiRequest],
        run: ReadRun,
        batch_request: BatchQuery,
    ) -> ApiResponse:
        """Submit one coalesced run, stitching member traces to it.

        The shared execution runs as a ``schedule.run`` span on the first
        sampled member's trace; every other sampled member gets a
        ``schedule.member`` span in *its own* trace carrying the run
        span's id and timing, so a coalesced request's trace still shows
        where (and for how long) its answer was actually computed.
        """
        member_ctxs = [obs.trace_of(requests[p]) for p in run.positions]
        lead = next((ctx for ctx in member_ctxs if ctx is not None), None)
        if lead is None:
            return self.submit(batch_request)
        with obs.activate(lead):
            with obs.span(
                "schedule.run",
                members=len(run.positions),
                coalesced=run.coalesced,
                unique_sources=len(run.sources),
            ) as run_span:
                obs.attach(batch_request, obs.current())
                batch = self.submit(batch_request)
        run_id = getattr(run_span, "span_id", None)
        if run_id is not None:
            for position, ctx in zip(run.positions, member_ctxs):
                if ctx is None:
                    continue
                obs.record_span(
                    "schedule.member",
                    start=run_span.start,
                    duration=run_span.duration,
                    ctx=ctx,
                    observe=False,
                    run_span=run_id,
                    run_trace=run_span.trace_id,
                    position=position,
                    source=getattr(requests[position], "source", None),
                )
        return batch

    # ------------------------------------------------------------------ #
    # response shaping
    # ------------------------------------------------------------------ #

    def _topk_result(self, served: "ServedQuery", k: int | None) -> TopKResult:
        return TopKResult(
            source=served.source,
            k=k if k is not None else self.service.serve.top_k,
            entries=tuple(served.entries),
            cold=served.cold,
            served=served,
            snapshot_version=served.snapshot_version,
            staleness=served.staleness_updates,
            wall_time_s=served.wall_time,
        )

    def _execute_batch(self, request: BatchQuery, start: float) -> BatchResult:
        served = self.service._execute_query_many(
            list(request.sources),
            request.k,
            max_staleness=request.consistency.max_staleness,
        )
        results = tuple(self._topk_result(answer, request.k) for answer in served)
        return BatchResult(
            results=results,
            snapshot_version=self.service.graph_version,
            staleness=max((r.staleness for r in results), default=0),
            wall_time_s=clock.now() - start,
        )

    def _execute_ingest(self, request: IngestBatch, start: float) -> IngestResult:
        service = self.service
        if (
            request.expect_version is not None
            and request.expect_version != service.graph_version
        ):
            raise ConflictError(request.expect_version, service.graph_version)
        previous = service.graph_version
        traces = service._execute_ingest(
            list(request.updates), snapshot=request.snapshot
        )
        return IngestResult(
            accepted=len(request.updates),
            previous_version=previous,
            pushes=len(traces),
            traces=traces,
            snapshot_version=service.graph_version,
            wall_time_s=clock.now() - start,
        )

    def __repr__(self) -> str:
        return (
            f"Gateway(service={self.service!r},"
            f" requests={sum(self.counters.values())})"
        )
