"""Prometheus-style text rendering of the serving stats surface.

:func:`render_prometheus` flattens the ``/v1/stats`` payload — the
:meth:`~repro.serve.service.ServiceMetrics.to_dict` snapshot plus the
gateway's per-op counters, the admission gate, and (when replicated) the
cluster section — into the Prometheus text exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` comment pairs followed by
``name{labels} value`` sample lines. The HTTP front-end serves it at
``GET /v1/metrics`` so a stock Prometheus scraper (or ``curl``) can
watch a serving process without speaking the JSON protocol.

Counters here are *lifetime totals* (monotonically non-decreasing across
scrapes, modulo process restart); gauges are instantaneous values —
queue depth, residency. Nested dict sections become labelled samples
(``repro_gateway_requests_total{op="top_k"}``); list-valued cluster
entries get an ``index`` label per replica.

Latency is exported as **cumulative histograms** — one
``repro_latency_seconds`` family with a ``stage`` label
(``request.top_k``, ``queue.wait``, ``engine.query``, ...), standard
``_bucket``/``_sum``/``_count`` series fed by :mod:`repro.obs`. Unlike
the point-in-time percentile gauges they replaced, these aggregate
across scrapes and instances (``histogram_quantile()`` works); the
sample-window percentiles remain available as JSON in ``/v1/stats``.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Mapping

#: Metric name prefix for every exported sample.
PREFIX = "repro"

#: Top-level stats keys that are instantaneous values, not lifetime
#: totals. Everything else numeric is exported as a counter.
GAUGE_KEYS = frozenset(
    {
        "queries_per_second",
        "hit_rate",
        "resident",
        "staleness_p50",
        "staleness_p99",
        "depth",
        "capacity",
        "replicas",
        "shards",
        "head",
    }
)

#: Stats keys not exported to Prometheus at all: the sample-window
#: percentile gauges stay in ``/v1/stats`` for humans, but the scrape
#: surface carries the cumulative ``repro_latency_seconds`` histograms
#: instead (point-in-time percentiles cannot be aggregated).
UNEXPORTED_KEYS = frozenset({"latency_p50_s", "latency_p99_s", "latency_p999_s"})

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")


def _sanitize(name: str) -> str:
    """Coerce an arbitrary stats key into a legal metric-name segment."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", str(name))
    if not cleaned or not re.match(r"[a-zA-Z_]", cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class _Writer:
    """Accumulates samples grouped under one HELP/TYPE header per metric."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._seen: set[str] = set()

    def sample(
        self,
        name: str,
        value: float,
        *,
        kind: str,
        help_text: str,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        assert _NAME_OK.fullmatch(name), name
        if name not in self._seen:
            self._seen.add(name)
            self._lines.append(f"# HELP {name} {help_text}")
            self._lines.append(f"# TYPE {name} {kind}")
        label_text = ""
        if labels:
            inner = ",".join(
                f'{_sanitize(k)}="{v}"' for k, v in sorted(labels.items())
            )
            label_text = f"{{{inner}}}"
        rendered = repr(float(value)) if isinstance(value, float) else str(value)
        self._lines.append(f"{name}{label_text} {rendered}")

    def histogram(
        self,
        name: str,
        *,
        help_text: str,
        labels: Mapping[str, Any],
        bounds: Iterable[float],
        cumulative: Iterable[int],
        sum_value: float,
        count: int,
    ) -> None:
        """Emit one labelled cumulative histogram (``_bucket``/``_sum``/``_count``)."""
        assert _NAME_OK.fullmatch(name), name
        if name not in self._seen:
            self._seen.add(name)
            self._lines.append(f"# HELP {name} {help_text}")
            self._lines.append(f"# TYPE {name} histogram")
        base = ",".join(f'{_sanitize(k)}="{v}"' for k, v in sorted(labels.items()))
        les = [repr(float(bound)) for bound in bounds] + ["+Inf"]
        for le, value in zip(les, cumulative):
            self._lines.append(f'{name}_bucket{{{base},le="{le}"}} {value}')
        self._lines.append(f"{name}_sum{{{base}}} {repr(float(sum_value))}")
        self._lines.append(f"{name}_count{{{base}}} {count}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _emit_scalar(writer: _Writer, section: str, key: str, value: Any) -> None:
    if not _is_number(value):
        return
    base = _sanitize(key)
    if key in GAUGE_KEYS:
        name = f"{PREFIX}_{section}_{base}" if section else f"{PREFIX}_{base}"
        writer.sample(
            name, value, kind="gauge",
            help_text=f"Instantaneous {key.replace('_', ' ')}.",
        )
        return
    name = (
        f"{PREFIX}_{section}_{base}_total" if section else f"{PREFIX}_{base}_total"
    )
    writer.sample(
        name, value, kind="counter",
        help_text=f"Lifetime total of {key.replace('_', ' ')}.",
    )


def _emit_counter_map(
    writer: _Writer, name: str, label: str, entries: Mapping[str, Any],
    help_text: str,
) -> None:
    for key in sorted(entries):
        if _is_number(entries[key]):
            writer.sample(
                name, entries[key], kind="counter",
                help_text=help_text, labels={label: key},
            )


def _emit_indexed(
    writer: _Writer, name: str, values: Iterable[Any], help_text: str
) -> None:
    for index, value in enumerate(values):
        if _is_number(value):
            writer.sample(
                name, value, kind="gauge",
                help_text=help_text, labels={"index": index},
            )


def _emit_obs(writer: _Writer, section: Mapping[str, Any]) -> None:
    """Render the :mod:`repro.obs` stats section (histograms + counters)."""
    histograms = section.get("histograms")
    if isinstance(histograms, Mapping):
        for stage in sorted(histograms):
            data = histograms[stage]
            if not isinstance(data, Mapping):
                continue
            counts = list(data.get("counts", []))
            cumulative: list[int] = []
            running = 0
            for count in counts:
                running += count
                cumulative.append(running)
            writer.histogram(
                f"{PREFIX}_latency_seconds",
                help_text="Cumulative per-stage latency distribution (seconds).",
                labels={"stage": stage},
                bounds=list(data.get("bounds", [])),
                cumulative=cumulative,
                sum_value=float(data.get("sum", 0.0)),
                count=int(data.get("count", 0)),
            )
    tracing = section.get("tracing")
    if isinstance(tracing, Mapping):
        for key, help_text in (
            ("traces_started", "Sampled traces minted at the front doors."),
            ("spans_finished", "Spans collected into the trace ring buffer."),
        ):
            if _is_number(tracing.get(key)):
                writer.sample(
                    f"{PREFIX}_obs_{key}_total", tracing[key],
                    kind="counter", help_text=help_text,
                )
    slowlog = section.get("slowlog")
    if isinstance(slowlog, Mapping) and _is_number(slowlog.get("recorded")):
        writer.sample(
            f"{PREFIX}_obs_slowlog_recorded_total", slowlog["recorded"],
            kind="counter",
            help_text="Requests recorded into the slow-query ring.",
        )


def render_prometheus(stats: Mapping[str, Any]) -> str:
    """Render one ``/v1/stats`` payload as Prometheus exposition text."""
    writer = _Writer()
    for key, value in stats.items():
        if (
            key in ("gateway", "admission", "cluster", "shard", "obs")
            or key in UNEXPORTED_KEYS
        ):
            continue
        _emit_scalar(writer, "", key, value)

    obs_section = stats.get("obs")
    if isinstance(obs_section, Mapping):
        _emit_obs(writer, obs_section)

    gateway = stats.get("gateway")
    if isinstance(gateway, Mapping):
        _emit_counter_map(
            writer, f"{PREFIX}_gateway_requests_total", "op", gateway,
            "Requests handled by the gateway, by operation/counter name.",
        )

    admission = stats.get("admission")
    if isinstance(admission, Mapping):
        for key in ("capacity", "depth"):
            _emit_scalar(writer, "admission", key, admission.get(key))
        for counter, help_text in (
            ("admitted", "Requests admitted past the backpressure gate."),
            ("shed", "Requests shed by the backpressure gate."),
        ):
            entries = admission.get(counter)
            if isinstance(entries, Mapping):
                _emit_counter_map(
                    writer,
                    f"{PREFIX}_admission_{counter}_total",
                    "priority",
                    entries,
                    help_text,
                )

    cluster = stats.get("cluster")
    if isinstance(cluster, Mapping):
        for key, value in cluster.items():
            if key == "gateway" and isinstance(value, Mapping):
                _emit_counter_map(
                    writer,
                    f"{PREFIX}_cluster_requests_total",
                    "op",
                    value,
                    "Requests handled by the cluster gateway, by counter name.",
                )
            elif isinstance(value, (list, tuple)):
                _emit_indexed(
                    writer,
                    f"{PREFIX}_cluster_{_sanitize(key)}",
                    value,
                    f"Per-replica {key.replace('_', ' ')}.",
                )
            else:
                _emit_scalar(writer, "cluster", key, value)

    shard = stats.get("shard")
    if isinstance(shard, Mapping):
        _emit_shard(writer, shard)
    return writer.render()


def _emit_shard(writer: _Writer, shard: Mapping[str, Any]) -> None:
    """Render the sharded tier's stats section.

    Per-shard list entries become ``{shard="<id>"}``-labelled samples:
    owned in-edges as a gauge (placement balance at a glance), frontier
    exchange traffic as lifetime counters (the cross-shard cost of the
    push workload), applied versions as gauges (replication skew).
    """

    def per_shard(
        key: str, name: str, *, kind: str, help_text: str
    ) -> None:
        values = shard.get(key)
        if not isinstance(values, (list, tuple)):
            return
        for index, value in enumerate(values):
            if _is_number(value):
                writer.sample(
                    name, value, kind=kind,
                    help_text=help_text, labels={"shard": index},
                )

    per_shard(
        "edges", f"{PREFIX}_shard_edges", kind="gauge",
        help_text="In-edges owned by each shard's vertex slice.",
    )
    per_shard(
        "frontier_bytes", f"{PREFIX}_shard_frontier_bytes_total",
        kind="counter",
        help_text="Frontier-exchange bytes relayed for each shard's pushes.",
    )
    per_shard(
        "exchange_rounds", f"{PREFIX}_shard_exchange_rounds_total",
        kind="counter",
        help_text="Cross-shard row fetches relayed for each shard's pushes.",
    )
    per_shard(
        "applied_versions", f"{PREFIX}_shard_applied_version", kind="gauge",
        help_text="Graph version each shard has applied and acknowledged.",
    )
    per_shard(
        "dispatched", f"{PREFIX}_shard_dispatched_total", kind="counter",
        help_text="Read dispatches routed to each shard.",
    )
    gateway = shard.get("gateway")
    if isinstance(gateway, Mapping):
        _emit_counter_map(
            writer, f"{PREFIX}_shard_requests_total", "op", gateway,
            "Requests handled by the shard coordinator, by counter name.",
        )
    for key in ("shards", "head", "respawns", "batches_shipped",
                "checkpoint_rounds"):
        _emit_scalar(writer, "shard", key, shard.get(key))
