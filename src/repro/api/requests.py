"""Typed request protocol of the gateway API.

Every operation the engine supports is a frozen dataclass here — the
single vocabulary shared by the embedded :class:`~repro.api.client.Client`,
the :class:`~repro.api.gateway.Gateway` scheduler, and the JSON front-end
(:mod:`repro.api.http`). Each request validates its fields at
construction (raising :class:`~repro.errors.RequestError`, stable code
``REQUEST``) and round-trips through ``to_dict``/``from_dict`` so the
wire protocol and the in-process API are the same objects.

Reads carry a per-request :class:`Consistency` — ``FRESH`` (refresh
before read), ``BOUNDED(s)`` (tolerate ≤ s versions of lag), ``ANY``
(serve resident state however stale) — replacing the serving layer's
implicit global freshness policy. See ``docs/api.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, Mapping, Sequence

from ..config import ConsistencyLevel
from ..errors import DeadlineError, RequestError
from ..graph.update import EdgeOp, EdgeUpdate

if TYPE_CHECKING:  # engine-internal side channel, never on the wire
    from ..graph.delta import CSRView


# ---------------------------------------------------------------------- #
# consistency
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Consistency:
    """A read's freshness contract: level plus (for BOUNDED) the bound."""

    level: ConsistencyLevel = ConsistencyLevel.FRESH
    #: Maximum tolerated version lag; meaningful only for ``BOUNDED``.
    bound: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.level, ConsistencyLevel):
            raise RequestError(
                f"level must be a ConsistencyLevel, got {self.level!r}"
            )
        if self.bound < 0:
            raise RequestError(f"bound must be >= 0, got {self.bound}")
        if self.bound and self.level is not ConsistencyLevel.BOUNDED:
            raise RequestError(
                f"bound only applies to BOUNDED, got {self.level.value}"
            )

    @classmethod
    def bounded(cls, versions: int) -> "Consistency":
        """Tolerate answers at most ``versions`` snapshot versions old."""
        return cls(ConsistencyLevel.BOUNDED, versions)

    @property
    def max_staleness(self) -> int | None:
        """The engine-facing bound: versions of lag allowed (None = any)."""
        if self.level is ConsistencyLevel.FRESH:
            return 0
        if self.level is ConsistencyLevel.BOUNDED:
            return self.bound
        return None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"level": self.level.value}
        if self.level is ConsistencyLevel.BOUNDED:
            payload["bound"] = self.bound
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "Consistency":
        """Parse ``"fresh"`` / ``{"level": "bounded", "bound": 3}`` forms."""
        if isinstance(payload, Consistency):
            return payload
        if isinstance(payload, str):
            payload = {"level": payload}
        if not isinstance(payload, Mapping):
            raise RequestError(f"bad consistency: {payload!r}")
        try:
            level = ConsistencyLevel(str(payload.get("level", "fresh")))
        except ValueError:
            raise RequestError(
                f"unknown consistency level: {payload.get('level')!r}"
            ) from None
        bound = payload.get("bound", 0)
        if not isinstance(bound, int) or isinstance(bound, bool):
            raise RequestError(f"bound must be an integer, got {bound!r}")
        return cls(level, bound if level is ConsistencyLevel.BOUNDED else 0)


#: The two boundless contracts, shared instances.
FRESH = Consistency(ConsistencyLevel.FRESH)
ANY = Consistency(ConsistencyLevel.ANY)


# ---------------------------------------------------------------------- #
# deadlines
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Deadline:
    """A request's latency budget: an absolute monotonic expiry.

    Created from a relative budget (:meth:`after_ms`); the absolute
    ``expires_at`` is ``time.monotonic()``-based so it survives wall-clock
    adjustments but is only meaningful within one process. On the wire the
    budget travels as ``timeout_ms`` and the clock *restarts* at the
    server (gRPC-style): network transit is not charged against it, and
    round-tripping a request re-arms the full budget.
    """

    #: Absolute ``time.monotonic()`` instant after which the request is dead.
    expires_at: float
    #: The original relative budget, kept for the wire form and errors.
    budget_ms: float

    def __post_init__(self) -> None:
        if isinstance(self.budget_ms, bool) or not isinstance(
            self.budget_ms, (int, float)
        ):
            raise RequestError(
                f"timeout_ms must be a number, got {self.budget_ms!r}"
            )
        if not self.budget_ms > 0:
            raise RequestError(f"timeout_ms must be > 0, got {self.budget_ms}")

    @classmethod
    def after_ms(cls, budget_ms: float, *, now: float | None = None) -> "Deadline":
        """The deadline ``budget_ms`` milliseconds from ``now`` (monotonic)."""
        if isinstance(budget_ms, bool) or not isinstance(budget_ms, (int, float)):
            raise RequestError(f"timeout_ms must be a number, got {budget_ms!r}")
        if not budget_ms > 0:
            raise RequestError(f"timeout_ms must be > 0, got {budget_ms}")
        start = time.monotonic() if now is None else now
        return cls(expires_at=start + budget_ms / 1e3, budget_ms=float(budget_ms))

    def expired(self, now: float | None = None) -> bool:
        """Whether the budget has elapsed (``now`` defaults to monotonic)."""
        return (time.monotonic() if now is None else now) >= self.expires_at

    def remaining_s(self, now: float | None = None) -> float:
        """Seconds of budget left; negative once expired."""
        return self.expires_at - (time.monotonic() if now is None else now)

    def to_error(self, now: float | None = None) -> DeadlineError:
        """The typed error describing this deadline's expiry."""
        overrun_ms = -self.remaining_s(now) * 1e3
        return DeadlineError(
            budget_ms=self.budget_ms,
            elapsed_ms=self.budget_ms + max(0.0, overrun_ms),
        )

    @classmethod
    def tightest(cls, deadlines: "Sequence[Deadline | None]") -> "Deadline | None":
        """The earliest-expiring of the given deadlines (None if all None)."""
        present = [d for d in deadlines if d is not None]
        if not present:
            return None
        return min(present, key=lambda d: d.expires_at)


def consistency_for(max_staleness: int | None) -> Consistency:
    """The consistency matching an engine-style staleness bound."""
    if max_staleness is None:
        return ANY
    if max_staleness == 0:
        return FRESH
    return Consistency.bounded(max_staleness)


# ---------------------------------------------------------------------- #
# field validation helpers
# ---------------------------------------------------------------------- #


def _vertex(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{name} must be an integer vertex id, got {value!r}")
    if value < 0:
        raise RequestError(f"{name} must be >= 0, got {value}")
    return value


def _optional_k(k: Any) -> int | None:
    if k is None:
        return None
    if isinstance(k, bool) or not isinstance(k, int):
        raise RequestError(f"k must be an integer, got {k!r}")
    if k < 1:
        raise RequestError(f"k must be >= 1, got {k}")
    return k


def _vertex_tuple(values: Any, name: str) -> tuple[int, ...]:
    if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
        raise RequestError(f"{name} must be a sequence of vertex ids")
    out = tuple(_vertex(v, name) for v in values)
    if not out:
        raise RequestError(f"{name} must be non-empty")
    return out


def _optional_deadline(value: Any) -> None:
    if value is not None and not isinstance(value, Deadline):
        raise RequestError(f"deadline must be a Deadline or None, got {value!r}")


def _deadline_from_payload(payload: Mapping[str, Any]) -> Deadline | None:
    """Re-arm a wire ``timeout_ms`` as a fresh server-side deadline."""
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is None:
        return None
    return Deadline.after_ms(timeout_ms)


def _parse_update(item: Any) -> EdgeUpdate:
    if isinstance(item, EdgeUpdate):
        return item
    if isinstance(item, Mapping):
        item = [item.get("u"), item.get("v"), item.get("op", "insert")]
    if not isinstance(item, Sequence) or not 2 <= len(item) <= 3:
        raise RequestError(f"bad update (want [u, v] or [u, v, op]): {item!r}")
    u = _vertex(item[0], "u")
    v = _vertex(item[1], "v")
    op = item[2] if len(item) == 3 else EdgeOp.INSERT
    if isinstance(op, str):
        try:
            op = {"insert": EdgeOp.INSERT, "+": EdgeOp.INSERT,
                  "delete": EdgeOp.DELETE, "-": EdgeOp.DELETE}[op]
        except KeyError:
            raise RequestError(f"bad update op: {op!r}") from None
    try:
        op = EdgeOp(op)
    except ValueError:
        raise RequestError(f"bad update op: {op!r}") from None
    return EdgeUpdate(u, v, op)


# ---------------------------------------------------------------------- #
# requests
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ApiRequest:
    """Base class: the ``op`` tag and write/read classification."""

    #: Stable operation name, the dispatch tag of the wire protocol.
    op: ClassVar[str] = ""
    #: Writes are scheduling barriers: reads never coalesce across one.
    is_write: ClassVar[bool] = False

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op}


@dataclass(frozen=True)
class TopKQuery(ApiRequest):
    """Certified top-k PPR ranking personalized to ``source``."""

    op: ClassVar[str] = "top_k"

    source: int = 0
    k: int | None = None
    consistency: Consistency = FRESH
    #: Optional latency budget; excluded from equality so deadline-carrying
    #: reads still coalesce with their deadline-free twins.
    deadline: Deadline | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        _vertex(self.source, "source")
        _optional_k(self.k)
        if not isinstance(self.consistency, Consistency):
            raise RequestError(
                f"consistency must be a Consistency, got {self.consistency!r}"
            )
        _optional_deadline(self.deadline)

    def to_dict(self) -> dict[str, Any]:
        payload = {"op": self.op, "source": self.source,
                   "consistency": self.consistency.to_dict()}
        if self.k is not None:
            payload["k"] = self.k
        if self.deadline is not None:
            payload["timeout_ms"] = self.deadline.budget_ms
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TopKQuery":
        if "source" not in payload:
            raise RequestError("top_k requires a 'source' field")
        return cls(
            source=payload["source"],
            k=payload.get("k"),
            consistency=Consistency.from_dict(payload.get("consistency", FRESH)),
            deadline=_deadline_from_payload(payload),
        )


@dataclass(frozen=True)
class BatchQuery(ApiRequest):
    """Many top-k reads answered together (cold sources admitted batched)."""

    op: ClassVar[str] = "batch"

    sources: tuple[int, ...] = ()
    k: int | None = None
    consistency: Consistency = FRESH
    #: Optional latency budget (tightest member when built by coalescing).
    deadline: Deadline | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", _vertex_tuple(self.sources, "sources"))
        _optional_k(self.k)
        if not isinstance(self.consistency, Consistency):
            raise RequestError(
                f"consistency must be a Consistency, got {self.consistency!r}"
            )
        _optional_deadline(self.deadline)

    def to_dict(self) -> dict[str, Any]:
        payload = {"op": self.op, "sources": list(self.sources),
                   "consistency": self.consistency.to_dict()}
        if self.k is not None:
            payload["k"] = self.k
        if self.deadline is not None:
            payload["timeout_ms"] = self.deadline.budget_ms
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatchQuery":
        if "sources" not in payload:
            raise RequestError("batch requires a 'sources' field")
        return cls(
            sources=payload["sources"],
            k=payload.get("k"),
            consistency=Consistency.from_dict(payload.get("consistency", FRESH)),
            deadline=_deadline_from_payload(payload),
        )


@dataclass(frozen=True)
class HubQuery(ApiRequest):
    """Certified top-k contributors of one hub (requires the hub tier)."""

    op: ClassVar[str] = "hub_top_k"

    hub: int = 0
    k: int | None = None

    def __post_init__(self) -> None:
        _vertex(self.hub, "hub")
        _optional_k(self.k)

    def to_dict(self) -> dict[str, Any]:
        payload = {"op": self.op, "hub": self.hub}
        if self.k is not None:
            payload["k"] = self.k
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HubQuery":
        if "hub" not in payload:
            raise RequestError("hub_top_k requires a 'hub' field")
        return cls(hub=payload["hub"], k=payload.get("k"))


@dataclass(frozen=True)
class ScoreQuery(ApiRequest):
    """One PPR score: ``target``'s value in ``source``'s vector, with bound."""

    op: ClassVar[str] = "score"

    source: int = 0
    target: int = 0
    consistency: Consistency = FRESH
    deadline: Deadline | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        _vertex(self.source, "source")
        _vertex(self.target, "target")
        if not isinstance(self.consistency, Consistency):
            raise RequestError(
                f"consistency must be a Consistency, got {self.consistency!r}"
            )
        _optional_deadline(self.deadline)

    def to_dict(self) -> dict[str, Any]:
        payload = {"op": self.op, "source": self.source, "target": self.target,
                   "consistency": self.consistency.to_dict()}
        if self.deadline is not None:
            payload["timeout_ms"] = self.deadline.budget_ms
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScoreQuery":
        for name in ("source", "target"):
            if name not in payload:
                raise RequestError(f"score requires a {name!r} field")
        return cls(
            source=payload["source"],
            target=payload["target"],
            consistency=Consistency.from_dict(payload.get("consistency", FRESH)),
            deadline=_deadline_from_payload(payload),
        )


@dataclass(frozen=True)
class IngestBatch(ApiRequest):
    """One ordered batch of edge updates (the write operation).

    ``expect_version`` is optimistic concurrency: the batch applies only
    if the engine's snapshot version still equals it (else the gateway
    raises :class:`~repro.errors.ConflictError`, stable code ``CONFLICT``).
    """

    op: ClassVar[str] = "ingest"
    is_write: ClassVar[bool] = True

    updates: tuple[EdgeUpdate, ...] = ()
    expect_version: int | None = None
    #: Optional latency budget — writes get deadline semantics too.
    deadline: Deadline | None = field(default=None, compare=False, repr=False)
    #: Engine-internal: a pre-built CSR view of the post-batch graph
    #: (sliding-window harnesses pass one); never serialized.
    snapshot: "CSRView | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.updates, (str, bytes)) or not isinstance(
            self.updates, Sequence
        ):
            raise RequestError("updates must be a sequence of edge updates")
        object.__setattr__(
            self, "updates", tuple(_parse_update(u) for u in self.updates)
        )
        if self.expect_version is not None and (
            isinstance(self.expect_version, bool)
            or not isinstance(self.expect_version, int)
        ):
            raise RequestError(
                f"expect_version must be an integer, got {self.expect_version!r}"
            )
        _optional_deadline(self.deadline)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "op": self.op,
            "updates": [[u.u, u.v, "insert" if u.is_insert else "delete"]
                        for u in self.updates],
        }
        if self.expect_version is not None:
            payload["expect_version"] = self.expect_version
        if self.deadline is not None:
            payload["timeout_ms"] = self.deadline.budget_ms
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "IngestBatch":
        if "updates" not in payload:
            raise RequestError("ingest requires an 'updates' field")
        return cls(
            updates=payload["updates"],
            expect_version=payload.get("expect_version"),
            deadline=_deadline_from_payload(payload),
        )


@dataclass(frozen=True)
class Prefetch(ApiRequest):
    """Queue sources for batched admission without answering queries."""

    op: ClassVar[str] = "prefetch"

    sources: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", _vertex_tuple(self.sources, "sources"))

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op, "sources": list(self.sources)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Prefetch":
        if "sources" not in payload:
            raise RequestError("prefetch requires a 'sources' field")
        return cls(sources=payload["sources"])


@dataclass(frozen=True)
class CheckpointNow(ApiRequest):
    """Force a durable checkpoint (requires an attached state store)."""

    op: ClassVar[str] = "checkpoint"
    is_write: ClassVar[bool] = True

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CheckpointNow":
        return cls()


@dataclass(frozen=True)
class Stats(ApiRequest):
    """Structured serving metrics (the ``/v1/stats`` payload)."""

    op: ClassVar[str] = "stats"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Stats":
        return cls()


@dataclass(frozen=True)
class Health(ApiRequest):
    """Liveness probe: engine identity and size counters."""

    op: ClassVar[str] = "health"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Health":
        return cls()


@dataclass(frozen=True)
class Ready(ApiRequest):
    """Readiness probe: can this tier serve traffic *right now*?

    Distinct from :class:`Health` (liveness): a cluster mid-failover or
    with dead/ejected replicas is alive but not ready, and answers with
    per-replica state so a load balancer can act (``/v1/readyz``).
    """

    op: ClassVar[str] = "ready"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Ready":
        return cls()


#: Stable op tag -> request class; the wire protocol's dispatch table.
REQUEST_TYPES: dict[str, type[ApiRequest]] = {
    cls.op: cls
    for cls in (
        TopKQuery,
        BatchQuery,
        HubQuery,
        ScoreQuery,
        IngestBatch,
        Prefetch,
        CheckpointNow,
        Stats,
        Health,
        Ready,
    )
}


def request_from_dict(payload: Any) -> ApiRequest:
    """Parse one wire-format request (``{"op": ..., ...}``).

    A payload without an ``op`` tag is treated as a ``top_k`` query — the
    overwhelmingly common operation — so ``{"source": 7}`` just works.
    """
    if not isinstance(payload, Mapping):
        raise RequestError(f"request must be a JSON object, got {payload!r}")
    op = payload.get("op", TopKQuery.op)
    cls = REQUEST_TYPES.get(op)
    if cls is None:
        raise RequestError(
            f"unknown op {op!r} (have: {sorted(REQUEST_TYPES)})"
        )
    return cls.from_dict(payload)
