"""Typed gateway API — the single public entry point of the engine.

The seam every future scaling layer (sharding, async execution,
replication) plugs into, separating a typed query/operation protocol from
the storage/execution engines beneath it:

* :mod:`~repro.api.requests` / :mod:`~repro.api.responses` — frozen
  dataclasses for every operation, with per-request
  :class:`~repro.api.requests.Consistency` levels (FRESH / BOUNDED / ANY)
  and stable error codes;
* :class:`~repro.api.gateway.Gateway` — validates, routes, and schedules
  mixed read/write traffic (reads coalesced between write barriers,
  writes orderable against snapshot versions);
* :class:`~repro.api.client.Client` — the embedded canonical API;
* :mod:`~repro.api.http` — the stdlib HTTP/JSON front-end behind
  ``python -m repro serve``.

See ``docs/api.md`` for the protocol reference.
"""

from .client import Client
from .gateway import Gateway
from .http import GatewayHTTPServer, HttpClient, make_server, serve_http
from .requests import (
    ANY,
    FRESH,
    ApiRequest,
    BatchQuery,
    CheckpointNow,
    Consistency,
    Health,
    HubQuery,
    IngestBatch,
    Prefetch,
    REQUEST_TYPES,
    ScoreQuery,
    Stats,
    TopKQuery,
    consistency_for,
    request_from_dict,
)
from .responses import (
    ApiResponse,
    BatchResult,
    CheckpointResult,
    ErrorInfo,
    HealthResult,
    HubResult,
    IngestResult,
    PrefetchResult,
    ScoreResult,
    StatsResult,
    TopKResult,
)

__all__ = [
    "ANY",
    "ApiRequest",
    "ApiResponse",
    "BatchQuery",
    "BatchResult",
    "CheckpointNow",
    "CheckpointResult",
    "Client",
    "Consistency",
    "ErrorInfo",
    "FRESH",
    "Gateway",
    "GatewayHTTPServer",
    "Health",
    "HealthResult",
    "HttpClient",
    "HubQuery",
    "HubResult",
    "IngestBatch",
    "IngestResult",
    "Prefetch",
    "PrefetchResult",
    "REQUEST_TYPES",
    "ScoreQuery",
    "ScoreResult",
    "Stats",
    "StatsResult",
    "TopKQuery",
    "TopKResult",
    "consistency_for",
    "make_server",
    "request_from_dict",
    "serve_http",
]
