"""Typed gateway API — the single public entry point of the engine.

The seam every future scaling layer (sharding, async execution,
replication) plugs into, separating a typed query/operation protocol from
the storage/execution engines beneath it:

* :mod:`~repro.api.requests` / :mod:`~repro.api.responses` — frozen
  dataclasses for every operation, with per-request
  :class:`~repro.api.requests.Consistency` levels (FRESH / BOUNDED / ANY)
  and stable error codes;
* :class:`~repro.api.gateway.Gateway` — validates, routes, and schedules
  mixed read/write traffic (reads coalesced between write barriers,
  writes orderable against snapshot versions);
* :class:`~repro.api.client.Client` — the embedded canonical API;
* :mod:`~repro.api.admission` — bounded-queue backpressure and priority
  load shedding (ANY reads shed first) behind
  :attr:`~repro.config.ApiConfig.admission_queue`;
* :mod:`~repro.api.metrics` — Prometheus text rendering of the stats
  surface (``GET /v1/metrics``);
* :mod:`~repro.api.http` — the stdlib HTTP/JSON front-end behind
  ``python -m repro serve``.

See ``docs/api.md`` for the protocol reference and ``docs/load.md`` for
the overload model (deadlines, admission, shedding).
"""

from .admission import (
    AdmissionController,
    AdmissionQueue,
    Priority,
    priority_of,
    shed_threshold,
)
from .client import Client
from .gateway import Gateway
from .http import GatewayHTTPServer, HttpClient, make_server, serve_http
from .metrics import render_prometheus
from .requests import (
    ANY,
    FRESH,
    ApiRequest,
    BatchQuery,
    CheckpointNow,
    Consistency,
    Deadline,
    Health,
    HubQuery,
    IngestBatch,
    Prefetch,
    Ready,
    REQUEST_TYPES,
    ScoreQuery,
    Stats,
    TopKQuery,
    consistency_for,
    request_from_dict,
)
from .resilience import CircuitBreaker, DeterministicJitter, RetryPolicy
from .responses import (
    ApiResponse,
    BatchResult,
    CheckpointResult,
    ErrorInfo,
    HealthResult,
    HubResult,
    IngestResult,
    PrefetchResult,
    ReadyResult,
    ScoreResult,
    StatsResult,
    TopKResult,
)

__all__ = [
    "ANY",
    "AdmissionController",
    "AdmissionQueue",
    "ApiRequest",
    "ApiResponse",
    "BatchQuery",
    "BatchResult",
    "CheckpointNow",
    "CheckpointResult",
    "CircuitBreaker",
    "Client",
    "Consistency",
    "Deadline",
    "DeterministicJitter",
    "ErrorInfo",
    "FRESH",
    "Gateway",
    "GatewayHTTPServer",
    "Health",
    "HealthResult",
    "HttpClient",
    "HubQuery",
    "HubResult",
    "IngestBatch",
    "IngestResult",
    "Prefetch",
    "PrefetchResult",
    "Priority",
    "REQUEST_TYPES",
    "Ready",
    "ReadyResult",
    "RetryPolicy",
    "ScoreQuery",
    "ScoreResult",
    "Stats",
    "StatsResult",
    "TopKQuery",
    "TopKResult",
    "consistency_for",
    "make_server",
    "priority_of",
    "render_prometheus",
    "request_from_dict",
    "serve_http",
    "shed_threshold",
]
