"""The embedded client — the canonical programmatic API.

:class:`Client` wraps a :class:`~repro.api.gateway.Gateway` (or builds
one around a ``PPRService``) and exposes one ergonomic method per
operation of the typed protocol. Error-carrying responses are raised as
the typed exceptions they encode (reconstructed through the stable codes
of :mod:`repro.errors`), so embedded callers keep ``except VertexError:``
semantics while remote callers see the same codes as JSON.

The examples and the CLI use this client; the HTTP front-end
(:mod:`repro.api.http`) serves the same protocol over a socket.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from .. import obs
from ..config import ApiConfig, ConsistencyLevel
from ..graph.update import EdgeUpdate
from .gateway import Gateway
from .requests import (
    ApiRequest,
    BatchQuery,
    CheckpointNow,
    Consistency,
    Health,
    HubQuery,
    IngestBatch,
    Prefetch,
    Ready,
    ScoreQuery,
    Stats,
    TopKQuery,
)
from .responses import (
    ApiResponse,
    BatchResult,
    CheckpointResult,
    HealthResult,
    HubResult,
    IngestResult,
    PrefetchResult,
    ReadyResult,
    ScoreResult,
    StatsResult,
    TopKResult,
)

if TYPE_CHECKING:
    from ..serve.service import PPRService


class Client:
    """Typed embedded client bound to one gateway.

    Parameters
    ----------
    target:
        A :class:`~repro.api.gateway.Gateway` (or any gateway-shaped
        front door exposing ``submit``/``submit_many``, e.g. the
        replicated :class:`~repro.cluster.gateway.ClusterGateway`), or a
        ``PPRService`` to front (its own gateway is used, so one engine
        never ends up behind two schedulers).
    config:
        Only consulted when ``target`` is a service *without* a gateway
        yet; an existing gateway keeps its configuration.

    Examples
    --------
    >>> from repro import DynamicDiGraph, PPRService
    >>> client = PPRService(DynamicDiGraph([(1, 0), (2, 0), (0, 1)])).api
    >>> client.top_k(0, k=2).vertices[0]
    0
    >>> client.ingest([(1, 2)]).accepted
    1
    """

    def __init__(
        self,
        target: "Gateway | PPRService",
        config: ApiConfig | None = None,
    ) -> None:
        if isinstance(target, Gateway) or (
            hasattr(target, "submit") and hasattr(target, "submit_many")
        ):
            self.gateway = target
        else:
            if config is not None and target._gateway is None:
                Gateway(target, config)  # registers itself as the service's
            self.gateway = target.gateway

    @property
    def config(self) -> ApiConfig:
        return self.gateway.config

    def _default_consistency(self) -> Consistency:
        level = self.config.default_consistency
        if level is ConsistencyLevel.BOUNDED:
            return Consistency.bounded(self.config.staleness_bound)
        return Consistency(level)

    def _send(self, request: ApiRequest) -> ApiResponse:
        # The embedded front door mints traces exactly like the HTTP one,
        # so embedded and remote callers sample the same way.
        ing = obs.ingress("client.request", op=request.op)
        with ing:
            obs.attach(request, ing.ctx)
            response = self.gateway.submit(request)
        if response.error is not None:
            raise response.error.to_exception()
        return response

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def top_k(
        self,
        source: int,
        k: int | None = None,
        *,
        consistency: Consistency | None = None,
    ) -> TopKResult:
        """Certified top-k ranking personalized to ``source``."""
        return self._send(
            TopKQuery(
                source=source,
                k=k,
                consistency=consistency or self._default_consistency(),
            )
        )

    def top_k_many(
        self,
        sources: Sequence[int],
        k: int | None = None,
        *,
        consistency: Consistency | None = None,
    ) -> BatchResult:
        """Top-k for many sources at once (cold admissions batched)."""
        return self._send(
            BatchQuery(
                sources=tuple(sources),
                k=k,
                consistency=consistency or self._default_consistency(),
            )
        )

    def score(
        self,
        source: int,
        target: int,
        *,
        consistency: Consistency | None = None,
    ) -> ScoreResult:
        """``target``'s PPR value in ``source``'s vector, with error bound."""
        return self._send(
            ScoreQuery(
                source=source,
                target=target,
                consistency=consistency or self._default_consistency(),
            )
        )

    def hub_top_k(self, hub: int, k: int | None = None) -> HubResult:
        """Certified top-k contributors of ``hub`` (hub tier required)."""
        return self._send(HubQuery(hub=hub, k=k))

    def stats(self) -> StatsResult:
        """Structured serving metrics (the ``/v1/stats`` payload)."""
        return self._send(Stats())

    def health(self) -> HealthResult:
        """Liveness probe with engine size counters."""
        return self._send(Health())

    def ready(self) -> ReadyResult:
        """Readiness probe: replica roster, primary identity, epoch.

        Unlike :meth:`health`, a degraded cluster does not raise — it
        answers with ``ready=False`` and the per-replica detail, the
        embedded twin of ``GET /v1/readyz`` returning 503.
        """
        return self._send(Ready())

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def ingest(
        self,
        updates: Sequence[EdgeUpdate] | Sequence[tuple[int, int]],
        *,
        expect_version: int | None = None,
    ) -> IngestResult:
        """Apply one ordered edge-update batch.

        Accepts :class:`~repro.graph.update.EdgeUpdate` objects or bare
        ``(u, v)`` pairs (treated as insertions). ``expect_version``
        makes the write conditional on the engine still being at that
        snapshot version (:class:`~repro.errors.ConflictError` otherwise).
        """
        return self._send(
            IngestBatch(updates=tuple(updates), expect_version=expect_version)
        )

    def prefetch(self, *sources: int) -> PrefetchResult:
        """Queue sources for the next batched admission."""
        return self._send(Prefetch(sources=sources))

    def checkpoint_now(self) -> CheckpointResult:
        """Force a durable checkpoint (requires an attached store)."""
        return self._send(CheckpointNow())

    # ------------------------------------------------------------------ #
    # raw protocol
    # ------------------------------------------------------------------ #

    def send(self, *requests: ApiRequest) -> list[ApiResponse]:
        """Submit a mixed request sequence through the scheduler.

        The raw :meth:`Gateway.submit_many` surface: responses come back
        in request order and carry :class:`~repro.api.responses.ErrorInfo`
        instead of raising, so one bad request does not void the batch.
        """
        ing = obs.ingress("client.request", requests=len(requests))
        with ing:
            for request in requests:
                obs.attach(request, ing.ctx)
            return self.gateway.submit_many(list(requests))

    def __repr__(self) -> str:
        return f"Client({self.gateway!r})"
