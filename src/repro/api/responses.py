"""Typed response protocol of the gateway API.

Mirror of :mod:`repro.api.requests`: one frozen dataclass per operation,
each carrying the common envelope — ``snapshot_version`` (the version the
answer is ε-approximate on), ``staleness`` (ingested updates the serving
state was behind at arrival), ``wall_time_s``, and a structured
:class:`ErrorInfo` (``None`` on success) mapped from the
:class:`~repro.errors.ReproError` hierarchy's stable codes. ``to_dict``
produces the exact JSON the HTTP front-end ships; embedded callers get
the same objects with the rich payloads (e.g.
:class:`~repro.core.certify.CertifiedEntry` rankings) intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, Mapping

from ..core.certify import CertifiedEntry
from ..errors import ReproError, error_from_dict

if TYPE_CHECKING:
    from ..core.stats import PushStats
    from ..serve.service import ServedQuery


@dataclass(frozen=True)
class ErrorInfo:
    """A failed operation, as stable protocol data.

    ``code`` is the stable machine-readable code of the originating
    exception class (see ``ERROR_CODES`` in :mod:`repro.errors`);
    ``details`` its structured context (e.g. the offending vertex id).
    """

    code: str
    message: str
    details: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorInfo":
        if isinstance(exc, ReproError):
            return cls(code=exc.code, message=str(exc), details=exc.details())
        return cls(code="INTERNAL", message=f"{type(exc).__name__}: {exc}")

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.details:
            payload["details"] = dict(self.details)
        return payload

    def to_exception(self) -> ReproError:
        """Reconstruct the typed exception (what the embedded client raises)."""
        return error_from_dict(self.to_dict())


def entry_to_dict(entry: CertifiedEntry) -> dict[str, Any]:
    """One certified ranking row as JSON-safe data (floats untouched)."""
    return {
        "vertex": entry.vertex,
        "estimate": entry.estimate,
        "lower": entry.lower,
        "upper": entry.upper,
        "position_certified": entry.position_certified,
    }


@dataclass(frozen=True)
class ApiResponse:
    """Base class: the common response envelope."""

    op: ClassVar[str] = ""

    #: Snapshot version the payload is ε-approximate on (-1 when n/a).
    snapshot_version: int = -1
    #: Ingested updates the serving state was behind at request arrival.
    staleness: int = 0
    wall_time_s: float = 0.0
    error: ErrorInfo | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def _payload(self) -> dict[str, Any]:
        """Operation-specific fields (subclass hook for :meth:`to_dict`)."""
        return {}

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "op": self.op,
            "ok": self.ok,
            "snapshot_version": self.snapshot_version,
            "staleness": self.staleness,
            "wall_time_s": self.wall_time_s,
        }
        if self.ok:
            payload.update(self._payload())
        else:
            payload["error"] = self.error.to_dict()
        return payload

    @classmethod
    def failure(
        cls,
        error: ErrorInfo,
        *,
        snapshot_version: int = -1,
        wall_time_s: float = 0.0,
        **fields_: Any,
    ) -> "ApiResponse":
        """An error-carrying response of this operation's type."""
        return cls(
            snapshot_version=snapshot_version,
            wall_time_s=wall_time_s,
            error=error,
            **fields_,
        )


@dataclass(frozen=True)
class TopKResult(ApiResponse):
    """Answer to a :class:`~repro.api.requests.TopKQuery`."""

    op: ClassVar[str] = "top_k"

    source: int = -1
    k: int = 0
    entries: tuple[CertifiedEntry, ...] = ()
    cold: bool = False
    #: The engine's native answer object (embedded callers only).
    served: "ServedQuery | None" = field(default=None, compare=False, repr=False)

    @property
    def vertices(self) -> list[int]:
        """Ranked vertex ids, best first."""
        return [entry.vertex for entry in self.entries]

    def _payload(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "k": self.k,
            "cold": self.cold,
            "entries": [entry_to_dict(e) for e in self.entries],
        }


@dataclass(frozen=True)
class BatchResult(ApiResponse):
    """Answers to a :class:`~repro.api.requests.BatchQuery`, request order."""

    op: ClassVar[str] = "batch"

    results: tuple[TopKResult, ...] = ()

    def _payload(self) -> dict[str, Any]:
        return {"results": [r.to_dict() for r in self.results]}


@dataclass(frozen=True)
class HubResult(ApiResponse):
    """Answer to a :class:`~repro.api.requests.HubQuery`."""

    op: ClassVar[str] = "hub_top_k"

    hub: int = -1
    k: int = 0
    entries: tuple[CertifiedEntry, ...] = ()

    @property
    def vertices(self) -> list[int]:
        return [entry.vertex for entry in self.entries]

    def _payload(self) -> dict[str, Any]:
        return {
            "hub": self.hub,
            "k": self.k,
            "entries": [entry_to_dict(e) for e in self.entries],
        }


@dataclass(frozen=True)
class ScoreResult(ApiResponse):
    """Answer to a :class:`~repro.api.requests.ScoreQuery`."""

    op: ClassVar[str] = "score"

    source: int = -1
    target: int = -1
    estimate: float = 0.0
    #: Rigorous sup-norm bound: |estimate - true PPR| <= error_bound.
    error_bound: float = 0.0
    cold: bool = False

    def _payload(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "estimate": self.estimate,
            "error_bound": self.error_bound,
            "cold": self.cold,
        }


@dataclass(frozen=True)
class IngestResult(ApiResponse):
    """Acknowledgement of an :class:`~repro.api.requests.IngestBatch`.

    ``snapshot_version`` (envelope) is the *post-batch* version;
    ``previous_version`` the one the batch applied against.
    """

    op: ClassVar[str] = "ingest"

    accepted: int = 0
    previous_version: int = -1
    pushes: int = 0
    #: Push traces of the refreshes the ingest ran (embedded callers only).
    traces: "Mapping[int, PushStats]" = field(
        default_factory=dict, compare=False, repr=False
    )

    def _payload(self) -> dict[str, Any]:
        return {
            "accepted": self.accepted,
            "previous_version": self.previous_version,
            "pushes": self.pushes,
        }


@dataclass(frozen=True)
class PrefetchResult(ApiResponse):
    """Acknowledgement of a :class:`~repro.api.requests.Prefetch`."""

    op: ClassVar[str] = "prefetch"

    requested: int = 0
    #: Sources queued for the next admission batch after this request.
    pending: int = 0

    def _payload(self) -> dict[str, Any]:
        return {"requested": self.requested, "pending": self.pending}


@dataclass(frozen=True)
class CheckpointResult(ApiResponse):
    """Acknowledgement of a :class:`~repro.api.requests.CheckpointNow`."""

    op: ClassVar[str] = "checkpoint"

    path: str = ""
    written: bool = False

    def _payload(self) -> dict[str, Any]:
        return {"path": self.path, "written": self.written}


@dataclass(frozen=True)
class StatsResult(ApiResponse):
    """Structured metrics (:meth:`repro.serve.ServiceMetrics.to_dict`)."""

    op: ClassVar[str] = "stats"

    stats: Mapping[str, Any] = field(default_factory=dict)

    def _payload(self) -> dict[str, Any]:
        return {"stats": dict(self.stats)}


@dataclass(frozen=True)
class HealthResult(ApiResponse):
    """Liveness payload (:class:`~repro.api.requests.Health`)."""

    op: ClassVar[str] = "health"

    status: str = "ok"
    graph_version: int = -1
    num_vertices: int = 0
    num_edges: int = 0
    resident: int = 0
    hubs: int = 0

    def _payload(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "graph_version": self.graph_version,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "resident": self.resident,
            "hubs": self.hubs,
        }


@dataclass(frozen=True)
class ReadyResult(ApiResponse):
    """Readiness payload (:class:`~repro.api.requests.Ready`).

    ``ready`` is the load-balancer bit (``/v1/readyz`` maps it to
    200/503); ``replicas`` carries one dict per worker — alive flag,
    role, applied-version lag behind the acked head, circuit-breaker
    state — and ``primary``/``epoch`` identify the current write
    authority. A single-process gateway is trivially ready.
    """

    op: ClassVar[str] = "ready"

    ready: bool = True
    status: str = "ready"
    primary: str | None = "embedded"
    epoch: int = 0
    replicas: tuple[dict[str, Any], ...] = ()

    def _payload(self) -> dict[str, Any]:
        return {
            "ready": self.ready,
            "status": self.status,
            "primary": self.primary,
            "epoch": self.epoch,
            "replicas": [dict(r) for r in self.replicas],
        }
