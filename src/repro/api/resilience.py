"""Client- and coordinator-side resilience primitives.

Three small, deterministic building blocks (``docs/faults.md``):

* :class:`DeterministicJitter` — backoff jitter without an RNG. Same
  discipline as trace sampling (:mod:`repro.obs.trace`): a golden-ratio
  accumulator walks the unit interval in the most uniformly-spread
  deterministic sequence there is, so two runs of the same workload
  retry at the same instants and chaos schedules stay reproducible.
* :class:`RetryPolicy` — bounded retries with exponential backoff, as a
  frozen value object the HTTP client evaluates per attempt.
* :class:`CircuitBreaker` — per-replica ejection, counted in *requests*
  rather than wall-clock so tests and chaos schedules are deterministic:
  after ``failure_threshold`` consecutive failures the breaker opens and
  the replica leaves the read rotation; after ``cooldown`` denied
  requests it half-opens and one probe request decides whether it
  closes again.

None of these sleep or read a clock themselves — callers own time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["CircuitBreaker", "DeterministicJitter", "RetryPolicy"]

#: Fractional part of the golden ratio: successive multiples mod 1.0 are
#: the lowest-discrepancy (most evenly spread) sequence on [0, 1).
_GOLDEN = 0.6180339887498949


class DeterministicJitter:
    """A no-RNG jitter source: the golden-ratio low-discrepancy walk."""

    __slots__ = ("_accumulator",)

    def __init__(self) -> None:
        self._accumulator = 0.0

    def next(self) -> float:
        """The next jitter value in [0, 1)."""
        self._accumulator = (self._accumulator + _GOLDEN) % 1.0
        return self._accumulator


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``attempts`` counts *total* tries (1 = no retry). The backoff before
    retry ``n`` (1-based) is ``base_backoff_s * multiplier**(n-1)``
    capped at ``max_backoff_s``, scaled down by up to ``jitter`` of
    itself using a caller-supplied jitter value in [0, 1) — jitter only
    ever shortens the wait, so the cap is a hard bound.
    """

    attempts: int = 3
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_backoff_s < 0:
            raise ConfigError("base_backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1.0")
        if self.max_backoff_s < self.base_backoff_s:
            raise ConfigError("max_backoff_s must be >= base_backoff_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")

    def backoff_s(self, retry: int, jitter_value: float) -> float:
        """Seconds to wait before 1-based retry ``retry``."""
        raw = min(
            self.base_backoff_s * self.multiplier ** (retry - 1),
            self.max_backoff_s,
        )
        return raw * (1.0 - self.jitter * jitter_value)


class CircuitBreaker:
    """Request-counted circuit breaker for one replica.

    States: ``closed`` (healthy, all requests pass), ``open`` (ejected —
    :meth:`allow` denies, and each denial counts toward the cooldown),
    ``half_open`` (cooldown elapsed; exactly one probe request passes
    and its outcome decides the next state). Counting denials instead of
    reading a clock keeps the breaker deterministic under virtual-step
    chaos schedules.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 3, cooldown: int = 8) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if cooldown < 1:
            raise ConfigError("cooldown must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = self.CLOSED
        self.failures = 0
        self.denials = 0
        self._probing = False

    def allow(self) -> bool:
        """May a request be routed here? Denials advance the cooldown."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            self.denials += 1
            if self.denials >= self.cooldown:
                self.state = self.HALF_OPEN
                self._probing = True
                return True
            return False
        # Half-open: one probe is in flight; hold further traffic until
        # its outcome arrives.
        if not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0
        self.denials = 0
        self._probing = False

    def record_failure(self) -> None:
        if self.state == self.HALF_OPEN:
            self._trip()
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = self.OPEN
        self.denials = 0
        self._probing = False

    def to_dict(self) -> dict[str, int | str]:
        return {
            "state": self.state,
            "failures": self.failures,
            "denials": self.denials,
        }

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state!r}, failures={self.failures})"
