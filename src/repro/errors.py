"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish graph errors from configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied (e.g. ``alpha >= 1``)."""


class GraphError(ReproError):
    """Base class for errors related to graph structure or mutation."""


class VertexError(GraphError, KeyError):
    """A vertex id is invalid or unknown to the graph."""

    def __init__(self, vertex: object, message: str | None = None) -> None:
        self.vertex = vertex
        super().__init__(message or f"invalid vertex: {vertex!r}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message readable
        return self.args[0]


class EdgeError(GraphError, KeyError):
    """An edge does not exist (for deletion) or is malformed."""

    def __init__(self, u: object, v: object, message: str | None = None) -> None:
        self.u = u
        self.v = v
        super().__init__(message or f"invalid edge: {u!r} -> {v!r}")

    def __str__(self) -> str:
        return self.args[0]


class StreamError(ReproError):
    """An edge stream or sliding window was used incorrectly."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, iterations: int, residual: float, message: str | None = None) -> None:
        self.iterations = iterations
        self.residual = residual
        super().__init__(
            message
            or f"failed to converge after {iterations} iterations (residual={residual:.3e})"
        )


class BackendError(ReproError):
    """A push/execution backend was asked to do something it cannot."""


class StoreError(ReproError):
    """The durable state store hit corrupt, missing, or mismatched data."""
