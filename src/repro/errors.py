"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish graph errors from configuration errors.

Every class carries a stable machine-readable :attr:`~ReproError.code` —
the contract the gateway API (:mod:`repro.api`) exposes to clients: codes
never change once shipped, even if class names or messages do. An
exception serializes to a JSON-safe payload with :meth:`~ReproError.to_dict`
and round-trips back (best effort, preserving the concrete class) through
:func:`error_from_dict`; see ``docs/api.md`` for the full code table.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""

    #: Stable machine-readable error code; part of the public API protocol.
    code = "REPRO"

    def __str__(self) -> str:
        # KeyError-derived subclasses would otherwise inherit its repr-style
        # quoting, which renders badly inside JSON payloads.
        return str(self.args[0]) if self.args else self.__class__.__name__

    def details(self) -> dict[str, Any]:
        """JSON-safe structured context beyond the message (subclass hook)."""
        return {}

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe payload: stable code, message, and structured details."""
        payload: dict[str, Any] = {"code": self.code, "message": str(self)}
        details = self.details()
        if details:
            payload["details"] = details
        return payload


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied (e.g. ``alpha >= 1``)."""

    code = "CONFIG"


class RequestError(ReproError, ValueError):
    """A malformed API request: bad payload, unknown operation, bad field."""

    code = "REQUEST"


class ConflictError(ReproError):
    """An optimistic-concurrency check failed (snapshot version moved)."""

    code = "CONFLICT"

    def __init__(
        self, expected: int, actual: int, message: str | None = None
    ) -> None:
        self.expected = expected
        self.actual = actual
        super().__init__(
            message
            or f"version conflict: expected snapshot {expected}, engine is at {actual}"
        )

    def details(self) -> dict[str, Any]:
        return {"expected": self.expected, "actual": self.actual}


class GraphError(ReproError):
    """Base class for errors related to graph structure or mutation."""

    code = "GRAPH"


class VertexError(GraphError, KeyError):
    """A vertex id is invalid or unknown to the graph."""

    code = "VERTEX"

    def __init__(self, vertex: object, message: str | None = None) -> None:
        self.vertex = vertex
        super().__init__(message or f"invalid vertex: {vertex!r}")

    def details(self) -> dict[str, Any]:
        return {"vertex": self.vertex}


class EdgeError(GraphError, KeyError):
    """An edge does not exist (for deletion) or is malformed."""

    code = "EDGE"

    def __init__(self, u: object, v: object, message: str | None = None) -> None:
        self.u = u
        self.v = v
        super().__init__(message or f"invalid edge: {u!r} -> {v!r}")

    def details(self) -> dict[str, Any]:
        return {"u": self.u, "v": self.v}


class StreamError(ReproError):
    """An edge stream or sliding window was used incorrectly."""

    code = "STREAM"


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""

    code = "CONVERGENCE"

    def __init__(self, iterations: int, residual: float, message: str | None = None) -> None:
        self.iterations = iterations
        self.residual = residual
        super().__init__(
            message
            or f"failed to converge after {iterations} iterations (residual={residual:.3e})"
        )

    def details(self) -> dict[str, Any]:
        return {"iterations": self.iterations, "residual": self.residual}


class BackendError(ReproError):
    """A push/execution backend was asked to do something it cannot."""

    code = "BACKEND"


class StoreError(ReproError):
    """The durable state store hit corrupt, missing, or mismatched data."""

    code = "STORE"


class OverloadError(ReproError):
    """The gateway shed this request to protect the queue under overload.

    Shedding is deliberate and load-dependent, not a bug: the admission
    queue was past the threshold for this request's priority class
    (``ANY`` reads shed first, then ``BOUNDED``, then ``FRESH``/writes;
    see ``docs/load.md``). Clients should back off and retry; the HTTP
    front-end maps this code to ``429 Too Many Requests``.
    """

    code = "OVERLOAD"

    def __init__(
        self,
        priority: str = "",
        depth: int = 0,
        limit: int = 0,
        message: str | None = None,
    ) -> None:
        self.priority = priority
        self.depth = depth
        self.limit = limit
        super().__init__(
            message
            or (
                f"request shed under overload: {priority or 'request'} class "
                f"at queue depth {depth}/{limit}"
            )
        )

    def details(self) -> dict[str, Any]:
        return {"priority": self.priority, "depth": self.depth, "limit": self.limit}


class DeadlineError(ReproError):
    """A request's deadline expired before (or while) it was served.

    Raised when the per-request deadline (``timeout_ms`` on the wire)
    elapses in the admission queue, under the gateway lock, or waiting on
    a replica. The HTTP front-end maps this code to ``503``.
    """

    code = "DEADLINE"

    def __init__(
        self,
        budget_ms: float = 0.0,
        elapsed_ms: float = 0.0,
        message: str | None = None,
    ) -> None:
        self.budget_ms = budget_ms
        self.elapsed_ms = elapsed_ms
        super().__init__(
            message
            or (
                f"deadline exceeded: budget {budget_ms:.0f} ms, "
                f"elapsed {elapsed_ms:.0f} ms"
            )
        )

    def details(self) -> dict[str, Any]:
        return {"budget_ms": self.budget_ms, "elapsed_ms": self.elapsed_ms}


class ClusterError(ReproError):
    """The replicated serving tier lost a replica it could not replace.

    Raised when a worker process dies beyond its respawn budget, fails
    its spawn handshake, or comes back at a version the primary cannot
    reconcile. A single replica crash is *not* an error — the cluster
    respawns and recovers it transparently (see ``docs/cluster.md``).
    """

    code = "CLUSTER"


#: Stable code -> exception class. The reverse of each class's ``code``;
#: consumed by :func:`error_from_dict` and the API protocol docs.
ERROR_CODES: dict[str, type[ReproError]] = {
    cls.code: cls
    for cls in (
        ReproError,
        ConfigError,
        RequestError,
        ConflictError,
        GraphError,
        VertexError,
        EdgeError,
        StreamError,
        ConvergenceError,
        BackendError,
        StoreError,
        OverloadError,
        DeadlineError,
        ClusterError,
    )
}


def error_from_dict(payload: dict[str, Any]) -> ReproError:
    """Reconstruct an exception from a :meth:`ReproError.to_dict` payload.

    The concrete class is recovered through its stable code (unknown codes
    fall back to plain :class:`ReproError`); structured details become
    attributes again. Construction bypasses subclass ``__init__`` so the
    round-trip works regardless of constructor signature.
    """
    cls = ERROR_CODES.get(str(payload.get("code", "")), ReproError)
    exc = cls.__new__(cls)
    Exception.__init__(exc, str(payload.get("message", "")))
    for key, value in dict(payload.get("details", {})).items():
        setattr(exc, key, value)
    return exc
