"""repro — Parallel Personalized PageRank on Dynamic Graphs (VLDB 2017).

A full reproduction of Guo, Li, Sha, Tan, *Parallel Personalized PageRank
on Dynamic Graphs*, PVLDB 11(1), 2017: incremental PPR maintenance via the
local-update scheme, parallelized with batch processing, eager propagation
and local duplicate detection, plus every baseline the paper evaluates
(sequential local update, incremental Monte-Carlo, a Ligra-style
vertex-centric framework), a simulated-hardware benchmark harness that
regenerates each figure of the evaluation, and a multi-query serving
layer (:mod:`repro.serve`) answering many sources from maintained state.

Documentation: ``README.md`` (install/quickstart), ``docs/architecture.md``
(module map and paper-section mapping), ``docs/serving.md`` (serving layer).

Quickstart
----------
>>> from repro import DynamicDiGraph, DynamicPPRTracker, PPRConfig, insertions
>>> graph = DynamicDiGraph([(1, 0), (2, 0), (2, 1)])
>>> tracker = DynamicPPRTracker(graph, source=0, config=PPRConfig(epsilon=1e-6))
>>> stats = tracker.apply_batch(insertions([(0, 2), (1, 2)]))
>>> tracker.estimate(0) > 0
True
"""

from .api import (
    Client,
    Consistency,
    ErrorInfo,
    Gateway,
    HttpClient,
    request_from_dict,
)
from .cluster import ClusterGateway, PPRCluster
from .config import (
    ApiConfig,
    Backend,
    CatchUpPolicy,
    ClusterConfig,
    ConsistencyLevel,
    FsyncPolicy,
    PartitionerKind,
    Phase,
    PlacementPolicy,
    PPRConfig,
    PushVariant,
    RefreshPolicy,
    ServeConfig,
    ShardConfig,
    StoreConfig,
)
from .core.analysis import (
    parallel_bound_directed,
    parallel_bound_undirected,
    parallel_loss,
    residual_change_bound,
    sequential_bound,
)
from .core.certify import (
    certified_comparison,
    certified_top_k,
    convergence_report,
    error_bound,
    residual_decay,
)
from .core.groundtruth import ground_truth_linear, ground_truth_ppr, max_estimate_error
from .core.hub_index import DynamicHubIndex, select_hubs
from .core.invariant import check_invariant, invariant_violation, restore_invariant
from .core.push_parallel import parallel_local_push
from .core.push_sequential import cpu_base_update, cpu_seq_update, sequential_local_push
from .core.state import PPRState
from .core.stats import BatchStats, IterationRecord, PushStats
from .core.tracker import DynamicPPRTracker, MultiSourceTracker
from .errors import (
    ERROR_CODES,
    BackendError,
    ClusterError,
    ConfigError,
    ConflictError,
    ConvergenceError,
    EdgeError,
    GraphError,
    ReproError,
    RequestError,
    StoreError,
    StreamError,
    VertexError,
    error_from_dict,
)
from .graph import (
    CSRGraph,
    DeltaCSRGraph,
    DATASETS,
    DatasetSpec,
    DynamicDiGraph,
    EdgeOp,
    EdgeStream,
    EdgeUpdate,
    LabeledDiGraph,
    SlidingWindow,
    WindowSlide,
    deletions,
    insertions,
    load_dataset,
    random_permutation_stream,
)
from .parallel import (
    CPUCostModel,
    GPUCostModel,
    LigraCostModel,
    MonteCarloCostModel,
    profile_cpu,
    profile_gpu,
)
from .shard import PPRShards, ShardedGateway
from .serve import (
    AdmissionPool,
    PPRService,
    ResidentSource,
    ServedQuery,
    ServedScore,
    ServiceMetrics,
    SourceCache,
)
from .store import RecoveryResult, StateStore, WriteAheadLog, recover_service

__version__ = "1.0.0"

__all__ = [
    "AdmissionPool",
    "ApiConfig",
    "Backend",
    "BackendError",
    "BatchStats",
    "CPUCostModel",
    "CSRGraph",
    "CatchUpPolicy",
    "Client",
    "ClusterConfig",
    "ClusterError",
    "ClusterGateway",
    "Consistency",
    "ConsistencyLevel",
    "DeltaCSRGraph",
    "ConfigError",
    "ConflictError",
    "ConvergenceError",
    "ERROR_CODES",
    "ErrorInfo",
    "DATASETS",
    "DatasetSpec",
    "DynamicDiGraph",
    "DynamicHubIndex",
    "DynamicPPRTracker",
    "EdgeError",
    "EdgeOp",
    "EdgeStream",
    "EdgeUpdate",
    "FsyncPolicy",
    "GPUCostModel",
    "Gateway",
    "GraphError",
    "HttpClient",
    "IterationRecord",
    "LabeledDiGraph",
    "LigraCostModel",
    "MonteCarloCostModel",
    "MultiSourceTracker",
    "PPRCluster",
    "PPRConfig",
    "PPRService",
    "PPRShards",
    "PPRState",
    "PartitionerKind",
    "Phase",
    "PlacementPolicy",
    "PushStats",
    "PushVariant",
    "RecoveryResult",
    "RefreshPolicy",
    "ReproError",
    "RequestError",
    "ResidentSource",
    "ServeConfig",
    "ServedQuery",
    "ServedScore",
    "ServiceMetrics",
    "ShardConfig",
    "ShardedGateway",
    "SlidingWindow",
    "SourceCache",
    "StateStore",
    "StoreConfig",
    "StoreError",
    "StreamError",
    "VertexError",
    "WindowSlide",
    "WriteAheadLog",
    "certified_comparison",
    "certified_top_k",
    "check_invariant",
    "convergence_report",
    "cpu_base_update",
    "cpu_seq_update",
    "deletions",
    "error_bound",
    "error_from_dict",
    "ground_truth_linear",
    "ground_truth_ppr",
    "insertions",
    "invariant_violation",
    "load_dataset",
    "max_estimate_error",
    "parallel_bound_directed",
    "parallel_bound_undirected",
    "parallel_local_push",
    "parallel_loss",
    "profile_cpu",
    "profile_gpu",
    "random_permutation_stream",
    "recover_service",
    "request_from_dict",
    "residual_change_bound",
    "residual_decay",
    "restore_invariant",
    "select_hubs",
    "sequential_bound",
    "sequential_local_push",
]
