"""Incremental delta-CSR snapshots: per-batch overlays over a frozen base.

:class:`~repro.graph.csr.CSRGraph` snapshots are immutable, so prior to
this module every consumer that needed a fresh view after an update batch
paid a full O(n + m) rebuild — on the serving layer's ingest hot path
that rebuild, not the push itself, dominated steady-state throughput at
the paper's small batch sizes. Dynamic-graph systems (LLAMA's delta
snapshots, GraphOne's hybrid store) solve this with a compact read-
optimized base plus a small mutable overlay that is periodically
consolidated; :class:`DeltaCSRGraph` is that discipline for our in-CSR.

Representation
--------------
* ``base`` — an immutable :class:`CSRGraph` (the last consolidation);
* ``_rows`` — replacement in-adjacency rows for exactly the vertices
  whose in-neighborhood changed since ``base`` (a few per batch);
* ``_patched`` — a dense boolean mask over vertex ids marking which rows
  are overridden (vectorized membership tests on the hot path);
* ``dout`` — the *current* dense out-degree array, maintained
  incrementally per batch.

Every read — :meth:`gather_in_edges`, :meth:`in_neighbors`,
:meth:`in_degrees` — resolves patched vertices against the overlay and
everything else against the base, so a view after ``b`` batches costs
O(sum of touched-vertex degrees) to build instead of O(m), while reads
stay within a small constant of the frozen CSR.

Order exactness
---------------
The overlay is built two ways, each *bit-compatible* with the full
rebuild it replaces:

* :meth:`apply_updates` re-materializes the rows of batch-touched
  vertices from the live :class:`~repro.graph.digraph.DynamicDiGraph`
  (:meth:`~repro.graph.digraph.DynamicDiGraph.in_row`), which reproduces
  the adjacency-dict iteration order
  :meth:`CSRGraph.from_digraph <repro.graph.csr.CSRGraph.from_digraph>`
  would store. Merged neighbor iteration therefore feeds the vectorized
  push the *same float summation order* as a rebuilt snapshot, and
  :meth:`consolidate` produces arrays equal to ``from_digraph`` —
  checkpointed rebuilds stay bit-identical (``docs/performance.md``).
* :meth:`apply_edge_delta` maintains sliding-window order (rows are
  window-edge subsequences): a slide appends the inserted sources and
  drops the deleted (oldest) ones, which are always a row prefix. This
  is the :meth:`repro.graph.stream.SlidingWindow.delta_snapshot` mode,
  bit-compatible with ``CSRGraph.from_edge_array`` over the window.

Once the overlay footprint exceeds ``threshold * m`` the view is
consolidated into a fresh frozen base (amortized O(m) numpy merge, no
Python per-edge loop), bounding both read overhead and memory.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ConfigError, GraphError
from .csr import CSRGraph
from .digraph import DynamicDiGraph
from .update import EdgeUpdate

#: Default consolidation trigger: consolidate once the overlay holds more
#: than this fraction of the base's edges (see ``docs/performance.md``).
DEFAULT_OVERLAY_THRESHOLD = 0.25

_EMPTY_ROW = np.empty(0, dtype=np.int64)


def interleave_undirected(edges: np.ndarray) -> np.ndarray:
    """Each edge followed immediately by its reverse (undirected model).

    The one definition of the undirected expansion order shared by
    :meth:`repro.graph.stream.SlidingWindow.snapshot` and
    :meth:`DeltaCSRGraph.apply_edge_delta` — it is load-bearing for their
    bit-exactness contract: per-edge interleaving keeps every window row
    a stream-ordered subsequence, so slides stay suffix appends and
    prefix drops.
    """
    both = np.empty((2 * len(edges), 2), dtype=np.int64)
    both[0::2] = edges
    both[1::2] = edges[:, ::-1]
    return both


def _flat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i]+counts[i])`` ranges, loop-free."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)


class DeltaCSRGraph:
    """A CSR-compatible snapshot view: frozen base + per-batch row overlay.

    Implements the narrow snapshot interface the push engines consume
    (``dout``, ``num_vertices``, ``num_edges``, :meth:`gather_in_edges`,
    :meth:`in_neighbors`, :meth:`in_degree`, :meth:`in_degrees`,
    :meth:`ensure_covers`), so it can stand in for a
    :class:`~repro.graph.csr.CSRGraph` everywhere a snapshot is shared —
    the vectorized push, the multiprocess backend, the Ligra baseline,
    admission pools and hub re-convergence.

    Views are persistent (apply methods return a *new* view sharing the
    base and row arrays), so an in-flight consumer of the previous
    version is never mutated under its feet.
    """

    __slots__ = (
        "base",
        "dout",
        "_rows",
        "_patched",
        "num_vertices",
        "num_edges",
        "_kernel",
    )

    def __init__(
        self,
        base: CSRGraph,
        dout: np.ndarray,
        rows: dict[int, np.ndarray],
        patched: np.ndarray,
        num_edges: int,
    ) -> None:
        if len(dout) < base.num_vertices:
            raise GraphError(
                f"dout covers {len(dout)} ids, base needs {base.num_vertices}"
            )
        self.base = base
        self.dout = dout
        self._rows = rows
        self._patched = patched
        self.num_vertices = len(dout)
        self.num_edges = num_edges
        self._kernel: dict | None = None

    @classmethod
    def wrap(cls, base: CSRGraph) -> "DeltaCSRGraph":
        """An empty overlay over ``base`` (reads delegate entirely to it)."""
        return cls(
            base,
            base.dout,
            {},
            np.zeros(base.num_vertices, dtype=bool),
            base.num_edges,
        )

    # ------------------------------------------------------------------ #
    # overlay construction
    # ------------------------------------------------------------------ #

    def with_capacity(self, capacity: int) -> "DeltaCSRGraph":
        """A view whose dense arrays span ``capacity`` vertex ids.

        Registering a vertex grows the graph's id space without touching
        any adjacency; this pads the overlay instead of forcing the full
        rebuild the frozen CSR would need.
        """
        if capacity <= self.num_vertices:
            return self
        dout = np.zeros(capacity, dtype=np.int64)
        dout[: self.num_vertices] = self.dout
        patched = np.zeros(capacity, dtype=bool)
        patched[: self.num_vertices] = self._patched
        return DeltaCSRGraph(self.base, dout, dict(self._rows), patched, self.num_edges)

    def apply_updates(
        self, graph: DynamicDiGraph, updates: Sequence[EdgeUpdate]
    ) -> "DeltaCSRGraph":
        """The view after one ingested batch (graph-backed, order-exact).

        ``graph`` must *already reflect* ``updates`` — the serving layer
        mutates the shared graph once per update and then derives the new
        snapshot. Cost is O(batch + sum of touched in-degrees + n_copy)
        where the copies are flat memcpys, never a per-edge Python loop
        over the whole graph.
        """
        cap = max(graph.capacity, self.num_vertices)
        dout = np.zeros(cap, dtype=np.int64)
        dout[: self.num_vertices] = self.dout
        patched = np.zeros(cap, dtype=bool)
        patched[: self.num_vertices] = self._patched
        if updates:
            ins = np.fromiter(
                (u.u for u in updates if u.is_insert), dtype=np.int64
            )
            dels = np.fromiter(
                (u.u for u in updates if u.is_delete), dtype=np.int64
            )
            if ins.size:
                dout += np.bincount(ins, minlength=cap)
            if dels.size:
                dout -= np.bincount(dels, minlength=cap)
        rows = dict(self._rows)
        for v in {u.v for u in updates}:
            rows[v] = graph.in_row(v)
            patched[v] = True
        return DeltaCSRGraph(self.base, dout, rows, patched, graph.num_edges)

    def apply_edge_delta(
        self,
        insert_edges: np.ndarray,
        delete_edges: np.ndarray,
        *,
        capacity: int | None = None,
        undirected: bool = False,
    ) -> "DeltaCSRGraph":
        """The view after one window slide (edge-array-backed).

        Maintains :meth:`CSRGraph.from_edge_array` window order without a
        backing graph: inserted edges append their source to the target's
        row; deleted edges are the *oldest* window edges, so their
        contributions are a prefix of each touched row and are dropped
        from the front. ``undirected`` expands every edge into both
        directions, interleaved per edge — matching
        :meth:`repro.graph.stream.SlidingWindow.snapshot`.
        """
        insert_edges = np.asarray(insert_edges, dtype=np.int64).reshape(-1, 2)
        delete_edges = np.asarray(delete_edges, dtype=np.int64).reshape(-1, 2)
        high = self.num_vertices
        if insert_edges.size:
            high = max(high, int(insert_edges.max()) + 1)
        if capacity is not None:
            if capacity < high:
                raise GraphError(
                    f"capacity {capacity} is smaller than the id space {high}"
                )
            high = capacity
        view = self.with_capacity(high)

        inserts = (
            interleave_undirected(insert_edges)
            if undirected and insert_edges.size
            else insert_edges
        )
        deletes = (
            interleave_undirected(delete_edges)
            if undirected and delete_edges.size
            else delete_edges
        )

        if deletes.size and int(deletes.max()) >= high:
            raise GraphError(
                f"delete edges reference id {int(deletes.max())}"
                f" outside the view's id space {high}"
            )
        dout = view.dout.copy()
        if inserts.size:
            dout += np.bincount(inserts[:, 0], minlength=high)
        if deletes.size:
            dout -= np.bincount(deletes[:, 0], minlength=high)

        rows = dict(view._rows)
        patched = view._patched.copy()
        drop: dict[int, int] = {}
        for v in deletes[:, 1].tolist():
            drop[v] = drop.get(v, 0) + 1
        append: dict[int, list[int]] = {}
        for u, v in inserts.tolist():
            append.setdefault(v, []).append(u)
        for v in drop.keys() | append.keys():
            row = rows[v] if patched[v] else view._base_row(v)
            k = drop.get(v, 0)
            if k:
                if k > len(row):
                    raise GraphError(
                        f"cannot drop {k} oldest in-edges of {v}: row has {len(row)}"
                    )
                row = row[k:]
            extra = append.get(v)
            if extra:
                row = np.concatenate([row, np.asarray(extra, dtype=np.int64)])
            rows[v] = row
            patched[v] = True
        num_edges = self.num_edges + len(inserts) - len(deletes)
        return DeltaCSRGraph(view.base, dout, rows, patched, num_edges)

    # ------------------------------------------------------------------ #
    # reads (the narrow snapshot interface)
    # ------------------------------------------------------------------ #

    def _base_row(self, u: int) -> np.ndarray:
        if u >= self.base.num_vertices:
            return _EMPTY_ROW
        return self.base.in_neighbors(u)

    def in_neighbors(self, u: int) -> np.ndarray:
        """In-neighbor ids of ``u`` (multiplicities expanded)."""
        if self._patched[u]:
            return self._rows[u]
        return self._base_row(u)

    def in_degree(self, u: int) -> int:
        if self._patched[u]:
            return len(self._rows[u])
        if u >= self.base.num_vertices:
            return 0
        return self.base.in_degree(u)

    def in_degrees(self, ids: np.ndarray) -> np.ndarray:
        """In-degrees of ``ids`` (overlay-aware, vectorized)."""
        counts = np.zeros(len(ids), dtype=np.int64)
        in_base = ids < self.base.num_vertices
        fb = ids[in_base]
        counts[in_base] = self.base.indptr[fb + 1] - self.base.indptr[fb]
        for i in np.flatnonzero(self._patched[ids]).tolist():
            counts[i] = len(self._rows[int(ids[i])])
        return counts

    def gather_in_edges(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All in-edges of ``frontier`` vertices as flat arrays.

        Same contract (and, for graph-backed overlays, the same edge
        order) as :meth:`CSRGraph.gather_in_edges`: unpatched rows are
        gathered from the base in one vectorized copy; patched rows —
        a handful per batch — are spliced in at their frontier position.
        """
        if not self._rows and self.num_vertices == self.base.num_vertices:
            return self.base.gather_in_edges(frontier)
        patched = self._patched[frontier]
        counts = self.in_degrees(frontier)
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        dst = np.cumsum(counts) - counts
        targets = np.empty(total, dtype=np.int64)
        plain = ~patched & (frontier < self.base.num_vertices)
        if plain.any():
            cnts = counts[plain]
            flat_src = _flat_ranges(self.base.indptr[frontier[plain]], cnts)
            flat_dst = _flat_ranges(dst[plain], cnts)
            targets[flat_dst] = self.base.indices[flat_src]
        for i in np.flatnonzero(patched).tolist():
            row = self._rows[int(frontier[i])]
            targets[dst[i] : dst[i] + len(row)] = row
        sources = np.repeat(np.arange(len(frontier), dtype=np.int64), counts)
        return sources, targets

    def ensure_covers(self, capacity: int) -> None:
        """Reject this view as a snapshot of a graph needing ``capacity`` ids."""
        if self.num_vertices < capacity:
            raise ConfigError(
                f"snapshot covers {self.num_vertices} ids,"
                f" graph needs {capacity}"
            )

    # ------------------------------------------------------------------ #
    # consolidation policy
    # ------------------------------------------------------------------ #

    @property
    def overlay_entries(self) -> int:
        """Adjacency entries held by the overlay (patched row lengths)."""
        return sum(len(row) for row in self._rows.values())

    @property
    def overlay_rows(self) -> int:
        """Number of vertices whose row the overlay overrides."""
        return len(self._rows)

    @property
    def overlay_fraction(self) -> float:
        """Overlay footprint relative to the base edge count."""
        return self.overlay_entries / max(self.base.num_edges, 1)

    def should_consolidate(
        self, threshold: float = DEFAULT_OVERLAY_THRESHOLD
    ) -> bool:
        """Whether the overlay outgrew ``threshold`` (see module docs)."""
        if threshold <= 0.0:
            raise ConfigError(f"threshold must be > 0, got {threshold}")
        return self.overlay_fraction > threshold

    def consolidate(self) -> CSRGraph:
        """Merge overlay and base into a fresh frozen :class:`CSRGraph`.

        Pure-numpy O(n + m) merge (flat copies, no per-edge Python loop).
        *Order-exact*: for graph-backed overlays the result equals
        ``CSRGraph.from_digraph`` of the current graph bit-for-bit, so a
        consolidation never perturbs float summation order relative to a
        full rebuild — checkpointed/recovered runs stay bit-identical.
        """
        cap = self.num_vertices
        base = self.base
        din = np.zeros(cap, dtype=np.int64)
        base_counts = np.diff(base.indptr)
        din[: base.num_vertices] = base_counts
        patched_ids = np.flatnonzero(self._patched)
        for v in patched_ids.tolist():
            din[v] = len(self._rows[v])
        indptr = np.zeros(cap + 1, dtype=np.int64)
        np.cumsum(din, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        plain = ~self._patched[: base.num_vertices]
        plain_ids = np.flatnonzero(plain)
        if plain_ids.size:
            cnts = base_counts[plain_ids]
            flat_src = _flat_ranges(base.indptr[plain_ids], cnts)
            flat_dst = _flat_ranges(indptr[plain_ids], cnts)
            indices[flat_dst] = base.indices[flat_src]
        if patched_ids.size:
            rows = [self._rows[v] for v in patched_ids.tolist()]
            flat_dst = _flat_ranges(indptr[patched_ids], din[patched_ids])
            indices[flat_dst] = np.concatenate(rows)
        return CSRGraph(indptr, indices, self.dout.copy())

    def consolidated(self) -> "DeltaCSRGraph":
        """A fresh empty overlay over :meth:`consolidate`'s result."""
        return DeltaCSRGraph.wrap(self.consolidate())

    def kernel_arrays(self) -> dict:
        """The flat-row layout consumed by the compiled push kernel.

        Patched rows are packed into one ``overlay_indices`` buffer and
        flagged in ``row_overlay``; everything else addresses the frozen
        base in place. Per-row resolution in the kernel then reads the
        exact same edge sequence :meth:`gather_in_edges` splices together,
        keeping float summation order — and therefore every bit of the
        result — identical. Cached: views are persistent, never mutated.
        """
        ka = self._kernel
        if ka is None:
            base = self.base
            n = self.num_vertices
            bn = base.num_vertices
            row_start = np.zeros(n, dtype=np.int64)
            row_count = np.zeros(n, dtype=np.int64)
            row_overlay = np.zeros(n, dtype=np.uint8)
            row_start[:bn] = base.indptr[:-1]
            row_count[:bn] = np.diff(base.indptr)
            patched_ids = np.flatnonzero(self._patched)
            if patched_ids.size:
                rows = [self._rows[int(v)] for v in patched_ids.tolist()]
                lens = np.fromiter(
                    (len(row) for row in rows), dtype=np.int64, count=len(rows)
                )
                starts = np.zeros(len(rows), dtype=np.int64)
                np.cumsum(lens[:-1], out=starts[1:])
                overlay_indices = (
                    np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
                )
                row_start[patched_ids] = starts
                row_count[patched_ids] = lens
                row_overlay[patched_ids] = 1
            else:
                overlay_indices = np.empty(0, dtype=np.int64)
            ka = {
                "num_rows": int(n),
                "row_start": row_start,
                "row_count": row_count,
                "row_overlay": row_overlay,
                "base_indices": np.ascontiguousarray(base.indices),
                "overlay_indices": np.ascontiguousarray(overlay_indices),
                "dout": np.ascontiguousarray(self.dout),
            }
            self._kernel = ka
        return ka

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Approximate resident bytes (base + overlay arrays)."""
        overlay = sum(row.nbytes for row in self._rows.values())
        return (
            self.base.memory_bytes()
            + self.dout.nbytes
            + self._patched.nbytes
            + overlay
        )

    def __repr__(self) -> str:
        return (
            f"DeltaCSRGraph(n={self.num_vertices}, m={self.num_edges},"
            f" overlay={self.overlay_rows} rows/"
            f"{self.overlay_entries} entries,"
            f" base_m={self.base.num_edges})"
        )


#: The narrow snapshot interface every push engine consumes: ``dout``,
#: ``num_vertices``/``num_edges``, ``gather_in_edges``, ``in_neighbors``,
#: ``in_degree(s)`` and ``ensure_covers``. Either the frozen CSR or a
#: delta overlay view satisfies it.
CSRView = CSRGraph | DeltaCSRGraph
