"""Immutable CSR snapshots of a dynamic graph.

The vectorized push backend (and the Ligra baseline) operate on frozen
compressed-sparse-row adjacency. The tracker rebuilds a snapshot after each
restore-invariant batch; at the batch sizes of the paper's workloads the
rebuild is a small fraction of a slide and keeps the hot loops in numpy.

The snapshot stores the *in*-adjacency (``in_neighbors(u)`` for every
``u``), because the local push propagates residual from a frontier vertex
to its in-neighbors, plus the dense out-degree array used as the push
denominator.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, GraphError
from .digraph import DynamicDiGraph


class CSRGraph:
    """Frozen CSR view of the in-adjacency of a :class:`DynamicDiGraph`.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``capacity + 1``; in-neighbors of ``u``
        are ``indices[indptr[u]:indptr[u+1]]`` (multiplicities expanded).
    indices:
        ``int64`` array of in-neighbor vertex ids.
    dout:
        dense ``int64`` out-degree array indexed by vertex id.
    """

    __slots__ = ("indptr", "indices", "dout", "num_vertices", "num_edges", "_kernel")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, dout: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1 or dout.ndim != 1:
            raise GraphError("CSR arrays must be one-dimensional")
        if len(indptr) != len(dout) + 1:
            raise GraphError(
                f"indptr length {len(indptr)} must equal len(dout)+1 = {len(dout) + 1}"
            )
        if int(indptr[-1]) != len(indices):
            raise GraphError("indptr[-1] must equal len(indices)")
        self.indptr = indptr
        self.indices = indices
        self.dout = dout
        self.num_vertices = len(dout)
        self.num_edges = len(indices)
        self._kernel: dict | None = None

    @classmethod
    def from_digraph(cls, graph: DynamicDiGraph, capacity: int | None = None) -> "CSRGraph":
        """Snapshot ``graph``'s in-adjacency (O(n + m))."""
        cap = graph.capacity if capacity is None else capacity
        if cap < graph.capacity:
            raise GraphError(
                f"capacity {cap} is smaller than the graph's id space {graph.capacity}"
            )
        indptr = np.zeros(cap + 1, dtype=np.int64)
        din = graph.in_degree_array(cap)
        np.cumsum(din, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = indptr[:-1].copy()
        for u in graph.vertices():
            pos = cursor[u]
            for v, count in graph.in_neighbors(u):
                for _ in range(count):
                    indices[pos] = v
                    pos += 1
            cursor[u] = pos
        return cls(indptr, indices, graph.out_degree_array(cap))

    @classmethod
    def from_edge_array(cls, edges: np.ndarray, capacity: int | None = None) -> "CSRGraph":
        """Build a snapshot from an ``(m, 2)`` edge array in pure numpy.

        Much faster than :meth:`from_digraph` for large graphs; the
        sliding-window workloads keep the current window as an edge array
        precisely so snapshots stay O(m log m) in vectorized code.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphError(f"edges must have shape (m, 2), got {edges.shape}")
        if edges.size and int(edges.min()) < 0:
            raise GraphError("vertex ids must be >= 0")
        cap = int(edges.max()) + 1 if edges.size else 0
        if capacity is not None:
            if capacity < cap:
                raise GraphError(
                    f"capacity {capacity} is smaller than the edge id space {cap}"
                )
            cap = capacity
        sources = edges[:, 0]
        targets = edges[:, 1]
        dout = np.bincount(sources, minlength=cap).astype(np.int64)
        din = np.bincount(targets, minlength=cap).astype(np.int64)
        indptr = np.zeros(cap + 1, dtype=np.int64)
        np.cumsum(din, out=indptr[1:])
        order = np.argsort(targets, kind="stable")
        return cls(indptr, sources[order].astype(np.int64), dout)

    def in_neighbors(self, u: int) -> np.ndarray:
        """In-neighbor ids of ``u`` (multiplicities expanded)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def in_degree(self, u: int) -> int:
        return int(self.indptr[u + 1] - self.indptr[u])

    def in_degrees(self, ids: np.ndarray) -> np.ndarray:
        """In-degrees of ``ids`` as an array (vectorized :meth:`in_degree`).

        Part of the narrow snapshot interface (together with ``dout``,
        :meth:`gather_in_edges`, :meth:`in_neighbors` and
        :meth:`ensure_covers`) that the push engines and the Ligra
        baseline consume — implemented by both this frozen CSR and the
        delta overlay view (:class:`repro.graph.delta.DeltaCSRGraph`).
        """
        return self.indptr[ids + 1] - self.indptr[ids]

    def gather_in_edges(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All in-edges of ``frontier`` vertices as flat arrays.

        Returns ``(sources, targets)`` where ``targets[i]`` is the
        in-neighbor receiving propagation and ``sources[i]`` is the index
        *into frontier* of the vertex pushing it. Vectorized equivalent of
        the paper's nested ``parallel for`` at Algorithm 3, lines 19-20.
        """
        starts = self.indptr[frontier]
        ends = self.indptr[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # Build [starts[0]..ends[0]) ++ [starts[1]..ends[1]) ... without a loop:
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        flat = np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)
        sources = np.repeat(np.arange(len(frontier), dtype=np.int64), counts)
        return sources, self.indices[flat]

    def ensure_covers(self, capacity: int) -> None:
        """Reject this snapshot as a view of a graph needing ``capacity`` ids.

        The shared guard of every consumer that installs externally-built
        snapshots (trackers, the serving layer, the admission pool): the
        snapshot's dense arrays are indexed by vertex id, so it must span
        at least the graph's id space.
        """
        if self.num_vertices < capacity:
            raise ConfigError(
                f"snapshot covers {self.num_vertices} ids,"
                f" graph needs {capacity}"
            )

    def kernel_arrays(self) -> dict:
        """The flat-row layout consumed by the compiled push kernel.

        ``row_start``/``row_count`` address each vertex's in-row inside
        ``base_indices`` (a frozen CSR has no overlay rows, so
        ``row_overlay`` is all zeros and ``overlay_indices`` empty). Built
        once per snapshot and cached — the snapshot is immutable.
        """
        ka = self._kernel
        if ka is None:
            n = self.num_vertices
            ka = {
                "num_rows": int(n),
                "row_start": np.ascontiguousarray(self.indptr[:-1]),
                "row_count": np.diff(self.indptr),
                "row_overlay": np.zeros(n, dtype=np.uint8),
                "base_indices": np.ascontiguousarray(self.indices),
                "overlay_indices": np.empty(0, dtype=np.int64),
                "dout": np.ascontiguousarray(self.dout),
            }
            self._kernel = ka
        return ka

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the snapshot arrays."""
        return self.indptr.nbytes + self.indices.nbytes + self.dout.nbytes

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"
