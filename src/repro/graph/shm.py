"""Zero-copy snapshot sharing via POSIX shared memory.

Replica and shard bootstrap used to ship whole order-exact graph dumps
(and CSR arrays) through ``multiprocessing`` pipes — O(m) pickling per
worker, paid again on every respawn. This module moves those arrays into
named ``multiprocessing.shared_memory`` segments so workers *attach by
name* instead: the coordinator publishes one versioned, refcounted
segment per graph version (:class:`SnapshotPublisher`) and hands workers
a tiny picklable descriptor (:func:`SharedArrayBundle.descriptor`);
:func:`SharedArrayBundle.attach` maps it back into numpy views without
copying a byte.

Lifecycle and crash safety
--------------------------
* The **creator** keeps the segment registered with the stdlib resource
  tracker, so even a SIGKILLed coordinator gets its segments unlinked at
  tracker shutdown.
* **Attachers** are always child processes of the creator here, so they
  share the creator's tracker (the fd is inherited) — their implicit
  attach-time registration dedups against the creator's entry and must
  *not* be unregistered, or the creator's SIGKILL backstop (and its own
  clean unlink) would be lost with it.
* Segment names embed the creator pid; :func:`sweep_stale` unlinks any
  ``repro-shm-*`` segment whose creator is gone — the test suite runs it
  at session teardown, and it is safe to run any time (attached readers
  keep their mappings after an unlink; POSIX semantics).
* :class:`SnapshotPublisher` refcounts readers per version: a superseded
  version is unlinked as soon as its last reader releases it; the current
  version always stays mapped.
"""

from __future__ import annotations

import os
import secrets
import threading
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import GraphError

#: Every segment this library creates is named ``repro-shm-<pid>-<tag>-<token>``.
SEGMENT_PREFIX = "repro-shm"

_ALIGN = 8


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


class SharedArrayBundle:
    """A group of named numpy arrays packed into one shared segment.

    Create on the owner side with :meth:`create`; ship
    :attr:`descriptor` (a small picklable dict) to workers; map it back
    with :meth:`attach`. Attached views are read-only — snapshots are
    immutable by contract, and a worker scribbling on a shared CSR would
    corrupt every process at once.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: dict[str, tuple[str, tuple[int, ...], int]],
        meta: dict[str, Any],
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._layout = layout
        self._meta = dict(meta)
        self._owner = owner
        self._unlinked = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        tag: str = "snap",
        meta: dict[str, Any] | None = None,
    ) -> "SharedArrayBundle":
        """Copy ``arrays`` into a fresh named segment (the only copy ever)."""
        packed = {k: np.ascontiguousarray(v) for k, v in arrays.items()}
        layout: dict[str, tuple[str, tuple[int, ...], int]] = {}
        offset = 0
        for key, arr in packed.items():
            layout[key] = (str(arr.dtype), tuple(arr.shape), offset)
            offset = _aligned(offset + arr.nbytes)
        size = max(offset, 1)
        shm = None
        for _ in range(16):
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{tag}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(create=True, size=size, name=name)
                break
            except FileExistsError:  # pragma: no cover - token collision
                continue
        if shm is None:  # pragma: no cover - 16 collisions in a row
            raise GraphError("could not allocate a unique shared-memory name")
        for key, arr in packed.items():
            _, shape, off = layout[key]
            view = np.ndarray(shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            view[...] = arr
            del view
        return cls(shm, layout, meta or {}, owner=True)

    @classmethod
    def attach(cls, descriptor: dict[str, Any]) -> "SharedArrayBundle":
        """Map a published bundle by name (zero-copy; read-only views).

        Attach-time tracker registration (Python < 3.13 registers every
        attach) is deliberately left in place: workers inherit the
        creator's tracker, so the entry dedups and unregistering it here
        would strip the creator's crash-cleanup registration.
        """
        shm = shared_memory.SharedMemory(name=descriptor["segment"])
        layout = {
            key: (dtype, tuple(shape), offset)
            for key, (dtype, shape, offset) in descriptor["layout"].items()
        }
        return cls(shm, layout, descriptor.get("meta", {}), owner=False)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def meta(self) -> dict[str, Any]:
        return dict(self._meta)

    @property
    def descriptor(self) -> dict[str, Any]:
        """The picklable attach recipe (segment name + array layout)."""
        return {
            "segment": self._shm.name,
            "layout": {
                key: (dtype, list(shape), offset)
                for key, (dtype, shape, offset) in self._layout.items()
            },
            "meta": dict(self._meta),
        }

    def arrays(self) -> dict[str, np.ndarray]:
        """Numpy views over the segment (no copy; writes are rejected)."""
        out: dict[str, np.ndarray] = {}
        for key, (dtype, shape, offset) in self._layout.items():
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
            )
            view.flags.writeable = False
            out[key] = view
        return out

    def nbytes(self) -> int:
        return self._shm.size

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop this process's mapping (call after all views are released)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views still alive
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner only; mapped readers survive)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        kind = "owner" if self._owner else "attached"
        return (
            f"SharedArrayBundle({self._shm.name}, {kind},"
            f" {len(self._layout)} arrays, {self._shm.size} bytes)"
        )


class SnapshotPublisher:
    """Versioned, refcounted shared-memory snapshots (creator side).

    One bundle per published graph version. ``retain``/``release`` track
    readers mid-bootstrap: a *superseded* version is unlinked when its
    last reader releases (or immediately at publish time when nobody holds
    it); the current version stays available for respawns until it is
    superseded or the publisher closes.
    """

    def __init__(self, tag: str = "snap") -> None:
        self._tag = tag
        self._bundles: dict[int, SharedArrayBundle] = {}
        self._refs: dict[int, int] = {}
        self._current: int | None = None
        self._lock = threading.Lock()

    @property
    def current_version(self) -> int | None:
        return self._current

    def versions(self) -> list[int]:
        with self._lock:
            return sorted(self._bundles)

    def refcount(self, version: int) -> int:
        with self._lock:
            return self._refs.get(version, 0)

    def publish(
        self,
        version: int,
        arrays: dict[str, np.ndarray],
        *,
        meta: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Publish ``arrays`` as ``version``; supersedes the previous one.

        Idempotent per version (re-publishing returns the existing
        descriptor without copying again).
        """
        with self._lock:
            bundle = self._bundles.get(version)
            if bundle is None:
                payload = dict(meta or {})
                payload.setdefault("version", version)
                bundle = SharedArrayBundle.create(
                    arrays, tag=f"{self._tag}-v{version}", meta=payload
                )
                self._bundles[version] = bundle
                self._refs.setdefault(version, 0)
                previous = self._current
                self._current = version
                if previous is not None and previous != version:
                    self._maybe_drop(previous)
            return bundle.descriptor

    def descriptor(self, version: int | None = None) -> dict[str, Any]:
        with self._lock:
            v = self._current if version is None else version
            if v is None or v not in self._bundles:
                raise GraphError(f"no published snapshot for version {version!r}")
            return self._bundles[v].descriptor

    def retain(self, version: int | None = None) -> dict[str, Any]:
        """Pin a version for a reader being bootstrapped; returns descriptor."""
        with self._lock:
            v = self._current if version is None else version
            if v is None or v not in self._bundles:
                raise GraphError(f"no published snapshot for version {version!r}")
            self._refs[v] = self._refs.get(v, 0) + 1
            return self._bundles[v].descriptor

    def release(self, version: int) -> None:
        """Drop one reader pin; unlinks a superseded, fully-drained version."""
        with self._lock:
            if version not in self._bundles:
                return
            self._refs[version] = max(0, self._refs.get(version, 0) - 1)
            if version != self._current:
                self._maybe_drop(version)

    def _maybe_drop(self, version: int) -> None:
        # lock held
        if self._refs.get(version, 0) > 0:
            return
        bundle = self._bundles.pop(version, None)
        self._refs.pop(version, None)
        if bundle is not None:
            bundle.unlink()
            bundle.close()

    def close(self) -> None:
        """Unlink every published version (readers keep their mappings)."""
        with self._lock:
            for bundle in self._bundles.values():
                bundle.unlink()
                bundle.close()
            self._bundles.clear()
            self._refs.clear()
            self._current = None

    def __enter__(self) -> "SnapshotPublisher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def sweep_stale(*, include_alive: bool = False) -> list[str]:
    """Unlink ``repro-shm-*`` segments whose creator process is gone.

    The backstop for SIGKILLed coordinators/workers mid-bootstrap (the
    resource tracker catches most of these; a tracker killed alongside
    its process cannot). Safe to run concurrently with live clusters:
    segments of living creators are skipped unless ``include_alive``.
    Returns the names removed. No-op on hosts without ``/dev/shm``.
    """
    removed: list[str] = []
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-POSIX-shm host
        return removed
    for path in root.glob(f"{SEGMENT_PREFIX}-*"):
        parts = path.name.split("-")
        pid = int(parts[2]) if len(parts) > 2 and parts[2].isdigit() else None
        if pid is not None and _pid_alive(pid) and not include_alive:
            continue
        try:
            path.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent sweep
            continue
        except OSError:  # pragma: no cover - permissions
            continue
        removed.append(path.name)
    return removed
