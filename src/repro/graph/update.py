"""Edge updates — the unit of the dynamic graph model (Section 2.2).

A stream is an unbounded sequence of batches ``delta_E_t``; each element is
``(u, v, op)`` meaning the directed edge ``u -> v`` is inserted or deleted
at time step ``t``.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence
from typing import NamedTuple


class EdgeOp(enum.IntEnum):
    """Update type; values match the theory's ``op`` in {+1, -1} (Lemma 3)."""

    INSERT = 1
    DELETE = -1

    @property
    def symbol(self) -> str:
        return "+" if self is EdgeOp.INSERT else "-"


class EdgeUpdate(NamedTuple):
    """A single directed-edge update ``(u, v, op)``."""

    u: int
    v: int
    op: EdgeOp = EdgeOp.INSERT

    @property
    def is_insert(self) -> bool:
        return self.op is EdgeOp.INSERT

    @property
    def is_delete(self) -> bool:
        return self.op is EdgeOp.DELETE

    def reversed(self) -> "EdgeUpdate":
        """The same operation applied to the reverse edge ``v -> u``.

        Undirected graphs are modeled as two directed edges; applying an
        undirected update means applying the update and its reverse.
        """
        return EdgeUpdate(self.v, self.u, self.op)

    def inverse(self) -> "EdgeUpdate":
        """The update that undoes this one (insert <-> delete)."""
        other = EdgeOp.DELETE if self.op is EdgeOp.INSERT else EdgeOp.INSERT
        return EdgeUpdate(self.u, self.v, other)

    def __str__(self) -> str:
        return f"{self.op.symbol}({self.u}->{self.v})"


def insertions(edges: Iterable[tuple[int, int]]) -> list[EdgeUpdate]:
    """Wrap ``(u, v)`` pairs as insertion updates."""
    return [EdgeUpdate(u, v, EdgeOp.INSERT) for u, v in edges]


def deletions(edges: Iterable[tuple[int, int]]) -> list[EdgeUpdate]:
    """Wrap ``(u, v)`` pairs as deletion updates."""
    return [EdgeUpdate(u, v, EdgeOp.DELETE) for u, v in edges]


def undirected(updates: Iterable[EdgeUpdate]) -> Iterator[EdgeUpdate]:
    """Expand each update into itself plus its reverse (undirected model).

    The theory (Theorem 3) counts an undirected update as two directed
    updates; this helper performs exactly that expansion.
    """
    for upd in updates:
        yield upd
        yield upd.reversed()


def count_ops(updates: Sequence[EdgeUpdate]) -> tuple[int, int]:
    """Return ``(n_insertions, n_deletions)`` in ``updates``."""
    ins = sum(1 for u in updates if u.is_insert)
    return ins, len(updates) - ins
