"""Dynamic-graph substrate: graphs, updates, CSR snapshots, generators, streams."""

from .csr import CSRGraph
from .datasets import DATASETS, DatasetSpec, load_dataset
from .delta import DeltaCSRGraph
from .digraph import DynamicDiGraph
from .generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    preferential_attachment_graph,
    rmat_graph,
    star_graph,
)
from .labeled import LabeledDiGraph
from .shm import SharedArrayBundle, SnapshotPublisher, sweep_stale
from .stream import EdgeStream, SlidingWindow, WindowSlide, random_permutation_stream
from .update import EdgeOp, EdgeUpdate, deletions, insertions

__all__ = [
    "CSRGraph",
    "DATASETS",
    "DatasetSpec",
    "DeltaCSRGraph",
    "DynamicDiGraph",
    "EdgeOp",
    "EdgeStream",
    "EdgeUpdate",
    "LabeledDiGraph",
    "SharedArrayBundle",
    "SlidingWindow",
    "SnapshotPublisher",
    "WindowSlide",
    "complete_graph",
    "cycle_graph",
    "deletions",
    "erdos_renyi_graph",
    "insertions",
    "load_dataset",
    "path_graph",
    "preferential_attachment_graph",
    "random_permutation_stream",
    "rmat_graph",
    "star_graph",
    "sweep_stale",
]
