"""Paper-dataset analogs.

The paper evaluates on five SNAP graphs (Section 5.1). No network access is
available in this environment, so each dataset is substituted by a
scaled-down synthetic analog that preserves the properties the local push
is sensitive to — directedness, average degree, and heavy-tailed degree
skew — generated deterministically from a fixed seed.

=============  ==================  =====================  =========================
Paper dataset  Paper size (n / m)  Analog size (n / m)    Generator
=============  ==================  =====================  =========================
Pokec          1.6M / 30.6M        16k / ~306k            R-MAT, directed
LiveJournal    4.8M / 68.9M        24k / ~345k            R-MAT, directed
Youtube        1.1M / 2.9M         11k / ~29k             R-MAT, undirected
Orkut          3.0M / 117.1M       7.5k / ~293k           R-MAT, undirected
Twitter        41.6M / 1.4B        41.6k / ~1.4M          R-MAT, directed
=============  ==================  =====================  =========================

(Undirected analogs list each undirected edge once; loading them expands to
two directed edges, and the sliding-window stream applies both directions
per update, as the paper's theory prescribes for the undirected model.)
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import ConfigError
from .digraph import DynamicDiGraph
from .generators import rmat_graph


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one paper-dataset analog."""

    name: str
    paper_vertices: int
    paper_edges: int
    num_vertices: int
    num_edges: int
    directed: bool
    seed: int
    description: str

    @property
    def scale_factor(self) -> float:
        """Edge-count ratio paper/analog (how much we scaled down)."""
        return self.paper_edges / self.num_edges

    @property
    def average_degree(self) -> float:
        return self.num_edges / self.num_vertices


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="pokec",
            paper_vertices=1_600_000,
            paper_edges=30_600_000,
            num_vertices=16_000,
            num_edges=306_000,
            directed=True,
            seed=1001,
            description="Slovak social network; directed friendship graph.",
        ),
        DatasetSpec(
            name="livejournal",
            paper_vertices=4_800_000,
            paper_edges=68_900_000,
            num_vertices=24_000,
            num_edges=345_000,
            directed=True,
            seed=1002,
            description="Blogging community; directed declared friendships.",
        ),
        DatasetSpec(
            name="youtube",
            paper_vertices=1_100_000,
            paper_edges=2_900_000,
            num_vertices=11_000,
            num_edges=29_000,
            directed=False,
            seed=1003,
            description="Youtube user friendships; undirected.",
        ),
        DatasetSpec(
            name="orkut",
            paper_vertices=3_000_000,
            paper_edges=117_100_000,
            num_vertices=7_500,
            num_edges=293_000,
            directed=False,
            seed=1004,
            description="Orkut social network; undirected, very dense.",
        ),
        DatasetSpec(
            name="twitter",
            paper_vertices=41_600_000,
            paper_edges=1_400_000_000,
            num_vertices=41_600,
            num_edges=1_400_000,
            directed=True,
            seed=1005,
            description="Twitter followed-by sample (2010); directed, largest.",
        ),
    ]
}


@lru_cache(maxsize=None)
def dataset_edges(name: str) -> np.ndarray:
    """Deterministic ``(m, 2)`` edge array for dataset ``name``.

    Cached: generating the Twitter analog takes a couple of seconds and is
    reused by every benchmark.
    """
    spec = get_spec(name)
    edges = rmat_graph(spec.num_vertices, spec.num_edges, rng=spec.seed)
    if not spec.directed:
        # Undirected analog: canonicalize (low, high) and drop duplicates so
        # each undirected edge appears exactly once.
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        keys = lo * spec.num_vertices + hi
        _, first = np.unique(keys, return_index=True)
        edges = np.column_stack([lo, hi])[np.sort(first)]
    edges.setflags(write=False)
    return edges


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec; raise :class:`ConfigError` for unknown names."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise ConfigError(f"unknown dataset {name!r}; known datasets: {known}") from None


def load_dataset(name: str) -> DynamicDiGraph:
    """Materialize the full analog graph (both directions when undirected)."""
    spec = get_spec(name)
    edges = dataset_edges(name)
    if spec.directed:
        return DynamicDiGraph.from_edges(map(tuple, edges.tolist()))
    return DynamicDiGraph.from_undirected_edges(map(tuple, edges.tolist()))


def top_degree_vertices(edges: np.ndarray, k: int) -> np.ndarray:
    """Vertex ids with the ``k`` largest out-degrees in ``edges``.

    Used by the Figure 7 workloads (top-10 / top-1K / top-1M source
    selection, scaled to the analog's size).
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    dout = np.bincount(edges[:, 0])
    k = min(k, len(dout))
    return np.argsort(dout)[::-1][:k].astype(np.int64)
