"""Graph persistence: whitespace edge lists and compressed ``.npz``.

Edge-list text files interoperate with SNAP-format downloads (``# ``
comments, one ``u v`` pair per line); ``.npz`` round-trips edge arrays
losslessly and fast.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import numpy as np

from ..errors import GraphError
from .digraph import DynamicDiGraph

PathLike = str | os.PathLike


def save_edge_list(
    edges: np.ndarray,
    path: PathLike,
    *,
    num_nodes: int | None = None,
    comment: str | None = None,
) -> None:
    """Write an ``(m, 2)`` edge array as a SNAP-style text edge list.

    ``num_nodes`` sets the ``# Nodes:`` header explicitly — pass the
    graph's vertex count when it exceeds ``edges.max() + 1`` (trailing
    isolated vertices never appear in the edge rows, so the inferred
    count undercounts them).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphError(f"edges must have shape (m, 2), got {edges.shape}")
    if num_nodes is None:
        num_nodes = int(edges.max()) + 1 if edges.size else 0
    with open(path, "w", encoding="utf-8") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"# {line}\n")
        fh.write(f"# Nodes: {num_nodes} Edges: {len(edges)}\n")
        np.savetxt(fh, edges, fmt="%d")


def load_edge_list(path: PathLike) -> np.ndarray:
    """Read a SNAP-style text edge list into an ``(m, 2)`` int64 array.

    The fast path hands the whole file to ``np.loadtxt`` (which skips
    ``#``/``%`` comment lines and blank lines in C); files it cannot
    parse — ragged rows, stray tokens — fall back to the per-line Python
    loop, which either succeeds or pinpoints the offending line.
    """
    path = Path(path)
    if not path.exists():
        raise GraphError(f"edge list not found: {path}")
    try:
        with warnings.catch_warnings():
            # An all-comment file is a valid empty edge list, not a warning.
            warnings.simplefilter("ignore", UserWarning)
            edges = np.loadtxt(
                path, dtype=np.int64, comments=("#", "%"), usecols=(0, 1), ndmin=2
            )
        return edges.reshape(-1, 2)
    except (ValueError, IndexError):
        pass  # ragged or malformed: re-parse line by line for a real error
    rows: list[tuple[int, int]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            rows.append((int(parts[0]), int(parts[1])))
    return np.array(rows, dtype=np.int64).reshape(-1, 2)


def save_npz(edges: np.ndarray, path: PathLike) -> None:
    """Save an edge array as compressed ``.npz``."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphError(f"edges must have shape (m, 2), got {edges.shape}")
    np.savez_compressed(path, edges=edges)


def load_npz(path: PathLike) -> np.ndarray:
    """Load an edge array saved by :func:`save_npz`."""
    path = Path(path)
    if not path.exists():
        raise GraphError(f"npz file not found: {path}")
    with np.load(path) as data:
        if "edges" not in data:
            raise GraphError(f"{path} does not contain an 'edges' array")
        return data["edges"].astype(np.int64)


def load_graph(path: PathLike) -> DynamicDiGraph:
    """Load a graph from ``.npz`` or text edge list based on extension."""
    path = Path(path)
    edges = load_npz(path) if path.suffix == ".npz" else load_edge_list(path)
    return DynamicDiGraph.from_edge_array(edges)
