"""Synthetic graph generators.

The paper evaluates on five SNAP social networks that are not available
offline; :mod:`repro.graph.datasets` substitutes scaled-down synthetic
analogs built from these generators. R-MAT and directed preferential
attachment reproduce the heavy-tailed degree distributions that drive
local-push frontier shapes; Erdos-Renyi and the utility graphs (star,
path, cycle, complete) serve tests and worked examples.

All generators return ``(m, 2)`` int64 edge arrays; callers wrap them in
:class:`~repro.graph.digraph.DynamicDiGraph` or stream them.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..utils.rng import RngLike, ensure_rng


def _dedupe(edges: np.ndarray, *, remove_self_loops: bool) -> np.ndarray:
    """Drop self loops and duplicate edges, preserving first occurrence order."""
    if edges.size == 0:
        return edges.reshape(0, 2)
    if remove_self_loops:
        edges = edges[edges[:, 0] != edges[:, 1]]
    # np.unique sorts; keep generation order for streaming realism.
    keys = edges[:, 0].astype(np.int64) * (edges.max() + 1) + edges[:, 1]
    _, first = np.unique(keys, return_index=True)
    return edges[np.sort(first)]


def rmat_graph(
    num_vertices: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: RngLike = None,
    remove_self_loops: bool = True,
    deduplicate: bool = True,
) -> np.ndarray:
    """Recursive-MATrix (R-MAT) generator (Chakrabarti et al.).

    Produces power-law in/out degree distributions similar to web and
    social graphs. ``a + b + c`` must be < 1; ``d = 1 - a - b - c``.
    ``num_vertices`` is rounded up to the next power of two internally and
    ids are then permuted into ``[0, num_vertices)``.

    With deduplication the returned edge count can be slightly below
    ``num_edges``; we oversample 5% to compensate and trim.
    """
    if num_vertices < 2:
        raise ConfigError(f"num_vertices must be >= 2, got {num_vertices}")
    if num_edges < 1:
        raise ConfigError(f"num_edges must be >= 1, got {num_edges}")
    if min(a, b, c) < 0 or a + b + c >= 1.0:
        raise ConfigError(f"invalid R-MAT parameters a={a} b={b} c={c}")
    gen = ensure_rng(rng)
    scale = int(np.ceil(np.log2(num_vertices)))
    # Each bit of the id is drawn independently per edge — standard R-MAT
    # with per-level probability noise folded out (deterministic quadrants).
    p_right = b + (1.0 - a - b - c)  # P(dst bit = 1)
    p_down_given = np.array(
        [
            (1.0 - a - b - c) / p_right if p_right > 0 else 0.0,  # src bit | dst=1
            c / (a + c) if a + c > 0 else 0.0,  # src bit | dst=0
        ]
    )
    # Map the 2^scale id space down to [0, num_vertices) with a random
    # permutation so high-degree ids are scattered.
    perm = gen.permutation(num_vertices)

    def sample_edges(count: int) -> np.ndarray:
        src = np.zeros(count, dtype=np.int64)
        dst = np.zeros(count, dtype=np.int64)
        for level in range(scale):
            dst_bit = gen.random(count) < p_right
            cond = np.where(dst_bit, p_down_given[0], p_down_given[1])
            src_bit = gen.random(count) < cond
            src |= src_bit.astype(np.int64) << level
            dst |= dst_bit.astype(np.int64) << level
        return np.column_stack([perm[src % num_vertices], perm[dst % num_vertices]])

    if not deduplicate:
        edges = sample_edges(int(num_edges * 1.2) + 16)
        if remove_self_loops:
            edges = edges[edges[:, 0] != edges[:, 1]]
        while len(edges) < num_edges:  # pragma: no cover - rare top-up
            extra = sample_edges(num_edges)
            if remove_self_loops:
                extra = extra[extra[:, 0] != extra[:, 1]]
            edges = np.vstack([edges, extra])
        return edges[:num_edges]

    # Dedup collapses repeated quadrant picks (common on skewed graphs):
    # oversample iteratively until enough distinct edges accumulate.
    edges = np.empty((0, 2), dtype=np.int64)
    shortfall = num_edges
    for _ in range(64):
        batch = sample_edges(int(shortfall * 1.5) + 32)
        edges = _dedupe(np.vstack([edges, batch]), remove_self_loops=remove_self_loops)
        shortfall = num_edges - len(edges)
        if shortfall <= 0:
            return edges[:num_edges]
    raise ConfigError(
        f"could not draw {num_edges} distinct R-MAT edges over {num_vertices}"
        " vertices; the graph is too dense for these skew parameters"
    )


def preferential_attachment_graph(
    num_vertices: int,
    out_degree: int,
    *,
    rng: RngLike = None,
) -> np.ndarray:
    """Directed preferential attachment (Bollobas et al. style).

    Vertex ``t`` attaches ``out_degree`` edges to earlier vertices chosen
    proportionally to (1 + in-degree). Produces a heavy-tailed in-degree
    distribution with fixed out-degree — a reasonable stand-in for
    follower-style graphs such as Twitter.
    """
    if num_vertices < 2:
        raise ConfigError(f"num_vertices must be >= 2, got {num_vertices}")
    if out_degree < 1:
        raise ConfigError(f"out_degree must be >= 1, got {out_degree}")
    gen = ensure_rng(rng)
    edges: list[tuple[int, int]] = []
    # Repeated-target list: each vertex appears once (smoothing) plus once
    # per received edge; sampling uniformly from it is preferential.
    targets = [0]
    for t in range(1, num_vertices):
        k = min(out_degree, t)
        picks = gen.integers(0, len(targets), size=k)
        chosen = {targets[int(i)] for i in picks}
        for v in chosen:
            edges.append((t, v))
            targets.append(v)
        targets.append(t)
    return np.array(edges, dtype=np.int64).reshape(-1, 2)


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    *,
    rng: RngLike = None,
) -> np.ndarray:
    """Uniform random directed graph with ``num_edges`` distinct edges."""
    if num_vertices < 2:
        raise ConfigError(f"num_vertices must be >= 2, got {num_vertices}")
    max_edges = num_vertices * (num_vertices - 1)
    if not 0 <= num_edges <= max_edges:
        raise ConfigError(f"num_edges must be in [0, {max_edges}], got {num_edges}")
    gen = ensure_rng(rng)
    chosen: set[tuple[int, int]] = set()
    out = np.empty((num_edges, 2), dtype=np.int64)
    count = 0
    while count < num_edges:
        need = num_edges - count
        u = gen.integers(0, num_vertices, size=2 * need + 8)
        v = gen.integers(0, num_vertices, size=2 * need + 8)
        for uu, vv in zip(u.tolist(), v.tolist()):
            if uu == vv:
                continue
            key = (uu, vv)
            if key in chosen:
                continue
            chosen.add(key)
            out[count] = key
            count += 1
            if count == num_edges:
                break
    return out


def star_graph(num_leaves: int, *, inward: bool = True) -> np.ndarray:
    """Star with center 0; ``inward`` means edges leaf -> center."""
    if num_leaves < 1:
        raise ConfigError(f"num_leaves must be >= 1, got {num_leaves}")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    zeros = np.zeros(num_leaves, dtype=np.int64)
    if inward:
        return np.column_stack([leaves, zeros])
    return np.column_stack([zeros, leaves])


def path_graph(num_vertices: int) -> np.ndarray:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    if num_vertices < 2:
        raise ConfigError(f"num_vertices must be >= 2, got {num_vertices}")
    ids = np.arange(num_vertices - 1, dtype=np.int64)
    return np.column_stack([ids, ids + 1])


def cycle_graph(num_vertices: int) -> np.ndarray:
    """Directed cycle over ``num_vertices`` vertices."""
    if num_vertices < 2:
        raise ConfigError(f"num_vertices must be >= 2, got {num_vertices}")
    ids = np.arange(num_vertices, dtype=np.int64)
    return np.column_stack([ids, (ids + 1) % num_vertices])


def complete_graph(num_vertices: int) -> np.ndarray:
    """All ordered pairs ``(u, v)`` with ``u != v``."""
    if num_vertices < 2:
        raise ConfigError(f"num_vertices must be >= 2, got {num_vertices}")
    u, v = np.meshgrid(
        np.arange(num_vertices, dtype=np.int64),
        np.arange(num_vertices, dtype=np.int64),
        indexing="ij",
    )
    mask = u != v
    return np.column_stack([u[mask], v[mask]])
