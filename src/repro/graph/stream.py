"""Graph streams and the sliding-window workload model (Section 5.1).

The paper's experimental setup:

* edges receive random timestamps (random edge-arrival permutation);
* the first 10% of the stream initializes the window;
* each *slide* of batch size ``k`` inserts the next ``k`` edges and deletes
  the oldest ``k`` edges of the window.

:class:`SlidingWindow` reproduces this exactly and yields
:class:`WindowSlide` batches of :class:`EdgeUpdate`. For undirected
datasets every stream edge expands into the two directed updates the
theory's undirected model requires.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..errors import StreamError
from ..utils.rng import RngLike, ensure_rng
from .update import EdgeOp, EdgeUpdate


def random_permutation_stream(edges: np.ndarray, rng: RngLike = None) -> np.ndarray:
    """Assign random timestamps: a random permutation of the edge rows."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise StreamError(f"edges must have shape (m, 2), got {edges.shape}")
    gen = ensure_rng(rng)
    return edges[gen.permutation(len(edges))]


class EdgeStream:
    """A finite, timestamp-ordered sequence of edges with a read cursor."""

    def __init__(self, edges: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise StreamError(f"edges must have shape (m, 2), got {edges.shape}")
        self._edges = edges
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._edges)

    @property
    def position(self) -> int:
        return self._cursor

    @property
    def remaining(self) -> int:
        return len(self._edges) - self._cursor

    def take(self, k: int) -> np.ndarray:
        """Consume and return the next ``k`` edges."""
        if k < 0:
            raise StreamError(f"k must be >= 0, got {k}")
        if k > self.remaining:
            raise StreamError(f"stream exhausted: asked for {k}, only {self.remaining} left")
        chunk = self._edges[self._cursor : self._cursor + k]
        self._cursor += k
        return chunk

    def peek(self, k: int) -> np.ndarray:
        """Return the next ``k`` edges without consuming them."""
        if k < 0 or k > self.remaining:
            raise StreamError(f"cannot peek {k} edges ({self.remaining} remaining)")
        return self._edges[self._cursor : self._cursor + k]

    def reset(self) -> None:
        self._cursor = 0


@dataclass(frozen=True)
class WindowSlide:
    """One slide of the window: ``updates`` = insertions then deletions."""

    step: int
    insert_edges: np.ndarray
    delete_edges: np.ndarray
    updates: tuple[EdgeUpdate, ...]

    @property
    def num_updates(self) -> int:
        return len(self.updates)

    @property
    def num_stream_edges(self) -> int:
        """Stream edges consumed by this slide (what throughput counts)."""
        return len(self.insert_edges)


class SlidingWindow:
    """The paper's sliding-window evaluation workload.

    Parameters
    ----------
    edges:
        Timestamp-ordered stream (use :func:`random_permutation_stream`).
    window_fraction:
        Fraction of the stream forming the initial window (paper: 0.10).
    batch_size:
        Edges inserted (and deleted) per slide. The paper expresses this
        as a fraction of the window; use :meth:`batch_for_fraction`.
    undirected:
        When true each stream edge yields two directed updates.
    """

    def __init__(
        self,
        edges: np.ndarray,
        *,
        window_fraction: float = 0.10,
        batch_size: int,
        undirected: bool = False,
    ) -> None:
        if not 0.0 < window_fraction < 1.0:
            raise StreamError(f"window_fraction must be in (0,1), got {window_fraction}")
        if batch_size < 1:
            raise StreamError(f"batch_size must be >= 1, got {batch_size}")
        self._stream = EdgeStream(edges)
        self.window_size = int(len(self._stream) * window_fraction)
        if self.window_size < 1:
            raise StreamError("stream too short for the requested window fraction")
        if batch_size > self.window_size:
            raise StreamError(
                f"batch_size {batch_size} exceeds window size {self.window_size}"
            )
        self.batch_size = batch_size
        self.undirected = undirected
        self._initial = self._stream.take(self.window_size)
        self._delete_cursor = 0  # index into the stream of the oldest window edge
        self._all_edges = edges
        self._step = 0
        # Incremental snapshot state (see delta_snapshot): the maintained
        # view plus the [delete_cursor, position) stream range it covers.
        self._delta: "DeltaCSRGraph | None" = None
        self._delta_range = (0, 0)

    @staticmethod
    def batch_for_fraction(window_size: int, fraction: float) -> int:
        """Paper batch sizes: 1% / 0.1% / 0.01% of the window (>= 1)."""
        if not 0.0 < fraction <= 1.0:
            raise StreamError(f"fraction must be in (0,1], got {fraction}")
        return max(1, int(round(window_size * fraction)))

    @property
    def initial_edges(self) -> np.ndarray:
        """The window contents before any slide (first 10% of the stream)."""
        return self._initial

    def initial_updates(self) -> list[EdgeUpdate]:
        """The initial window as insertion updates (with undirected expansion)."""
        return self._expand(self._initial, EdgeOp.INSERT)

    @property
    def num_slides_available(self) -> int:
        return self._stream.remaining // self.batch_size

    def _expand(self, edges: np.ndarray, op: EdgeOp) -> list[EdgeUpdate]:
        updates: list[EdgeUpdate] = []
        for u, v in edges.tolist():
            updates.append(EdgeUpdate(int(u), int(v), op))
            if self.undirected:
                updates.append(EdgeUpdate(int(v), int(u), op))
        return updates

    def slide(self) -> WindowSlide:
        """Advance the window by one batch."""
        if self._stream.remaining < self.batch_size:
            raise StreamError("stream exhausted: no full batch remains")
        inserts = self._stream.take(self.batch_size)
        deletes = self._all_edges[self._delete_cursor : self._delete_cursor + self.batch_size]
        self._delete_cursor += self.batch_size
        self._step += 1
        updates = tuple(
            self._expand(inserts, EdgeOp.INSERT) + self._expand(deletes, EdgeOp.DELETE)
        )
        return WindowSlide(
            step=self._step,
            insert_edges=inserts,
            delete_edges=deletes,
            updates=updates,
        )

    def slides(self, count: int) -> Iterator[WindowSlide]:
        """Yield up to ``count`` slides (fewer if the stream runs dry)."""
        for _ in range(count):
            if self._stream.remaining < self.batch_size:
                return
            yield self.slide()

    def window_edge_array(self) -> np.ndarray:
        """Current window contents as an edge array (for CSR snapshots)."""
        return self._all_edges[self._delete_cursor : self._stream.position]

    def snapshot(self, capacity: int | None = None) -> "CSRGraph":
        """A CSR snapshot of the current window, built in pure numpy.

        The shared-snapshot hook of the serving layer
        (:class:`repro.serve.PPRService`) and the benchmark harness: one
        snapshot per slide serves every resident source, instead of each
        consumer walking the dict graph independently. Undirected streams
        expand each window edge into both directions *interleaved per
        edge*, matching :meth:`initial_updates` / :meth:`slide` semantics
        — and making every slide a row-suffix append / row-prefix drop,
        which is what lets :meth:`delta_snapshot` maintain the same view
        incrementally, bit-for-bit.
        """
        from .csr import CSRGraph  # local import: csr has no stream dependency
        from .delta import interleave_undirected

        edges = self.window_edge_array()
        if self.undirected and len(edges):
            edges = interleave_undirected(edges)
        return CSRGraph.from_edge_array(edges, capacity=capacity)

    def delta_snapshot(
        self,
        capacity: int | None = None,
        *,
        overlay_threshold: float | None = None,
    ) -> "DeltaCSRGraph":
        """The current window as an incrementally-maintained delta view.

        First call builds a full :meth:`snapshot` base; every later call
        layers only the stream edges that entered/left the window since —
        O(batch) per slide instead of O(window) — and consolidates into a
        fresh base once the overlay exceeds ``overlay_threshold``
        (default :data:`repro.graph.delta.DEFAULT_OVERLAY_THRESHOLD`).
        The view is bit-identical to :meth:`snapshot` at every step:
        window rows are stream-ordered, a slide only appends inserted
        sources and drops the (oldest) deleted prefix.
        """
        from .delta import DEFAULT_OVERLAY_THRESHOLD, DeltaCSRGraph

        if overlay_threshold is None:
            overlay_threshold = DEFAULT_OVERLAY_THRESHOLD
        lo, hi = self._delete_cursor, self._stream.position
        d0, p0 = self._delta_range
        if self._delta is not None and (d0, p0) == (lo, hi):
            if capacity is not None and capacity > self._delta.num_vertices:
                self._delta = self._delta.with_capacity(capacity)
            return self._delta
        # Incremental continuation needs the covered range [d0, p0) to be
        # a *superset-compatible prefix* of the current window [lo, hi):
        # it must not have moved backwards (reset()), and the delete
        # cursor must not have passed the covered position — if the
        # window slid more than a full window-length since the last call,
        # the view would be asked to drop edges it never held. Any broken
        # chain falls back to one full rebuild.
        broken = d0 > lo or p0 > hi or lo > p0
        if self._delta is None or broken:
            self._delta = DeltaCSRGraph.wrap(self.snapshot(capacity))
        else:
            view = self._delta.apply_edge_delta(
                self._all_edges[p0:hi],
                self._all_edges[d0:lo],
                undirected=self.undirected,
            )
            if view.should_consolidate(overlay_threshold):
                view = view.consolidated()
            self._delta = view
        if capacity is not None and capacity > self._delta.num_vertices:
            self._delta = self._delta.with_capacity(capacity)
        self._delta_range = (lo, hi)
        return self._delta

    def __repr__(self) -> str:
        return (
            f"SlidingWindow(window={self.window_size}, batch={self.batch_size},"
            f" step={self._step}, undirected={self.undirected})"
        )
