"""Labeled wrapper over :class:`DynamicDiGraph`.

The core library works on dense integer vertex ids (state vectors are
numpy arrays indexed by id). Applications usually have string or tuple
identities; :class:`LabeledDiGraph` maintains the bidirectional mapping so
examples can speak in domain terms.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from ..errors import VertexError
from .digraph import DynamicDiGraph
from .update import EdgeOp, EdgeUpdate

Label = Hashable


class LabeledDiGraph:
    """A directed multigraph whose vertices are arbitrary hashable labels.

    Examples
    --------
    >>> g = LabeledDiGraph()
    >>> g.add_edge("alice", "bob")
    >>> g.id_of("alice")
    0
    >>> g.label_of(1)
    'bob'
    """

    def __init__(self, edges: Iterable[tuple[Label, Label]] | None = None) -> None:
        self.graph = DynamicDiGraph()
        self._id_of: dict[Label, int] = {}
        self._label_of: list[Label] = []
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # label <-> id
    # ------------------------------------------------------------------ #

    def intern(self, label: Label) -> int:
        """Return the id for ``label``, allocating one if new."""
        existing = self._id_of.get(label)
        if existing is not None:
            return existing
        vid = len(self._label_of)
        self._id_of[label] = vid
        self._label_of.append(label)
        self.graph.add_vertex(vid)
        return vid

    def id_of(self, label: Label) -> int:
        """Id of a known label; raises :class:`VertexError` otherwise."""
        try:
            return self._id_of[label]
        except KeyError:
            raise VertexError(label, f"unknown label: {label!r}") from None

    def label_of(self, vid: int) -> Label:
        """Label of a known id; raises :class:`VertexError` otherwise."""
        if 0 <= vid < len(self._label_of):
            return self._label_of[vid]
        raise VertexError(vid, f"unknown vertex id: {vid}")

    def __contains__(self, label: Label) -> bool:
        return label in self._id_of

    def labels(self) -> Iterator[Label]:
        return iter(self._label_of)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    # ------------------------------------------------------------------ #
    # edges
    # ------------------------------------------------------------------ #

    def add_edge(self, u: Label, v: Label) -> EdgeUpdate:
        """Insert ``u -> v``; returns the underlying integer update."""
        upd = EdgeUpdate(self.intern(u), self.intern(v), EdgeOp.INSERT)
        self.graph.apply(upd)
        return upd

    def remove_edge(self, u: Label, v: Label) -> EdgeUpdate:
        """Delete ``u -> v``; returns the underlying integer update."""
        upd = EdgeUpdate(self.id_of(u), self.id_of(v), EdgeOp.DELETE)
        self.graph.apply(upd)
        return upd

    def has_edge(self, u: Label, v: Label) -> bool:
        if u not in self._id_of or v not in self._id_of:
            return False
        return self.graph.has_edge(self._id_of[u], self._id_of[v])

    def update_for(self, u: Label, v: Label, op: EdgeOp) -> EdgeUpdate:
        """Build (but do not apply) the integer update for a labeled edge."""
        return EdgeUpdate(self.intern(u), self.intern(v), op)

    def __repr__(self) -> str:
        return f"LabeledDiGraph(n={self.num_vertices}, m={self.num_edges})"
