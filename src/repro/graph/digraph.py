"""Dynamic directed multigraph.

The mutable substrate under every algorithm in this library. Design goals:

* O(1) amortized edge insertion/deletion with *both* adjacency directions
  maintained (the local push walks in-neighbors, restore-invariant needs
  out-degrees);
* parallel (duplicate) edges kept with multiplicities — a stream may carry
  the same edge twice, and the paper's theory counts ``dout`` with
  multiplicity;
* stable integer vertex ids: once a vertex has been seen it keeps its id
  even if its degree drops to zero (the estimate/residual state arrays are
  indexed by these ids).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from ..errors import EdgeError, VertexError
from .update import EdgeOp, EdgeUpdate


class DynamicDiGraph:
    """A directed multigraph supporting incremental edge updates.

    Examples
    --------
    >>> g = DynamicDiGraph()
    >>> g.add_edge(0, 1)
    >>> g.add_edge(0, 1)   # parallel edge: multiplicity 2
    >>> g.out_degree(0)
    2
    >>> g.remove_edge(0, 1)
    >>> g.out_degree(0)
    1
    """

    __slots__ = ("_out", "_in", "_dout", "_din", "_num_edges", "_max_vertex")

    def __init__(self, edges: Iterable[tuple[int, int]] | None = None) -> None:
        # adjacency with multiplicities: u -> {v: count}
        self._out: dict[int, dict[int, int]] = {}
        self._in: dict[int, dict[int, int]] = {}
        self._dout: dict[int, int] = {}
        self._din: dict[int, int] = {}
        self._num_edges = 0
        self._max_vertex = -1
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # vertices
    # ------------------------------------------------------------------ #

    def add_vertex(self, u: int) -> None:
        """Register ``u`` (no-op when already present)."""
        if u < 0:
            raise VertexError(u, f"vertex ids must be >= 0, got {u}")
        if u not in self._out:
            self._out[u] = {}
            self._in[u] = {}
            self._dout[u] = 0
            self._din[u] = 0
            if u > self._max_vertex:
                self._max_vertex = u

    def has_vertex(self, u: int) -> bool:
        return u in self._out

    def vertices(self) -> Iterator[int]:
        """All vertex ids ever seen (including currently-isolated ones)."""
        return iter(self._out)

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def max_vertex_id(self) -> int:
        """Largest vertex id seen so far, ``-1`` for an empty graph."""
        return self._max_vertex

    @property
    def capacity(self) -> int:
        """Array length needed to index every vertex (``max_vertex_id + 1``)."""
        return self._max_vertex + 1

    # ------------------------------------------------------------------ #
    # edges
    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int, count: int = 1) -> None:
        """Insert ``count`` parallel copies of edge ``u -> v``."""
        if count < 1:
            raise EdgeError(u, v, f"count must be >= 1, got {count}")
        self.add_vertex(u)
        self.add_vertex(v)
        out_u = self._out[u]
        out_u[v] = out_u.get(v, 0) + count
        in_v = self._in[v]
        in_v[u] = in_v.get(u, 0) + count
        self._dout[u] += count
        self._din[v] += count
        self._num_edges += count

    def remove_edge(self, u: int, v: int, count: int = 1) -> None:
        """Delete ``count`` copies of edge ``u -> v``.

        Raises :class:`EdgeError` when fewer than ``count`` copies exist.
        """
        if count < 1:
            raise EdgeError(u, v, f"count must be >= 1, got {count}")
        existing = self._out.get(u, {}).get(v, 0)
        if existing < count:
            raise EdgeError(
                u, v, f"cannot delete {count} copies of {u}->{v}: multiplicity is {existing}"
            )
        if existing == count:
            del self._out[u][v]
            del self._in[v][u]
        else:
            self._out[u][v] = existing - count
            self._in[v][u] = existing - count
        self._dout[u] -= count
        self._din[v] -= count
        self._num_edges -= count

    def has_edge(self, u: int, v: int) -> bool:
        return self._out.get(u, {}).get(v, 0) > 0

    def multiplicity(self, u: int, v: int) -> int:
        """Number of parallel copies of ``u -> v`` (0 when absent)."""
        return self._out.get(u, {}).get(v, 0)

    @property
    def num_edges(self) -> int:
        """Total edge count including multiplicities."""
        return self._num_edges

    @property
    def average_degree(self) -> float:
        """Average out-degree ``m / n`` (the theory's ``d``)."""
        if not self._out:
            return 0.0
        return self._num_edges / len(self._out)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges, repeating parallel edges per multiplicity."""
        for u, nbrs in self._out.items():
            for v, count in nbrs.items():
                for _ in range(count):
                    yield (u, v)

    def unique_edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(u, v, multiplicity)`` triples."""
        for u, nbrs in self._out.items():
            for v, count in nbrs.items():
                yield (u, v, count)

    # ------------------------------------------------------------------ #
    # degrees / neighborhoods
    # ------------------------------------------------------------------ #

    def out_degree(self, u: int) -> int:
        """Out-degree with multiplicity; 0 for unknown vertices."""
        return self._dout.get(u, 0)

    def in_degree(self, u: int) -> int:
        """In-degree with multiplicity; 0 for unknown vertices."""
        return self._din.get(u, 0)

    def out_neighbors(self, u: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(v, multiplicity)`` for edges ``u -> v``."""
        return iter(self._out.get(u, {}).items())

    def in_neighbors(self, u: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(v, multiplicity)`` for edges ``v -> u``.

        This is the neighborhood the local push traverses: pushing ``u``
        propagates residual to every ``v`` with an edge ``v -> u``.
        """
        return iter(self._in.get(u, {}).items())

    def in_row(self, u: int) -> np.ndarray:
        """Dense in-adjacency row of ``u``, multiplicities expanded.

        *Order-exact* with :meth:`CSRGraph.from_digraph
        <repro.graph.csr.CSRGraph.from_digraph>`: neighbors appear in the
        ``_in[u]`` dict iteration order with each neighbor's parallel
        copies contiguous — the exact sequence a full CSR rebuild would
        store for ``u``. This is what lets the delta overlay
        (:class:`repro.graph.delta.DeltaCSRGraph`) patch single rows and
        still stay bit-compatible with a rebuilt snapshot.
        """
        nbrs = self._in.get(u)
        if not nbrs:
            return np.empty(0, dtype=np.int64)
        ids = np.fromiter(nbrs.keys(), dtype=np.int64, count=len(nbrs))
        counts = np.fromiter(nbrs.values(), dtype=np.int64, count=len(nbrs))
        return np.repeat(ids, counts)

    def out_degree_array(self, capacity: int | None = None) -> np.ndarray:
        """Dense ``int64`` array of out-degrees indexed by vertex id."""
        cap = self.capacity if capacity is None else capacity
        arr = np.zeros(cap, dtype=np.int64)
        for u, d in self._dout.items():
            if u < cap:
                arr[u] = d
        return arr

    def in_degree_array(self, capacity: int | None = None) -> np.ndarray:
        """Dense ``int64`` array of in-degrees indexed by vertex id."""
        cap = self.capacity if capacity is None else capacity
        arr = np.zeros(cap, dtype=np.int64)
        for u, d in self._din.items():
            if u < cap:
                arr[u] = d
        return arr

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def apply(self, update: EdgeUpdate) -> None:
        """Apply one edge update."""
        if update.op is EdgeOp.INSERT:
            self.add_edge(update.u, update.v)
        else:
            self.remove_edge(update.u, update.v)

    def apply_batch(self, updates: Iterable[EdgeUpdate]) -> int:
        """Apply a batch of updates in order; return the number applied."""
        n = 0
        for upd in updates:
            self.apply(upd)
            n += 1
        return n

    # ------------------------------------------------------------------ #
    # construction / conversion
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "DynamicDiGraph":
        return cls(edges)

    @classmethod
    def from_edge_array(cls, edges: np.ndarray) -> "DynamicDiGraph":
        """Build a graph from an ``(m, 2)`` integer edge array.

        Parallel edges collapse to multiplicities *before* insertion
        (one ``np.unique`` over the rows), so construction loops over
        distinct edges only — much faster than per-row ``add_edge`` for
        multigraph-heavy arrays, and without round-tripping the array
        through Python lists. Vertex ids follow the sorted unique-edge
        order, not the row order; use :meth:`from_edges` when insertion
        order must mirror the input sequence.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise EdgeError(None, None, f"edges must have shape (m, 2), got {edges.shape}")
        g = cls()
        if not len(edges):
            return g
        unique, counts = np.unique(edges, axis=0, return_counts=True)
        for (u, v), count in zip(unique.tolist(), counts.tolist()):
            g.add_edge(u, v, count)
        return g

    @classmethod
    def from_undirected_edges(cls, edges: Iterable[tuple[int, int]]) -> "DynamicDiGraph":
        """Build a graph with both directions for each input pair."""
        g = cls()
        for u, v in edges:
            g.add_edge(u, v)
            g.add_edge(v, u)
        return g

    def copy(self) -> "DynamicDiGraph":
        g = DynamicDiGraph()
        g._out = {u: dict(nbrs) for u, nbrs in self._out.items()}
        g._in = {u: dict(nbrs) for u, nbrs in self._in.items()}
        g._dout = dict(self._dout)
        g._din = dict(self._din)
        g._num_edges = self._num_edges
        g._max_vertex = self._max_vertex
        return g

    def edge_array(self) -> np.ndarray:
        """``(m, 2)`` int64 array of edges with multiplicities expanded."""
        arr = np.empty((self._num_edges, 2), dtype=np.int64)
        i = 0
        for u, v in self.edges():
            arr[i, 0] = u
            arr[i, 1] = v
            i += 1
        return arr

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Serialize the graph structure *order-exactly* to plain arrays.

        Beyond the edge multiset, the arrays record the iteration order of
        every adjacency dict (``vertices`` in ``_out`` key order, the edge
        triples in nested dict order). :meth:`from_arrays` rebuilds a graph
        whose dict iteration matches bit-for-bit — which makes CSR
        snapshots (and therefore float summation order inside the
        vectorized push) identical across a save/load cycle. The durable
        checkpoint format (:mod:`repro.store`) depends on this.
        """
        vertices = np.fromiter(self._out, dtype=np.int64, count=len(self._out))
        out_rows = [
            (u, v, c) for u, nbrs in self._out.items() for v, c in nbrs.items()
        ]
        in_rows = [
            (v, u, c) for v, nbrs in self._in.items() for u, c in nbrs.items()
        ]
        return {
            "vertices": vertices,
            "out_edges": np.array(out_rows, dtype=np.int64).reshape(-1, 3),
            "in_edges": np.array(in_rows, dtype=np.int64).reshape(-1, 3),
        }

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        lazy: bool = False,
        num_edges: int | None = None,
        max_vertex: int | None = None,
    ) -> "DynamicDiGraph":
        """Rebuild a graph serialized by :meth:`to_arrays` (order-exact).

        With ``lazy=True`` the O(n + m) adjacency-dict build is deferred
        until something actually walks the dicts (mutation, in-neighbor
        iteration, consistency checks): the returned graph answers
        ``capacity``/``num_edges``/``num_vertices``/``has_vertex`` straight
        from the arrays, which is what makes shared-memory replica
        bootstrap O(1) in m — the serving push runs on an installed CSR
        snapshot and never needs the dicts. ``num_edges``/``max_vertex``
        skip even the O(m)/O(n) scalar reductions when the publisher
        already knows them (shm descriptor meta). Materialization is
        order-exact: a lazily-built graph that later materializes is
        bit-identical to an eager ``from_arrays`` build.
        """
        if lazy:
            return _LazyArraysGraph(arrays, num_edges=num_edges, max_vertex=max_vertex)
        g = cls()
        for u in arrays["vertices"].tolist():
            g.add_vertex(u)
        total = 0
        for u, v, count in arrays["out_edges"].tolist():
            g._out[u][v] = count
            g._dout[u] += count
            total += count
        for v, u, count in arrays["in_edges"].tolist():
            g._in[v][u] = count
            g._din[v] += count
        g._num_edges = total
        return g

    def to_networkx(self):  # pragma: no cover - thin convenience wrapper
        """Convert to a ``networkx.MultiDiGraph`` (requires networkx)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        g.add_nodes_from(self.vertices())
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # dunder / debugging
    # ------------------------------------------------------------------ #

    def __contains__(self, u: object) -> bool:
        return u in self._out

    def __len__(self) -> int:
        return len(self._out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicDiGraph):
            return NotImplemented
        return self._out == other._out

    def __hash__(self) -> int:  # mutable container
        raise TypeError("DynamicDiGraph is unhashable (mutable)")

    def __repr__(self) -> str:
        return (
            f"DynamicDiGraph(n={self.num_vertices}, m={self.num_edges},"
            f" max_id={self._max_vertex})"
        )

    def is_materialized(self) -> bool:
        """Whether the adjacency dicts exist yet (always true here).

        The lazy shared-memory bootstrap variant returns ``False`` until
        something walks the dicts; tests and benchmarks use this to assert
        the replica query path stayed on the snapshot.
        """
        return True

    def check_consistency(self) -> None:
        """Validate internal invariants (used by tests; O(n + m))."""
        total = 0
        for u, nbrs in self._out.items():
            dsum = sum(nbrs.values())
            assert dsum == self._dout[u], f"dout mismatch at {u}"
            total += dsum
            for v, c in nbrs.items():
                assert self._in[v].get(u) == c, f"in/out mismatch on {u}->{v}"
        assert total == self._num_edges, "edge count mismatch"
        for v, nbrs in self._in.items():
            assert sum(nbrs.values()) == self._din[v], f"din mismatch at {v}"


class _LazyArraysGraph(DynamicDiGraph):
    """A :meth:`DynamicDiGraph.from_arrays` graph that builds its dicts late.

    Scalars (``capacity``, ``num_edges``, ``num_vertices``) and membership
    come straight from the serialized arrays; the first access to any
    adjacency dict triggers the full order-exact materialization, after
    which this behaves exactly like an eagerly-built graph. Replica/shard
    bootstrap over shared memory relies on this: attaching a snapshot and
    serving queries from an installed CSR never touches the dicts, so
    bootstrap cost is independent of m.
    """

    __slots__ = ("_arrays", "_vertex_ids")

    def __init__(
        self,
        arrays: dict[str, np.ndarray],
        *,
        num_edges: int | None = None,
        max_vertex: int | None = None,
    ) -> None:
        # Deliberately skip DynamicDiGraph.__init__: the dict slots stay
        # unset until _materialize (unset slots route through __getattr__).
        self._arrays: dict[str, np.ndarray] | None = arrays
        self._vertex_ids: frozenset[int] | None = None
        if num_edges is None:
            out = arrays["out_edges"]
            num_edges = int(out[:, 2].sum()) if len(out) else 0
        if max_vertex is None:
            ids = arrays["vertices"]
            max_vertex = int(ids.max()) if len(ids) else -1
        self._num_edges = int(num_edges)
        self._max_vertex = int(max_vertex)

    def __getattr__(self, name: str):
        if name in ("_out", "_in", "_dout", "_din"):
            self._materialize()
            return object.__getattribute__(self, name)
        raise AttributeError(name)

    def _materialize(self) -> None:
        arrays = self._arrays
        if arrays is None:  # pragma: no cover - re-entrant guard
            raise AttributeError("adjacency dicts missing during materialization")
        self._arrays = None
        self._out = {}
        self._in = {}
        self._dout = {}
        self._din = {}
        for u in arrays["vertices"].tolist():
            self._out[u] = {}
            self._in[u] = {}
            self._dout[u] = 0
            self._din[u] = 0
        for u, v, count in arrays["out_edges"].tolist():
            self._out[u][v] = count
            self._dout[u] += count
        for v, u, count in arrays["in_edges"].tolist():
            self._in[v][u] = count
            self._din[v] += count

    def is_materialized(self) -> bool:
        return self._arrays is None

    @property
    def num_vertices(self) -> int:
        if self._arrays is not None:
            return len(self._arrays["vertices"])
        return len(self._out)

    def has_vertex(self, u: int) -> bool:
        if self._arrays is None:
            return u in self._out
        ids = self._vertex_ids
        if ids is None:
            ids = frozenset(self._arrays["vertices"].tolist())
            self._vertex_ids = ids
        return u in ids

    def __contains__(self, u: object) -> bool:
        return isinstance(u, int) and self.has_vertex(u)

    def __len__(self) -> int:
        return self.num_vertices
