"""Coordinator <-> replica wire protocol of the cluster tier.

One duplex :func:`multiprocessing.Pipe` per replica carries every frame,
which is what makes the consistency story simple: the channel is FIFO,
so a read enqueued after a write delta is *guaranteed* to be served at a
version covering that delta (the ``PIPELINED`` catch-up policy is free).

Frames are small tagged tuples (``Connection.send`` pickles them), with
one deliberate exception: write deltas travel as the **WAL record
framing** of :mod:`repro.store.wal` (:func:`~repro.store.wal.pack_record`
bytes — magic, seq, length, CRC-32, packed ``(u, v, op)`` rows). The
durability codec and the replication codec are the same bytes, so a
delta damaged in transit is rejected by the same CRC check that rejects
a torn WAL tail, and a replica applying frame ``seq`` is bit-for-bit
replaying what the primary logged as ``seq``.

Coordinator -> replica::

    (APPLY, frame_bytes, trace_ctx)       ordered write delta (WAL frame)
    (REQUESTS, ticket, requests, coalesce) reads to serve (typed ApiRequests)
    (SYNC, ticket)                        barrier: ack your applied version
    (PROMOTE, ticket, epoch, store_root, store_config)
                                          become primary: own the store,
                                          replay the WAL tail, fence epoch
    (INGEST, ticket, request, trace_ctx)  forwarded write (promoted primary)
    (SHUTDOWN,)                           drain and exit

Replica -> coordinator::

    (HELLO, graph_version)                spawn handshake
    (APPLIED, seq, spans)                 delta applied through version seq
    (RESPONSES, ticket, responses, graph_version, spans)
    (SYNCED, ticket, graph_version)
    (PROMOTED, ticket, graph_version, frames, spans)
    (BYE, graph_version)                  clean shutdown acknowledgement

``PROMOTE``/``PROMOTED`` carry the failover handshake
(``docs/faults.md``): the coordinator picks the most-caught-up live
replica, sends it the new write-authority ``epoch`` plus the store root
(or ``None`` for a storeless cluster); the replica truncates torn WAL
tails, replays records past its own applied version, attaches the store
under the new epoch, and answers with its resulting version and the
replayed records re-stamped as ``pack_record`` frames under the new
epoch — which the coordinator ships to the *other* replicas so the whole
fleet converges. After promotion, writes are forwarded as ``INGEST``
frames and answered with ordinary ``RESPONSES`` frames (ticket, one
response); replicas reject ``APPLY`` frames whose epoch predates the one
they were promoted-or-fenced into, which is what makes a zombie
primary's late deltas harmless.

``trace_ctx`` is the coordinator's active
:class:`~repro.obs.TraceContext` (or ``None``), so replica-side work
joins the request's distributed trace; ``spans`` is the replica
tracer's drained span-record outbox (a list of dicts, empty when
tracing is off), which the coordinator folds back into its own ring so
one ``GET /v1/trace/<id>`` shows the whole cross-process tree. Typed
requests shipped in ``REQUESTS`` frames carry their trace context as a
pickled instance attribute (:data:`repro.obs.TRACE_ATTR`).
"""

from __future__ import annotations

#: Coordinator -> replica tags.
APPLY = "apply"
REQUESTS = "requests"
SYNC = "sync"
PROMOTE = "promote"
INGEST = "ingest"
SHUTDOWN = "shutdown"

#: Replica -> coordinator tags.
HELLO = "hello"
APPLIED = "applied"
RESPONSES = "responses"
SYNCED = "synced"
PROMOTED = "promoted"
BYE = "bye"
