"""The replica worker: one process, one full serving engine.

:func:`replica_main` is the entry point of every cluster worker process.
It builds a complete :class:`~repro.serve.service.PPRService` replica —
own push engine, own resident cache, own delta-CSR snapshot chain — and
serves the coordinator's frames in FIFO order: write deltas are ingested
through the replica's *normal* gateway path (the same
``restore_invariant`` arithmetic and snapshot advancement the primary
ran), reads are answered by the replica's own
:class:`~repro.api.gateway.Gateway` scheduler.

A replica bootstraps one of two ways (:class:`ReplicaSpec`):

* **from arrays** — the primary's order-exact
  :meth:`~repro.graph.digraph.DynamicDiGraph.to_arrays` snapshot, so the
  rebuilt adjacency iteration (and every CSR snapshot derived from it)
  is bit-identical to the primary's;
* **from the store** — :func:`repro.store.recovery.recover_service` over
  the primary's durable state (newest checkpoint + WAL-tail replay).
  This is the respawn path: the WAL is written before any write is
  acknowledged, so a recovered replica lands exactly at the primary's
  head version.

Either way the replica's answers are bit-identical to a single-process
service with the same history — the property ``tests/test_cluster.py``
and ``benchmarks/bench_cluster.py`` assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Any

from .. import obs
from ..api.gateway import Gateway
from ..api.requests import IngestBatch
from ..config import ObsConfig, PPRConfig, ServeConfig
from ..errors import ClusterError
from ..serve.service import PPRService
from ..store.wal import unpack_record
from . import messages


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a worker process needs to build its replica.

    ``graph_arrays`` and ``store_root`` are mutually exclusive bootstrap
    modes; ``serve`` always arrives with ``store=None`` (the primary owns
    durability — replicas must never double-log the WAL).
    """

    replica_id: int
    config: PPRConfig
    serve: ServeConfig
    #: Order-exact graph snapshot (``DynamicDiGraph.to_arrays``), or None
    #: when bootstrapping from the store.
    graph_arrays: dict[str, Any] | None
    #: Explicit hub ids of the primary's hub tier (empty = no hub tier).
    hubs: tuple[int, ...]
    #: Graph version the ``graph_arrays`` snapshot is at.
    graph_version: int
    #: Store directory to recover from instead (the respawn path).
    store_root: str | None = None
    #: Tracing/profiling knobs, mirrored from the coordinator's ApiConfig
    #: so replica-side spans are sampled exactly like the front door's.
    obs: ObsConfig = ObsConfig()

    def __post_init__(self) -> None:
        if (self.graph_arrays is None) == (self.store_root is None):
            raise ClusterError(
                "a ReplicaSpec needs exactly one of graph_arrays/store_root"
            )
        if self.serve.store is not None:
            raise ClusterError("replica ServeConfig must not carry a store")


def build_replica_service(spec: ReplicaSpec) -> PPRService:
    """Construct the replica's serving engine per the spec's bootstrap mode."""
    if spec.store_root is not None:
        from ..store.recovery import recover_service

        return recover_service(spec.store_root, attach=False)
    return PPRService.from_graph_arrays(
        spec.graph_arrays,
        config=spec.config,
        serve=spec.serve,
        hubs=list(spec.hubs) if spec.hubs else None,
        graph_version=spec.graph_version,
    )


def apply_delta(service: PPRService, frame: bytes) -> int:
    """Apply one WAL-framed write delta; returns the replica's new version.

    CRC-verified by :func:`~repro.store.wal.unpack_record`. Frames at or
    below the replica's version are skipped idempotently (a respawned
    replica may be re-shipped deltas its recovery already covered); a
    gap raises — a replica must never serve a history with holes.
    """
    record = unpack_record(frame)
    if record.seq <= service.graph_version:
        return service.graph_version
    if record.seq != service.graph_version + 1:
        raise ClusterError(
            f"replication gap: replica at v{service.graph_version},"
            f" delta frame is v{record.seq}"
        )
    service.gateway.execute(IngestBatch(updates=record.updates))
    return service.graph_version


def replica_main(spec: ReplicaSpec, conn: Connection) -> None:
    """Worker-process loop: build the replica, then serve frames forever.

    Exits on ``SHUTDOWN`` (clean drain, acknowledged with ``BYE``), a
    closed pipe (coordinator died — nothing left to serve), or an
    unhandled error (the coordinator sees the broken pipe and respawns).
    Engine-level failures inside a read do *not* crash the worker: the
    replica's own gateway maps them to typed error responses, exactly as
    a single-process gateway would.
    """
    if spec.obs.enabled:
        # Outbox mode: finished spans accumulate locally and are drained
        # into the reply frames — the coordinator owns the trace ring and
        # the JSONL sink, so only it gets an export_path.
        obs.configure(spec.obs.with_(export_path=None), outbox=True)
    service = build_replica_service(spec)
    gateway = Gateway(service)
    try:
        conn.send((messages.HELLO, service.graph_version))
        while True:
            try:
                frame = conn.recv()
            except (EOFError, OSError):
                break
            tag = frame[0]
            if tag == messages.APPLY:
                _, frame_bytes, ctx = frame
                with obs.activate(ctx):
                    with obs.span("replica.apply", replica=spec.replica_id):
                        version = apply_delta(service, frame_bytes)
                conn.send((messages.APPLIED, version, obs.drain()))
            elif tag == messages.REQUESTS:
                _, ticket, requests, coalesce = frame
                responses = gateway.submit_many(list(requests), coalesce=coalesce)
                conn.send(
                    (
                        messages.RESPONSES,
                        ticket,
                        responses,
                        service.graph_version,
                        obs.drain(),
                    )
                )
            elif tag == messages.SYNC:
                conn.send((messages.SYNCED, frame[1], service.graph_version))
            elif tag == messages.SHUTDOWN:
                conn.send((messages.BYE, service.graph_version))
                break
            else:  # pragma: no cover - protocol bug guard
                raise ClusterError(f"unknown frame tag: {tag!r}")
    finally:
        conn.close()
