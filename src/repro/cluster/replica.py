"""The replica worker: one process, one full serving engine.

:func:`replica_main` is the entry point of every cluster worker process.
It builds a complete :class:`~repro.serve.service.PPRService` replica —
own push engine, own resident cache, own delta-CSR snapshot chain — and
serves the coordinator's frames in FIFO order: write deltas are ingested
through the replica's *normal* gateway path (the same
``restore_invariant`` arithmetic and snapshot advancement the primary
ran), reads are answered by the replica's own
:class:`~repro.api.gateway.Gateway` scheduler.

A replica bootstraps one of two ways (:class:`ReplicaSpec`):

* **from arrays** — the primary's order-exact
  :meth:`~repro.graph.digraph.DynamicDiGraph.to_arrays` snapshot, so the
  rebuilt adjacency iteration (and every CSR snapshot derived from it)
  is bit-identical to the primary's;
* **from the store** — :func:`repro.store.recovery.recover_service` over
  the primary's durable state (newest checkpoint + WAL-tail replay).
  This is the respawn path: the WAL is written before any write is
  acknowledged, so a recovered replica lands exactly at the primary's
  head version.

Either way the replica's answers are bit-identical to a single-process
service with the same history — the property ``tests/test_cluster.py``
and ``benchmarks/bench_cluster.py`` assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Any

from .. import chaos, obs
from ..api.gateway import Gateway
from ..api.requests import IngestBatch
from ..chaos import FaultPlan
from ..config import ObsConfig, PPRConfig, ServeConfig, StoreConfig
from ..errors import ClusterError
from ..serve.service import PPRService
from ..store.wal import WalRecord, pack_record, unpack_record
from . import messages


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a worker process needs to build its replica.

    ``graph_arrays``, ``graph_shm`` and ``store_root`` are mutually
    exclusive bootstrap modes; ``serve`` always arrives with
    ``store=None`` (the primary owns durability — replicas must never
    double-log the WAL).
    """

    replica_id: int
    config: PPRConfig
    serve: ServeConfig
    #: Order-exact graph snapshot (``DynamicDiGraph.to_arrays``), or None
    #: when bootstrapping from shared memory or the store.
    graph_arrays: dict[str, Any] | None
    #: Explicit hub ids of the primary's hub tier (empty = no hub tier).
    hubs: tuple[int, ...]
    #: Graph version the ``graph_arrays``/``graph_shm`` snapshot is at.
    graph_version: int
    #: Store directory to recover from instead (the respawn path).
    store_root: str | None = None
    #: Shared-memory snapshot descriptor (:mod:`repro.graph.shm`): the
    #: worker attaches the named segment instead of unpickling arrays —
    #: the zero-copy bootstrap mode (``ClusterConfig.shared_memory``).
    graph_shm: dict[str, Any] | None = None
    #: Tracing/profiling knobs, mirrored from the coordinator's ApiConfig
    #: so replica-side spans are sampled exactly like the front door's.
    obs: ObsConfig = ObsConfig()
    #: Scripted fault schedule, installed fresh in the worker process with
    #: ``replica=replica_id`` so ``replica=``-scoped faults fire in the
    #: right process and counters never inherit coordinator state (fork).
    chaos: FaultPlan | None = None

    def __post_init__(self) -> None:
        modes = sum(
            source is not None
            for source in (self.graph_arrays, self.graph_shm, self.store_root)
        )
        if modes != 1:
            raise ClusterError(
                "a ReplicaSpec needs exactly one of"
                " graph_arrays/graph_shm/store_root"
            )
        if self.serve.store is not None:
            raise ClusterError("replica ServeConfig must not carry a store")


def build_replica_service(spec: ReplicaSpec) -> PPRService:
    """Construct the replica's serving engine per the spec's bootstrap mode."""
    if spec.store_root is not None:
        from ..store.recovery import recover_service

        return recover_service(spec.store_root, attach=False)
    if spec.graph_shm is not None:
        return PPRService.from_shared_snapshot(
            spec.graph_shm,
            config=spec.config,
            serve=spec.serve,
            hubs=list(spec.hubs) if spec.hubs else None,
            graph_version=spec.graph_version,
        )
    return PPRService.from_graph_arrays(
        spec.graph_arrays,
        config=spec.config,
        serve=spec.serve,
        hubs=list(spec.hubs) if spec.hubs else None,
        graph_version=spec.graph_version,
    )


def apply_record(service: PPRService, record: WalRecord) -> int:
    """Apply one decoded write delta; returns the replica's new version.

    Records at or below the replica's version are skipped idempotently (a
    respawned replica may be re-shipped deltas its recovery already
    covered, and a duplicated pipe frame must be harmless); a gap raises
    — a replica must never serve a history with holes.
    """
    if record.seq <= service.graph_version:
        return service.graph_version
    if record.seq != service.graph_version + 1:
        raise ClusterError(
            f"replication gap: replica at v{service.graph_version},"
            f" delta frame is v{record.seq}"
        )
    service.gateway.execute(IngestBatch(updates=record.updates))
    return service.graph_version


def apply_delta(service: PPRService, frame: bytes) -> int:
    """Apply one WAL-framed write delta; returns the replica's new version.

    CRC-verified by :func:`~repro.store.wal.unpack_record` — a replica
    must not apply a delta the channel damaged.
    """
    return apply_record(service, unpack_record(frame))


def promote(
    service: PPRService,
    *,
    epoch: int,
    store_root: str | None,
    store_config: StoreConfig | None = None,
) -> tuple[int, list[bytes]]:
    """Make this replica the primary: own the store, fence ``epoch``.

    The FIFO pipe already delivered every delta the coordinator shipped,
    so the replica's in-memory state is at (or just behind) the acked
    head. Promotion closes the remaining gap from *durable* state: torn
    WAL tails are truncated, every intact record past the replica's
    version is replayed through the normal ingest path, and the store is
    attached (no fresh checkpoint — the one on disk is still valid)
    with its epoch bumped so every future frame is stamped ``epoch``.

    Returns the promoted node's graph version plus the replayed records
    re-stamped as ``pack_record`` frames under the new epoch — the
    coordinator ships those to the *other* replicas so any delta that
    died with the old primary's pipes still reaches the whole fleet.

    A storeless cluster (no durability to inherit) promotes trivially:
    the replica simply starts answering forwarded writes.
    """
    if store_root is None:
        return service.graph_version, []
    from ..store.store import StateStore

    store = StateStore(store_root, store_config)
    store.wal.truncate_torn_tails()
    pending = store.status().replay_batches
    replayed: list[bytes] = []
    for record in store.wal.iter_records(after_seq=service.graph_version):
        if record.seq != service.graph_version + 1:
            raise ClusterError(
                f"promotion gap: replica at v{service.graph_version},"
                f" WAL record is v{record.seq}"
            )
        service.gateway.execute(IngestBatch(updates=record.updates))
        replayed.append(pack_record(record.seq, record.updates, epoch=epoch))
    store._batches_since_checkpoint = pending
    store.epoch = epoch
    service.attach_store(store, checkpoint=False)
    return service.graph_version, replayed


def replica_main(spec: ReplicaSpec, conn: Connection) -> None:
    """Worker-process loop: build the replica, then serve frames forever.

    Exits on ``SHUTDOWN`` (clean drain, acknowledged with ``BYE``), a
    closed pipe (coordinator died — nothing left to serve), or an
    unhandled error (the coordinator sees the broken pipe and respawns).
    Engine-level failures inside a read do *not* crash the worker: the
    replica's own gateway maps them to typed error responses, exactly as
    a single-process gateway would.

    The worker tracks the write-authority ``epoch`` it has observed
    (adopted from applied frames and from its own promotion). An APPLY
    frame stamped with an *older* epoch is a zombie primary's late write:
    it is rejected — acknowledged at the current version, never applied —
    and emitted as a ``replica.fenced_frame`` event.
    """
    if spec.obs.enabled:
        # Outbox mode: finished spans accumulate locally and are drained
        # into the reply frames — the coordinator owns the trace ring and
        # the JSONL sink, so only it gets an export_path.
        obs.configure(spec.obs.with_(export_path=None), outbox=True)
    # Fresh install (not fork inheritance): visit counters start at zero
    # in every worker, and replica= scoping matches this process.
    chaos.install(spec.chaos, replica=spec.replica_id)
    service = build_replica_service(spec)
    gateway = Gateway(service)
    epoch = 0
    try:
        conn.send((messages.HELLO, service.graph_version))
        while True:
            try:
                frame = conn.recv()
            except (EOFError, OSError):
                break
            tag = frame[0]
            if tag == messages.APPLY:
                _, frame_bytes, ctx = frame
                with obs.activate(ctx):
                    record = unpack_record(frame_bytes)
                    if record.epoch < epoch:
                        obs.event(
                            "replica.fenced_frame",
                            replica=spec.replica_id,
                            seq=record.seq,
                            frame_epoch=record.epoch,
                            epoch=epoch,
                        )
                        conn.send(
                            (messages.APPLIED, service.graph_version, obs.drain())
                        )
                        continue
                    epoch = record.epoch
                    with obs.span("replica.apply", replica=spec.replica_id):
                        chaos.check("replica.apply", seq=record.seq)
                        version = apply_record(service, record)
                conn.send((messages.APPLIED, version, obs.drain()))
            elif tag == messages.REQUESTS:
                _, ticket, requests, coalesce = frame
                chaos.check("replica.serve", ticket=ticket)
                responses = gateway.submit_many(list(requests), coalesce=coalesce)
                conn.send(
                    (
                        messages.RESPONSES,
                        ticket,
                        responses,
                        service.graph_version,
                        obs.drain(),
                    )
                )
            elif tag == messages.SYNC:
                conn.send((messages.SYNCED, frame[1], service.graph_version))
            elif tag == messages.PROMOTE:
                _, ticket, new_epoch, store_root, store_config = frame
                with obs.span(
                    "replica.promote", replica=spec.replica_id, epoch=new_epoch
                ):
                    version, replayed = promote(
                        service,
                        epoch=new_epoch,
                        store_root=store_root,
                        store_config=store_config,
                    )
                epoch = new_epoch
                conn.send(
                    (messages.PROMOTED, ticket, version, replayed, obs.drain())
                )
            elif tag == messages.INGEST:
                _, ticket, request, ctx = frame
                with obs.activate(ctx):
                    with obs.span(
                        "replica.ingest", replica=spec.replica_id, tier="primary"
                    ):
                        response = gateway.submit(request)
                conn.send(
                    (
                        messages.RESPONSES,
                        ticket,
                        (response,),
                        service.graph_version,
                        obs.drain(),
                    )
                )
            elif tag == messages.SHUTDOWN:
                conn.send((messages.BYE, service.graph_version))
                break
            else:  # pragma: no cover - protocol bug guard
                raise ClusterError(f"unknown frame tag: {tag!r}")
    finally:
        conn.close()
