"""The cluster coordinator: N replica processes behind one typed gateway.

:class:`ClusterGateway` implements the same request/response protocol as
:class:`repro.api.gateway.Gateway` — ``submit`` / ``submit_many`` /
``execute`` over the typed dataclasses of :mod:`repro.api` — so the
embedded :class:`~repro.api.client.Client`, the HTTP front-end, and
every existing caller work unchanged while queries finally use more than
one core:

* **writes** (:class:`~repro.api.requests.IngestBatch`) apply on the
  *primary* engine in-process (which owns durability: WAL, checkpoints,
  optimistic-concurrency checks), then ship to every replica as ordered
  WAL-framed deltas over its FIFO pipe;
* **reads** are load-balanced across replicas per the placement policy —
  ``HASHED`` keeps each source on one replica so per-source maintenance
  (lazy refreshes, admissions) partitions across processes; coalesced
  read runs (:mod:`repro.api.scheduling`, shared with the single-process
  scheduler) are split into per-replica chunks that execute
  concurrently;
* **consistency** rides the channel: a read enqueued behind a delta is
  served at a version covering it, so ``FRESH`` holds without extra
  round trips (``PIPELINED``) or with an explicit version barrier
  (``BARRIER``); ``BOUNDED``/``ANY`` are enforced engine-side on the
  replica exactly as in a single process;
* **failures**: a dead replica (crash, kill, wedge) is detected at the
  next interaction, respawned — recovering from the primary's durable
  store when one is attached, else from an order-exact graph snapshot —
  and the interrupted chunk is re-dispatched. Respawns beyond
  ``ClusterConfig.max_respawns`` surface as
  :class:`~repro.errors.ClusterError` (stable code ``CLUSTER``);
* **primary failover**: when the embedded primary is retired (chaos
  kill, fenced store after an fsync failure), the next write promotes
  the most-caught-up live replica — it replays the WAL tail, takes over
  the store, and every subsequent frame is stamped with a bumped
  *epoch* so the fenced writer's late deltas are rejected. ANY/BOUNDED
  reads keep serving from the surviving replicas throughout; FRESH
  degrades to a typed 503 until the promotion completes. A per-replica
  :class:`~repro.api.resilience.CircuitBreaker` ejects a failing
  replica from the read rotation before its deadline fires.

See ``docs/cluster.md`` for the topology and routing table,
``docs/faults.md`` for the failure model and failover walkthrough;
``benchmarks/bench_cluster.py`` races this gateway against the
single-process one on the same trace.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections import Counter
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from .. import chaos, obs
from ..api.admission import AdmissionController
from ..api.gateway import RESPONSE_FOR, Gateway
from ..api.requests import (
    ApiRequest,
    BatchQuery,
    Deadline,
    Health,
    HubQuery,
    IngestBatch,
    Prefetch,
    Ready,
    ScoreQuery,
    Stats,
    TopKQuery,
)
from ..api.resilience import CircuitBreaker
from ..api.responses import (
    ApiResponse,
    BatchResult,
    ErrorInfo,
    HealthResult,
    PrefetchResult,
    ReadyResult,
    StatsResult,
    TopKResult,
)
from ..api.scheduling import ReadRun, plan_schedule, scatter_run_results
from ..chaos import FaultKind
from ..config import (
    ApiConfig,
    CatchUpPolicy,
    ClusterConfig,
    ConsistencyLevel,
    PlacementPolicy,
)
from ..errors import (
    ClusterError,
    DeadlineError,
    OverloadError,
    ReproError,
    StoreError,
)
from ..obs import clock
from ..store.wal import pack_record
from . import messages
from .replica import ReplicaSpec, replica_main

if TYPE_CHECKING:
    from ..api.client import Client
    from ..graph.shm import SnapshotPublisher
    from ..serve.service import PPRService


class _ReplicaDied(Exception):
    """Internal control flow: the worker at ``index`` stopped answering."""


class _DeadlineExpired(Exception):
    """Internal control flow: a request's deadline lapsed mid-await.

    Distinct from :class:`_ReplicaDied` because the remedy differs: the
    worker may be perfectly healthy (just slow, or wedged under SIGSTOP),
    but its in-flight ticket has been abandoned — the replica must be
    replaced so a late ``RESPONSES`` frame cannot poison the next await
    on the same pipe.
    """


class ReplicaHandle:
    """Coordinator-side view of one worker process."""

    def __init__(
        self, spec: ReplicaSpec, ctx: multiprocessing.context.BaseContext
    ) -> None:
        self.spec = spec
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=replica_main,
            args=(spec, child),
            name=f"ppr-replica-{spec.replica_id}",
            daemon=True,
        )
        self.process.start()
        child.close()
        #: Highest graph version this replica has acknowledged applying.
        self.applied_version = -1
        #: Reads/chunks dispatched to this replica (stats surface).
        self.dispatched = 0
        #: Tickets whose answers nobody is waiting for anymore (hedged
        #: reads that lost the race, deadline-abandoned dispatches):
        #: their late RESPONSES frames are absorbed, not protocol errors.
        self.abandoned: set[int] = set()

    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, frame: tuple) -> None:
        try:
            self.conn.send(frame)
        except (OSError, ValueError) as exc:
            raise _ReplicaDied(str(exc)) from exc
        # Under fork, siblings spawned later inherit this pipe's fds, so
        # a write into a dead worker can succeed silently instead of
        # raising EPIPE. A liveness check narrows that window; `_await`'s
        # poll loop is the guaranteed backstop.
        if not self.process.is_alive():
            raise _ReplicaDied(f"{self.process.name} is not alive")

    def close(self, *, terminate: bool = False, timeout: float = 5.0) -> None:
        """Join the worker; ``terminate`` kills it outright (no wait).

        The forced path uses SIGKILL, not SIGTERM: a worker wedged under
        SIGSTOP is still ``is_alive()`` yet never processes SIGTERM
        (stopped processes leave catchable signals pending), so the old
        terminate-then-join dance stalled two full join timeouts exactly
        when a fast replacement mattered most. SIGKILL takes effect
        regardless of stop state. ``timeout`` bounds each join (graceful
        shutdown passes its remaining drain budget).
        """
        if terminate and self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=timeout)
        self.conn.close()


class ClusterGateway:
    """Replicated drop-in for :class:`~repro.api.gateway.Gateway`.

    Parameters
    ----------
    service:
        The *primary* engine. It applies every write (and owns the
        attached :class:`~repro.store.StateStore`, when any); its own
        gateway handles admin operations. Replicas are full copies
        bootstrapped from its order-exact graph snapshot.
    cluster:
        Topology and failure-handling knobs
        (:class:`repro.config.ClusterConfig`).
    config:
        Protocol knobs (:class:`repro.config.ApiConfig`), exactly as for
        the single-process gateway — read-coalescing width, HTTP bind
        address, default consistency.

    Examples
    --------
    >>> from repro import DynamicDiGraph, PPRService
    >>> from repro.api import TopKQuery
    >>> from repro.cluster import ClusterGateway
    >>> from repro.config import ClusterConfig
    >>> service = PPRService(DynamicDiGraph([(1, 0), (2, 0), (0, 1)]))
    >>> gateway = ClusterGateway(service, ClusterConfig(replicas=1))
    >>> response = gateway.submit(TopKQuery(source=0, k=2))
    >>> gateway.close()
    >>> response.ok and response.vertices[0] == 0
    True
    """

    def __init__(
        self,
        service: "PPRService",
        cluster: ClusterConfig | None = None,
        config: ApiConfig | None = None,
    ) -> None:
        self.service = service
        self.cluster = cluster or ClusterConfig()
        self.config = config or ApiConfig()
        self.primary = (
            Gateway(service, self.config)
            if service._gateway is None
            else service.gateway
        )
        self._ctx = multiprocessing.get_context(self.cluster.start_method)
        self._lock = threading.RLock()
        self._ticket = 0
        self._rotor = 0
        self.counters: Counter[str] = Counter()
        #: Bounded-queue backpressure gate; None when admission_queue == 0.
        self.admission: AdmissionController | None = (
            AdmissionController(self.config.admission_queue)
            if self.config.admission_queue
            else None
        )
        self._respawn_counts: dict[int, int] = {}
        self._closed = False
        #: Write-authority term; bumped at every failover and stamped
        #: into every WAL frame shipped under the new primary.
        self.epoch = 0
        #: Index of the promoted replica, or None while the embedded
        #: engine is primary.
        self._primary_index: int | None = None
        #: True once the embedded engine has been retired (chaos kill or
        #: fenced store) — the next write triggers a failover.
        self._embedded_dead = False
        #: Acknowledged head version: the newest version an acked write
        #: produced. Tracks ``service.graph_version`` while the embedded
        #: engine is primary, then the promoted replica's acked writes.
        self._head = service.graph_version
        #: APPLY frames held back by a DELAY fault, per replica index.
        self._delayed: dict[int, tuple] = {}
        self.breakers: list[CircuitBreaker] = [
            CircuitBreaker(self.cluster.breaker_failures, self.cluster.breaker_cooldown)
            for _ in range(self.cluster.replicas)
        ]
        #: Versioned shared-memory snapshot registry (lazy; one bundle per
        #: published graph version, superseded versions unlinked).
        self._publisher: "SnapshotPublisher | None" = None
        self.replicas: list[ReplicaHandle] = []
        try:
            for index in range(self.cluster.replicas):
                self.replicas.append(self._spawn(index))
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _spec(self, index: int, *, from_store: bool) -> ReplicaSpec:
        service = self.service
        serve = service.serve.with_(store=None)
        # The coordinator's installed fault plan rides every spec; the
        # worker re-installs it fresh (zeroed counters, replica-scoped).
        plan = chaos.INJECTOR.plan
        if from_store:
            assert service.store is not None
            return ReplicaSpec(
                replica_id=index,
                config=service.config,
                serve=serve,
                graph_arrays=None,
                hubs=tuple(service.hubs),
                graph_version=service.graph_version,
                store_root=str(service.store.root),
                obs=self.config.obs,
                chaos=plan,
            )
        if self.cluster.shared_memory:
            return ReplicaSpec(
                replica_id=index,
                config=service.config,
                serve=serve,
                graph_arrays=None,
                hubs=tuple(service.hubs),
                graph_version=service.graph_version,
                store_root=None,
                graph_shm=self._publish_snapshot(),
                obs=self.config.obs,
                chaos=plan,
            )
        return ReplicaSpec(
            replica_id=index,
            config=service.config,
            serve=serve,
            graph_arrays=service.graph.to_arrays(),
            hubs=tuple(service.hubs),
            graph_version=service.graph_version,
            store_root=None,
            obs=self.config.obs,
            chaos=plan,
        )

    def _publish_snapshot(self) -> dict[str, Any]:
        """Publish the primary's current snapshot to shared memory (once).

        One bundle per graph version, shared by every replica spawned at
        that version: the order-exact graph arrays, the consolidated CSR
        of the same version (so workers skip their own O(n + m) rebuild),
        and the scalar meta that keeps the lazy graph build O(1).
        Re-publishing the current version returns the existing descriptor
        without copying anything.
        """
        if self._publisher is None:
            from ..graph.shm import SnapshotPublisher

            self._publisher = SnapshotPublisher(tag="cluster")
        service = self.service
        version = service.graph_version
        if self._publisher.current_version == version:
            return self._publisher.descriptor(version)
        arrays = dict(service.graph.to_arrays())
        arrays.update(service.shared_snapshot_arrays())
        return self._publisher.publish(
            version,
            arrays,
            meta={
                "num_edges": service.graph.num_edges,
                "max_vertex": service.graph.max_vertex_id,
            },
        )

    def _spawn(self, index: int, *, from_store: bool = False) -> ReplicaHandle:
        handle = ReplicaHandle(self._spec(index, from_store=from_store), self._ctx)
        deadline = clock.now() + self.cluster.spawn_timeout_s
        try:
            while not handle.conn.poll(0.05):
                if clock.now() > deadline or not handle.alive():
                    raise ClusterError(
                        f"replica {index} never completed its spawn handshake"
                    )
            tag, version = handle.conn.recv()
        except (EOFError, OSError) as exc:
            handle.close(terminate=True)
            raise ClusterError(f"replica {index} died during spawn: {exc}") from exc
        except ClusterError:
            handle.close(terminate=True)
            raise
        if tag != messages.HELLO:
            handle.close(terminate=True)
            raise ClusterError(f"replica {index} sent {tag!r} instead of hello")
        if version != self._head:
            # A store bootstrap under a lax fsync policy can land behind
            # head; an order-exact snapshot of the live primary cannot.
            handle.close(terminate=True)
            if from_store and self._primary_index is None:
                return self._spawn(index, from_store=False)
            raise ClusterError(
                f"replica {index} came up at v{version},"
                f" acked head is at v{self._head}"
            )
        handle.applied_version = version
        return handle

    def _revive(self, index: int) -> None:
        """Replace a dead replica, recovering from the store when attached.

        The respawn budget is tracked *per replica slot*: a poison batch
        crash-looping one worker exhausts that slot's budget, while
        unrelated transient deaths of other replicas keep their own.
        """
        count = self._respawn_counts.get(index, 0) + 1
        if count > self.cluster.max_respawns:
            raise ClusterError(
                f"replica {index} died and its respawn budget"
                f" ({self.cluster.max_respawns}) is exhausted"
            )
        if self._primary_index is not None and self.service.store is None:
            # Post-failover without a store there is nothing to rebuild
            # from: the retired embedded engine is behind the forwarded
            # writes, and only the promoted primary has the full history.
            raise ClusterError(
                f"replica {index} died and cannot be rebuilt: no store"
                " to recover from after failover"
            )
        if index == self._primary_index:
            # The promoted primary died; a plain respawn recovers its
            # state but not its role (no store attached worker-side, no
            # epoch), so the next write must run a fresh failover.
            self._primary_index = None
            obs.event("primary.lost", replica=index, epoch=self.epoch)
        self._respawn_counts[index] = count
        obs.event("replica-crashed", replica=index, respawn=count)
        with obs.span("cluster.respawn", replica=index):
            self.replicas[index].close(terminate=True)
            self.replicas[index] = self._spawn(
                index, from_store=self.service.store is not None
            )
        self.counters["respawns"] += 1

    def close(self, *, deadline_s: float | None = None) -> None:
        """Drain and stop every worker (idempotent).

        A clean drain: each live replica gets a ``SHUTDOWN`` frame and
        acknowledges with ``BYE`` after finishing whatever frame it was
        serving; stragglers are terminated after a grace period.
        ``deadline_s`` bounds the whole drain (graceful shutdown) — past
        it, remaining workers get SIGKILL joins with a minimal timeout.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            limit = clock.now() + deadline_s if deadline_s is not None else None
            for handle in self.replicas:
                try:
                    handle.send((messages.SHUTDOWN,))
                except _ReplicaDied:
                    pass
            for handle in self.replicas:
                if limit is None:
                    handle.close()
                else:
                    handle.close(
                        timeout=max(0.1, min(5.0, limit - clock.now()))
                    )
            if self._publisher is not None:
                self._publisher.close()
                self._publisher = None

    def __enter__(self) -> "ClusterGateway":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # channel plumbing
    # ------------------------------------------------------------------ #

    def _next_ticket(self) -> int:
        self._ticket += 1
        return self._ticket

    def _absorb(self, handle: ReplicaHandle, frame: tuple) -> tuple | None:
        """Consume bookkeeping frames; return frames the caller must handle."""
        tag = frame[0]
        if tag == messages.APPLIED:
            handle.applied_version = max(handle.applied_version, frame[1])
            obs.ingest_spans(frame[2])
            return None
        if tag == messages.SYNCED:
            handle.applied_version = max(handle.applied_version, frame[2])
            return frame
        if tag == messages.RESPONSES and frame[1] in handle.abandoned:
            # A hedged read's losing answer, or a deadline-abandoned
            # dispatch finally finishing: keep the version/span
            # bookkeeping, drop the payload.
            handle.abandoned.discard(frame[1])
            handle.applied_version = max(handle.applied_version, frame[3])
            obs.ingest_spans(frame[4])
            return None
        return frame

    def _drain_acks(self) -> None:
        """Opportunistically absorb pending APPLIED acks (non-blocking)."""
        for handle in self.replicas:
            try:
                while handle.conn.poll(0):
                    frame = handle.conn.recv()
                    self._absorb(handle, frame)
            except (EOFError, OSError):
                continue  # detected for real at the next dispatch

    def _await(
        self, index: int, ticket: int, deadline: Deadline | None = None
    ) -> list[ApiResponse]:
        """Block until replica ``index`` answers ``ticket``; absorb acks.

        Bounded by *both* clocks: the cluster's response timeout (a wedged
        worker is treated as dead) and the request's own ``deadline`` when
        it carries one — an overdue answer is worthless, so the wait fails
        fast with :class:`_DeadlineExpired` instead of burning the full
        response timeout.
        """
        handle = self.replicas[index]
        timeout_at = clock.now() + self.cluster.response_timeout_s
        with obs.span("cluster.await", replica=index):
            return self._await_loop(handle, index, ticket, deadline, timeout_at)

    def _await_loop(
        self,
        handle: ReplicaHandle,
        index: int,
        ticket: int,
        deadline: Deadline | None,
        timeout_at: float,
    ) -> list[ApiResponse]:
        while True:
            try:
                if not handle.conn.poll(0.05):
                    if not handle.alive():
                        raise _ReplicaDied(f"replica {index} exited")
                    now = clock.now()
                    if deadline is not None and deadline.expired(now):
                        raise _DeadlineExpired(index)
                    if now > timeout_at:
                        raise _ReplicaDied(f"replica {index} timed out")
                    continue
                frame = handle.conn.recv()
            except (EOFError, OSError) as exc:
                raise _ReplicaDied(str(exc)) from exc
            frame = self._absorb(handle, frame)
            if frame is None:
                continue
            if frame[0] == messages.RESPONSES and frame[1] == ticket:
                handle.applied_version = max(handle.applied_version, frame[3])
                obs.ingest_spans(frame[4])
                return list(frame[2])
            if frame[0] in (messages.SYNCED, messages.BYE):
                continue
            raise ClusterError(
                f"replica {index} broke protocol: got {frame[0]!r}"
                f" while awaiting ticket {ticket}"
            )

    def _barrier(self, index: int) -> None:
        """Explicit catch-up: wait until the replica acks head version."""
        handle = self.replicas[index]
        if handle.applied_version >= self._head:
            return
        ticket = self._next_ticket()
        handle.send((messages.SYNC, ticket))
        deadline = clock.now() + self.cluster.response_timeout_s
        with obs.span("cluster.barrier", replica=index):
            while handle.applied_version < self._head:
                try:
                    if not handle.conn.poll(0.05):
                        if not handle.alive() or clock.now() > deadline:
                            raise _ReplicaDied(f"replica {index} failed its barrier")
                        continue
                    self._absorb(handle, handle.conn.recv())
                except (EOFError, OSError) as exc:
                    raise _ReplicaDied(str(exc)) from exc

    def _dispatch(
        self,
        index: int,
        requests: Sequence[ApiRequest],
        *,
        coalesce: bool,
        fresh: bool,
    ) -> int:
        """Ship a read chunk to one replica; returns the ticket to await."""
        if fresh and not self.has_primary:
            # No write authority exists, so "fresh as of now" is not a
            # promise anyone can keep. The typed 503 is the promotion
            # window's only degradation: ANY/BOUNDED reads keep serving.
            raise ClusterError(
                "FRESH reads unavailable: no primary (failover pending)"
            )
        if fresh and self.cluster.catch_up is CatchUpPolicy.BARRIER:
            self._barrier(index)
        ticket = self._next_ticket()
        handle = self.replicas[index]
        ctx = obs.current()
        if ctx is not None:
            # Replica-side spans join this request's trace: the context
            # rides each request as a pickled instance attribute.
            for request in requests:
                obs.attach(request, ctx)
        handle.send((messages.REQUESTS, ticket, tuple(requests), coalesce))
        handle.dispatched += 1
        return ticket

    def _dispatch_single(self, index: int, request: ApiRequest) -> ApiResponse:
        """One read on one replica, with crash detection and one retry.

        Outcomes feed the replica's circuit breaker: a death or expired
        deadline counts as a failure, a served answer closes it again.
        """
        fresh = self._is_fresh(request)
        deadline = getattr(request, "deadline", None)
        if (
            self.cluster.hedge_reads
            and not fresh
            and len(self.replicas) > 1
            and isinstance(request, (TopKQuery, ScoreQuery))
        ):
            return self._hedged_single(index, request)
        try:
            ticket = self._dispatch(index, [request], coalesce=False, fresh=fresh)
            response = self._await(index, ticket, deadline)[0]
        except _DeadlineExpired:
            self.breakers[index].record_failure()
            raise self._abandon(index, deadline) from None
        except _ReplicaDied:
            self.breakers[index].record_failure()
            return self._retry_single(index, request, fresh)
        self.breakers[index].record_success()
        return response

    def _abandon(self, index: int, deadline: Deadline | None) -> DeadlineError:
        """Replace a replica whose in-flight ticket was abandoned.

        The worker may still answer the abandoned ticket eventually; a
        late ``RESPONSES`` frame on the same pipe would break the next
        await's protocol check. Respawning swaps in a fresh pipe (and,
        if the worker was wedged under SIGSTOP, a live process), so
        deadline expiry degrades exactly one request. Returns the typed
        error for the caller to raise.
        """
        self._revive(index)
        assert deadline is not None
        return deadline.to_error()

    def _retry_single(
        self, index: int, request: ApiRequest, fresh: bool
    ) -> ApiResponse:
        """Revive replica ``index`` and re-run one request on it.

        The retry lands on the *respawned* replica — recovered from the
        store (or re-snapshotted from the primary) at head version — so
        the answer is still a correct answer at its stated snapshot
        version, merely cold where the dead replica was warm. A second
        death surfaces as the typed :class:`~repro.errors.ClusterError`
        (never the internal control-flow exception).
        """
        deadline = getattr(request, "deadline", None)
        if deadline is not None and deadline.expired():
            # No point re-running work nobody is waiting for; the revive
            # already happened (or happens now) so the slot stays healthy.
            self._revive(index)
            raise deadline.to_error()
        self._revive(index)
        try:
            ticket = self._dispatch(index, [request], coalesce=False, fresh=fresh)
            response = self._await(index, ticket, deadline)[0]
        except _DeadlineExpired:
            self.breakers[index].record_failure()
            raise self._abandon(index, deadline) from None
        except _ReplicaDied as exc:
            self.breakers[index].record_failure()
            raise ClusterError(
                f"replica {index} died twice serving one request"
            ) from exc
        self.breakers[index].record_success()
        return response

    def _hedged_single(self, index: int, request: ApiRequest) -> ApiResponse:
        """Dispatch an idempotent read to two replicas; first answer wins.

        The loser's ticket joins its handle's ``abandoned`` set so the
        late answer is absorbed as bookkeeping rather than tripping the
        protocol check. If one of the pair dies the race degrades to a
        plain await on the survivor; if both die, the normal
        revive-and-retry path takes over on the owner.
        """
        backup = self._route((index + 1) % len(self.replicas))
        deadline = getattr(request, "deadline", None)
        ctx = obs.current()
        if ctx is not None:
            obs.attach(request, ctx)
        racers: dict[int, int] = {}  # replica index -> ticket
        for i in dict.fromkeys((index, backup)):
            try:
                ticket = self._next_ticket()
                handle = self.replicas[i]
                handle.send((messages.REQUESTS, ticket, (request,), False))
                handle.dispatched += 1
                racers[i] = ticket
            except _ReplicaDied:
                self.breakers[i].record_failure()
        if not racers:
            return self._retry_single(index, request, False)
        self.counters["reads_hedged"] += 1
        timeout_at = clock.now() + self.cluster.response_timeout_s
        with obs.span("cluster.hedge", owner=index, racers=len(racers)):
            while racers:
                now = clock.now()
                if deadline is not None and deadline.expired(now):
                    for i, ticket in racers.items():
                        self.replicas[i].abandoned.add(ticket)
                        self.breakers[i].record_failure()
                    raise deadline.to_error()
                if now > timeout_at:
                    break
                for i, ticket in list(racers.items()):
                    handle = self.replicas[i]
                    try:
                        if not handle.conn.poll(0.01):
                            if not handle.alive():
                                raise _ReplicaDied(f"replica {i} exited")
                            continue
                        frame = self._absorb(handle, handle.conn.recv())
                    except _ReplicaDied:
                        self.breakers[i].record_failure()
                        del racers[i]
                        continue
                    except (EOFError, OSError):
                        self.breakers[i].record_failure()
                        del racers[i]
                        continue
                    if frame is None or frame[0] in (messages.SYNCED, messages.BYE):
                        continue
                    if frame[0] == messages.RESPONSES and frame[1] == ticket:
                        handle.applied_version = max(
                            handle.applied_version, frame[3]
                        )
                        obs.ingest_spans(frame[4])
                        self.breakers[i].record_success()
                        for loser, lost in racers.items():
                            if loser != i:
                                self.replicas[loser].abandoned.add(lost)
                        return frame[2][0]
                    raise ClusterError(
                        f"replica {i} broke protocol: got {frame[0]!r}"
                        f" while awaiting hedged ticket {ticket}"
                    )
        # Both racers died or the response timeout lapsed: abandon any
        # survivors' tickets and fall back to revive-and-retry.
        for i, ticket in racers.items():
            self.replicas[i].abandoned.add(ticket)
        return self._retry_single(index, request, False)

    def _scatter(
        self, per_replica: dict[int, ApiRequest], fresh: bool
    ) -> dict[int, ApiResponse]:
        """One request per replica, dispatched concurrently.

        Every request is shipped before any answer is awaited, so the
        replicas compute in parallel; a replica that dies is revived and
        its request retried once on the fresh worker.
        """
        tickets: dict[int, int] = {}
        results: dict[int, ApiResponse] = {}
        for index, request in per_replica.items():
            try:
                tickets[index] = self._dispatch(
                    index, [request], coalesce=False, fresh=fresh
                )
            except _ReplicaDied:
                results[index] = self._retry_single(index, request, fresh)
        for index, request in per_replica.items():
            if index in results:
                continue
            try:
                results[index] = self._await(
                    index, tickets[index], getattr(request, "deadline", None)
                )[0]
            except _DeadlineExpired:
                raise self._abandon(
                    index, getattr(request, "deadline", None)
                ) from None
            except _ReplicaDied:
                results[index] = self._retry_single(index, request, fresh)
        return results

    @staticmethod
    def _is_fresh(request: ApiRequest) -> bool:
        consistency = getattr(request, "consistency", None)
        return (
            consistency is not None
            and consistency.level is ConsistencyLevel.FRESH
        )

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    @property
    def has_primary(self) -> bool:
        """Is there a live write authority (embedded or promoted)?"""
        return self._primary_index is not None or not self._embedded_dead

    def _route(self, index: int) -> int:
        """First replica at or after ``index`` whose breaker admits traffic.

        Walking forward keeps HASHED placement's warm-cache affinity for
        healthy replicas while ejecting open-breaker ones from the
        rotation; if every breaker is open the original owner gets the
        request anyway (serving a maybe-failing replica beats failing
        outright, and the denials advance each breaker's cooldown).
        """
        n = len(self.replicas)
        for step in range(n):
            candidate = (index + step) % n
            if self.breakers[candidate].allow():
                if candidate != index:
                    self.counters["reads_rerouted"] += 1
                return candidate
        return index

    def _owner(self, source: int) -> int:
        if self.cluster.placement is PlacementPolicy.HASHED:
            return source % len(self.replicas)
        self._rotor = (self._rotor + 1) % len(self.replicas)
        return self._rotor

    def _partition(self, sources: Sequence[int]) -> dict[int, list[int]]:
        """Group sources by owning replica, preserving per-chunk order."""
        chunks: dict[int, list[int]] = {}
        if self.cluster.placement is PlacementPolicy.HASHED:
            for source in sources:
                chunks.setdefault(source % len(self.replicas), []).append(source)
            return chunks
        # Round-robin: contiguous even slices, deterministic for a trace.
        n = len(self.replicas)
        width = max(1, -(-len(sources) // n))
        for index in range(n):
            chunk = list(sources[index * width : (index + 1) * width])
            if chunk:
                chunks[index] = chunk
        return chunks

    # ------------------------------------------------------------------ #
    # the typed protocol
    # ------------------------------------------------------------------ #

    def submit(self, request: ApiRequest) -> ApiResponse:
        """Execute one request; failures become error-carrying responses.

        With :attr:`~repro.config.ApiConfig.admission_queue` set, the
        request first passes the bounded admission gate (same policy as
        the single-process gateway): past its priority class's depth
        threshold it is shed with stable code ``OVERLOAD``.
        """
        try:
            if self.admission is not None:
                self.admission.admit(request)
                try:
                    return self.execute(request)
                finally:
                    self.admission.release()
            return self.execute(request)
        except ReproError as exc:
            self.counters["errors"] += 1
            if isinstance(exc, OverloadError):
                self.counters["shed"] += 1
            elif isinstance(exc, DeadlineError):
                self.counters["deadline_exceeded"] += 1
            shape = RESPONSE_FOR.get(type(request), ApiResponse)
            return shape.failure(
                ErrorInfo.from_exception(exc),
                snapshot_version=self._head,
            )

    def execute(self, request: ApiRequest) -> ApiResponse:
        """Execute one request, raising typed errors (the embedded path).

        Latency lands in the ``cluster.<op>`` stage histograms (distinct
        from the primary gateway's ``request.<op>`` stages, so replicated
        and single-process timings never mix); a sampled request's
        coordinator work is wrapped in a ``gateway.execute`` span with
        ``tier="cluster"``.
        """
        queued = clock.now()
        with self._lock:
            waited = clock.now() - queued
            obs.observe("queue.wait", waited)
            source = getattr(request, "source", None)
            ctx = obs.trace_of(request)
            if ctx is None:
                with obs.measured(f"cluster.{request.op}", source=source):
                    return self._execute(request)
            with obs.activate(ctx):
                obs.record_span(
                    "queue.wait", start=queued, duration=waited, observe=False
                )
                with obs.span("gateway.execute", op=request.op, tier="cluster"):
                    with obs.measured(
                        f"cluster.{request.op}",
                        trace_id=ctx.trace_id,
                        source=source,
                    ):
                        return self._execute(request)

    def _execute(self, request: ApiRequest) -> ApiResponse:
        with self._lock:
            if self._closed:
                raise ClusterError("cluster gateway is closed")
            try:
                return self._execute_routed(request)
            except (_ReplicaDied, _DeadlineExpired) as exc:
                # Backstop: the retry paths convert these; anything that
                # still escapes must not reach HTTP clients as internal
                # control flow.
                raise ClusterError(
                    f"replica failure escaped the retry path: {exc}"
                ) from exc
            except (EOFError, BrokenPipeError, ConnectionError) as exc:
                # A replica pipe breaking mid-request is a cluster
                # failure (stable code CLUSTER, HTTP 503), never a raw
                # EOFError/BrokenPipeError to the caller.
                raise ClusterError(
                    f"replica channel broke mid-request: {exc}"
                ) from exc

    def _execute_routed(self, request: ApiRequest) -> ApiResponse:
        self._drain_acks()
        self.counters[request.op] += 1
        # Under the lock, so queueing on a busy coordinator counts
        # against the budget (matching the single-process gateway).
        deadline = getattr(request, "deadline", None)
        if deadline is not None and deadline.expired():
            raise deadline.to_error()
        if isinstance(request, IngestBatch):
            return self._execute_ingest(request)
        if isinstance(request, TopKQuery):
            return self._dispatch_single(
                self._route(self._owner(request.source)), request
            )
        if isinstance(request, ScoreQuery):
            return self._dispatch_single(
                self._route(self._owner(request.source)), request
            )
        if isinstance(request, HubQuery):
            self._rotor = (self._rotor + 1) % len(self.replicas)
            return self._dispatch_single(self._route(self._rotor), request)
        if isinstance(request, BatchQuery):
            return self._execute_batch(request)
        if isinstance(request, Prefetch):
            return self._execute_prefetch(request)
        if isinstance(request, Stats):
            return self._execute_stats(request)
        if isinstance(request, Ready):
            return self._execute_ready()
        if isinstance(request, Health):
            return self._execute_health()
        # CheckpointNow and anything engine-administrative run on
        # whatever node currently holds the primary role.
        return self._admin_execute(request)

    def _admin_execute(self, request: ApiRequest) -> ApiResponse:
        """Run an administrative request on the current write authority."""
        if self._primary_index is not None:
            return self._dispatch_single(self._primary_index, request)
        if self._embedded_dead:
            raise ClusterError(
                f"no primary available for {request.op!r} (failover pending)"
            )
        return self.primary.execute(request)

    # -- writes -------------------------------------------------------- #

    def _execute_ingest(self, request: IngestBatch) -> ApiResponse:
        """Apply on the current primary, then ship the delta everywhere.

        The primary's gateway does validation, optimistic-concurrency
        checks, WAL logging, and checkpoint cadence; only an
        *acknowledged* batch is framed (with the WAL's own codec) and
        shipped. Replication is asynchronous — acks drain lazily — but
        FIFO pipes guarantee every later read observes the delta.

        Failure handling is what makes this the failover trigger: a
        ``primary.apply`` CRASH fault retires the embedded engine, and a
        fenced store (failed WAL append) retires it after surfacing the
        write's typed error — either way the *next* write promotes the
        most-caught-up replica and is forwarded to it.
        """
        fault = chaos.fire("primary.apply", seq=self._head + 1)
        if fault is not None and fault.kind is FaultKind.CRASH:
            self.kill_primary()
        if fault is not None and fault.kind is FaultKind.ERROR:
            raise ClusterError(
                fault.message or "injected primary failure at primary.apply"
            )
        if self._primary_index is not None or self._embedded_dead:
            return self._forward_ingest(request)
        try:
            response = self.primary.execute(request)
        except StoreError:
            if self.service.store is not None and self.service.store.failed:
                # The frame was rolled back, so durable state still
                # matches the acked history — but this engine can no
                # longer persist writes. Retire it; the write itself
                # surfaces as a typed STORE failure the client retries.
                self._embedded_dead = True
                obs.event("primary.retired", reason="store-failed", head=self._head)
            raise
        if response.error is None:
            self._head = self.service.graph_version
            # Ship even an empty batch: the primary bumped its version,
            # and a replica that misses any version sees a replication
            # gap and crashes. The codec frames zero rows fine.
            frame = pack_record(self._head, request.updates, epoch=self.epoch)
            with obs.span(
                "cluster.ship_wal", seq=self._head, replicas=len(self.replicas)
            ):
                self._ship_frame(frame, obs.current(), seq=self._head)
            self.counters["deltas_shipped"] += 1
        return response

    def kill_primary(self) -> None:
        """Retire the embedded primary (chaos/test hook).

        The engine stops taking writes immediately; promotion is
        deferred to the next write so the degraded window (FRESH reads
        answering 503, ANY/BOUNDED still serving) is observable and
        deterministic rather than racing the failover.
        """
        self._embedded_dead = True
        obs.event("primary.retired", reason="killed", head=self._head)

    def _ship_frame(
        self,
        frame: bytes,
        ctx: Any,
        *,
        seq: int = -1,
        exclude: int | None = None,
    ) -> None:
        """Ship one APPLY frame to every replica, chaos seams included.

        The ``cluster.ship`` site models the channel's failure modes
        per replica: DROP discards the frame (the replica later sees a
        gap, crashes, and is rebuilt), DUP sends it twice (idempotent
        apply absorbs it), DELAY holds it back so the next frame
        overtakes it (reordering → gap → rebuild), ERROR breaks the
        pipe (immediate revive).
        """
        for index, handle in enumerate(self.replicas):
            if index == exclude:
                continue
            fault = chaos.fire("cluster.ship", replica=index, seq=seq)
            kind = fault.kind if fault is not None else None
            try:
                if kind is FaultKind.ERROR:
                    raise _ReplicaDied(
                        fault.message or "injected pipe failure at cluster.ship"
                    )
                if kind is FaultKind.DROP:
                    continue
                delayed = self._delayed.pop(index, None)
                if kind is FaultKind.DELAY:
                    self._delayed[index] = (messages.APPLY, frame, ctx)
                    if delayed is not None:
                        handle.send(delayed)
                    continue
                handle.send((messages.APPLY, frame, ctx))
                if delayed is not None:
                    # The held-back frame lands *after* its successor:
                    # reordering on a nominally-FIFO channel.
                    handle.send(delayed)
                if kind is FaultKind.DUP:
                    handle.send((messages.APPLY, frame, ctx))
            except _ReplicaDied:
                # The respawn bootstraps at head, delta included.
                self._revive(index)

    def _forward_ingest(self, request: IngestBatch) -> ApiResponse:
        """Apply a write on the promoted primary replica.

        Runs the failover first when no replica holds the role yet. On
        success the produced WAL frame is re-created coordinator-side
        (same seq, same updates, current epoch) and shipped to the other
        replicas. If the promoted primary dies mid-write, it is demoted
        and rebuilt, a fresh failover picks a new primary, and the write
        is retried exactly once.
        """
        for attempt in range(2):
            if self._primary_index is None:
                self._failover()
            index = self._primary_index
            handle = self.replicas[index]
            ticket = self._next_ticket()
            ctx = obs.current()
            if ctx is not None:
                obs.attach(request, ctx)
            try:
                handle.send((messages.INGEST, ticket, request, ctx))
                response = self._await(
                    index, ticket, getattr(request, "deadline", None)
                )[0]
            except _DeadlineExpired:
                raise self._abandon(
                    index, getattr(request, "deadline", None)
                ) from None
            except _ReplicaDied:
                if attempt == 0:
                    self._revive(index)  # also clears _primary_index
                    continue
                raise ClusterError(
                    "promoted primary died twice applying one write"
                ) from None
            if response.error is None:
                self._head = max(self._head, response.snapshot_version)
                frame = pack_record(
                    response.snapshot_version, request.updates, epoch=self.epoch
                )
                with obs.span(
                    "cluster.ship_wal",
                    seq=response.snapshot_version,
                    replicas=len(self.replicas) - 1,
                ):
                    self._ship_frame(
                        frame, ctx, seq=response.snapshot_version, exclude=index
                    )
                self.counters["deltas_shipped"] += 1
            return response
        raise ClusterError("unreachable: forwarded write loop exhausted")

    def _failover(self) -> None:
        """Promote the most-caught-up live replica to primary.

        Bumps the epoch *per attempt* so a partially-promoted replica
        that died mid-handshake is fenced just like the old primary.
        Replayed WAL-tail frames returned by the promoted node are
        shipped to the other replicas, so a delta that died with the old
        primary's pipes still reaches the whole fleet.
        """
        self._drain_acks()
        store = self.service.store
        candidates = sorted(
            (
                index
                for index, handle in enumerate(self.replicas)
                if handle.alive() and index != self._primary_index
            ),
            key=lambda index: self.replicas[index].applied_version,
            reverse=True,
        )
        if not candidates:
            raise ClusterError("failover impossible: no live replica to promote")
        errors: list[str] = []
        for index in candidates:
            self.epoch += 1
            handle = self.replicas[index]
            obs.event(
                "cluster.failover",
                promoted=index,
                epoch=self.epoch,
                applied_version=handle.applied_version,
            )
            try:
                with obs.span("cluster.failover", replica=index, epoch=self.epoch):
                    ticket = self._next_ticket()
                    handle.send(
                        (
                            messages.PROMOTE,
                            ticket,
                            self.epoch,
                            str(store.root) if store is not None else None,
                            store.config if store is not None else None,
                        )
                    )
                    version, replayed = self._await_promoted(index, ticket)
            except (ClusterError, _ReplicaDied) as exc:
                errors.append(f"replica {index}: {exc}")
                continue
            self._primary_index = index
            handle.applied_version = max(handle.applied_version, version)
            self._head = max(self._head, version)
            self.counters["failovers"] += 1
            ctx = obs.current()
            for frame in replayed:
                self._ship_frame(frame, ctx, exclude=index)
            return
        raise ClusterError(
            "failover failed on every candidate: " + "; ".join(errors)
        )

    def _await_promoted(self, index: int, ticket: int) -> tuple[int, list[bytes]]:
        """Wait for the PROMOTED handshake (bounded by response timeout)."""
        handle = self.replicas[index]
        timeout_at = clock.now() + self.cluster.response_timeout_s
        while True:
            try:
                if not handle.conn.poll(0.05):
                    if not handle.alive():
                        raise _ReplicaDied(f"replica {index} died mid-promotion")
                    if clock.now() > timeout_at:
                        raise _ReplicaDied(f"replica {index} promotion timed out")
                    continue
                frame = handle.conn.recv()
            except (EOFError, OSError) as exc:
                raise _ReplicaDied(str(exc)) from exc
            frame = self._absorb(handle, frame)
            if frame is None:
                continue
            if frame[0] == messages.PROMOTED and frame[1] == ticket:
                obs.ingest_spans(frame[4])
                return frame[2], list(frame[3])
            if frame[0] in (messages.SYNCED, messages.RESPONSES, messages.BYE):
                # Stale answers to abandoned tickets may still be in
                # flight; promotion must not trip over them.
                continue
            raise ClusterError(
                f"replica {index} broke protocol: got {frame[0]!r}"
                f" while awaiting promotion ticket {ticket}"
            )

    # -- reads --------------------------------------------------------- #

    def _execute_batch(self, request: BatchQuery) -> BatchResult:
        start = clock.now()
        chunks = self._partition(request.sources)
        fresh = self._is_fresh(request)
        by_position: dict[int, TopKResult] = {}
        source_positions: dict[int, list[int]] = {}
        for position, source in enumerate(request.sources):
            source_positions.setdefault(source, []).append(position)
        cursor = {source: 0 for source in source_positions}
        for _, chunk_sources, chunk_results in self._run_chunks(
            chunks, request, fresh
        ):
            for source, result in zip(chunk_sources, chunk_results):
                assert isinstance(result, TopKResult)
                positions = source_positions[source]
                by_position[positions[cursor[source]]] = result
                cursor[source] += 1
        results = tuple(by_position[i] for i in range(len(request.sources)))
        return BatchResult(
            results=results,
            snapshot_version=self._head,
            staleness=max((r.staleness for r in results), default=0),
            wall_time_s=clock.now() - start,
        )

    def _run_chunks(
        self,
        chunks: dict[int, list[int]],
        request: BatchQuery,
        fresh: bool,
    ):
        """Execute per-replica BatchQuery chunks concurrently.

        One :meth:`_scatter` round: all chunks ship before any answer is
        awaited, so replicas compute in parallel; a replica that dies
        mid-chunk is revived and its chunk retried once.
        """
        per_replica = {
            index: BatchQuery(
                sources=tuple(sources),
                k=request.k,
                consistency=request.consistency,
                deadline=request.deadline,
            )
            for index, sources in chunks.items()
        }
        results = self._scatter(per_replica, fresh)
        for index, sources in chunks.items():
            response = results[index]
            if response.error is not None:
                raise response.error.to_exception()
            assert isinstance(response, BatchResult)
            yield index, sources, response.results

    def _execute_prefetch(self, request: Prefetch) -> PrefetchResult:
        """Queue each source for admission on the replica that owns it.

        Admission pushes are the most expensive per-source work in the
        system, so the per-replica chunks go out as one scatter round —
        parallel, like every other chunked read path.
        """
        start = clock.now()
        per_replica = {
            index: Prefetch(sources=tuple(sources))
            for index, sources in self._partition(request.sources).items()
        }
        pending = 0
        for response in self._scatter(per_replica, False).values():
            if response.error is not None:
                raise response.error.to_exception()
            assert isinstance(response, PrefetchResult)
            pending += response.pending
        return PrefetchResult(
            requested=len(request.sources),
            pending=pending,
            snapshot_version=self._head,
            wall_time_s=clock.now() - start,
        )

    # -- observability ------------------------------------------------- #

    def _execute_ready(self) -> ReadyResult:
        """Cluster readiness: per-replica state, primary identity, epoch.

        ``ready`` is False while there is no write authority (failover
        pending) or any worker is dead or ejected by its breaker — the
        503 a load balancer drains on. Answered coordinator-side from
        bookkeeping already in hand: a readiness probe must not block on
        the very replicas it is asking about.
        """
        start = clock.now()
        self._drain_acks()
        replicas: list[dict[str, Any]] = []
        degraded = False
        for index, handle in enumerate(self.replicas):
            alive = handle.alive()
            breaker = self.breakers[index]
            if not alive or breaker.state == CircuitBreaker.OPEN:
                degraded = True
            replicas.append(
                {
                    "replica": index,
                    "alive": alive,
                    "role": (
                        "primary" if index == self._primary_index else "replica"
                    ),
                    "applied_version": handle.applied_version,
                    "lag": max(0, self._head - handle.applied_version),
                    "breaker": breaker.state,
                }
            )
        if self._primary_index is not None:
            primary = f"replica-{self._primary_index}"
        elif not self._embedded_dead:
            primary = "embedded"
        else:
            primary = None
        ready = self.has_primary and not degraded
        return ReadyResult(
            ready=ready,
            status="ready" if ready else "degraded",
            primary=primary,
            epoch=self.epoch,
            replicas=tuple(replicas),
            snapshot_version=self._head,
            wall_time_s=clock.now() - start,
        )

    def _execute_health(self) -> HealthResult:
        """Liveness: the coordinator process is up and answering.

        Deliberately does *not* route to the primary — liveness must keep
        returning 200 through a failover window (the process is alive;
        it is readiness that is degraded), so a supervisor does not
        restart a coordinator that is mid-promotion. Engine counters come
        from the coordinator's embedded service; the version reported is
        the acked head, the cluster-wide truth.
        """
        start = clock.now()
        service = self.service
        return HealthResult(
            status="ok",
            graph_version=self._head,
            num_vertices=service.graph.num_vertices,
            num_edges=service.graph.num_edges,
            resident=len(service.cache),
            hubs=len(service.hubs),
            snapshot_version=self._head,
            wall_time_s=clock.now() - start,
        )

    def _execute_stats(self, request: Stats) -> StatsResult:
        response = self._admin_execute(request)
        assert isinstance(response, StatsResult)
        stats: dict[str, Any] = dict(response.stats)
        if self.admission is not None:
            # The cluster gateway is the front door; its gate (not the
            # primary's idle one) is the admission truth.
            stats["admission"] = self.admission.to_dict()
        stats["cluster"] = {
            "replicas": len(self.replicas),
            "placement": self.cluster.placement.value,
            "applied_versions": self.replica_versions(),
            "dispatched": [h.dispatched for h in self.replicas],
            "respawns": self.counters["respawns"],
            "deltas_shipped": self.counters["deltas_shipped"],
            "epoch": self.epoch,
            "primary": (
                f"replica-{self._primary_index}"
                if self._primary_index is not None
                else ("embedded" if not self._embedded_dead else None)
            ),
            "failovers": self.counters["failovers"],
            "breakers": [breaker.to_dict() for breaker in self.breakers],
            "chaos": chaos.injected(),
            "gateway": dict(self.counters),
        }
        return StatsResult(
            stats=stats,
            snapshot_version=response.snapshot_version,
            wall_time_s=response.wall_time_s,
        )

    def replica_versions(self) -> list[int]:
        """Last-acknowledged applied version per replica (may lag head)."""
        self._drain_acks()
        return [handle.applied_version for handle in self.replicas]

    # ------------------------------------------------------------------ #
    # scheduling: mixed read/write traffic
    # ------------------------------------------------------------------ #

    def submit_many(
        self, requests: Sequence[ApiRequest], *, coalesce: bool | None = None
    ) -> list[ApiResponse]:
        """Run a request sequence in order, fanning read runs out in parallel.

        The schedule is the *same* plan the single-process gateway makes
        (:func:`repro.api.scheduling.plan_schedule`): writes execute at
        their arrival position as barriers, and each coalesced run of
        same-shaped top-k reads is deduplicated — then split across
        replicas by placement and executed concurrently, one chunk per
        worker process. Under ``HASHED`` placement the answers are
        bit-identical to the single-process scheduler's for the same
        trace (each source's refresh/admission history lives on exactly
        one replica).
        """
        if coalesce is None:
            coalesce = self.config.coalesce_reads
        with self._lock:
            responses: list[ApiResponse | None] = [None] * len(requests)
            steps = plan_schedule(
                requests, coalesce=coalesce, max_batch=self.config.max_batch
            )
            for step in steps:
                if isinstance(step, ReadRun):
                    self._execute_run(requests, step, responses)
                else:
                    responses[step.position] = self.submit(requests[step.position])
            return [r for r in responses if r is not None]

    def _execute_run(
        self,
        requests: Sequence[ApiRequest],
        run: ReadRun,
        responses: list[ApiResponse | None],
    ) -> None:
        """Answer one coalesced read run via parallel per-replica batches.

        Mirrors the single-process scheduler's tracing: the run executes
        under the first traced member's context in a ``schedule.run``
        span, so per-replica chunk spans (and the replica-side execution
        they ship back) link into that member's trace.
        """
        lead = next(
            (
                ctx
                for ctx in (obs.trace_of(requests[p]) for p in run.positions)
                if ctx is not None
            ),
            None,
        )
        if lead is None:
            self._execute_run_inner(requests, run, responses)
            return
        with obs.activate(lead):
            with obs.span(
                "schedule.run",
                members=len(run.positions),
                coalesced=run.coalesced,
                tier="cluster",
            ):
                self._execute_run_inner(requests, run, responses)

    def _execute_run_inner(
        self,
        requests: Sequence[ApiRequest],
        run: ReadRun,
        responses: list[ApiResponse | None],
    ) -> None:
        first = requests[run.positions[0]]
        assert isinstance(first, TopKQuery)
        self.counters["reads_coalesced"] += run.coalesced
        chunks = self._partition(run.sources)
        fresh = first.consistency.level is ConsistencyLevel.FRESH
        by_source: dict[int, TopKResult] = {}
        probe = BatchQuery(
            sources=run.sources,
            k=first.k,
            consistency=first.consistency,
            deadline=run.deadline,
        )
        try:
            for index, sources, results in self._run_chunks(chunks, probe, fresh):
                del index
                for source, result in zip(sources, results):
                    assert isinstance(result, TopKResult)
                    by_source[source] = result
        except ReproError as exc:
            # Match the single-process scheduler: one failing batch fails
            # the whole run with that error.
            self.counters["errors"] += 1
            error = ErrorInfo.from_exception(exc)
            by_source = {
                source: TopKResult.failure(
                    error,
                    snapshot_version=self._head,
                    source=source,
                )
                for source in run.sources
            }
        scatter_run_results(requests, run, by_source, responses)

    def __repr__(self) -> str:
        return (
            f"ClusterGateway(replicas={len(self.replicas)},"
            f" placement={self.cluster.placement.value},"
            f" primary={self.service!r})"
        )


class PPRCluster:
    """User-facing handle on a replicated serving tier.

    Wraps the primary engine and its :class:`ClusterGateway`; use as a
    context manager so workers are always drained:

    >>> from repro import DynamicDiGraph, PPRService
    >>> from repro.cluster import PPRCluster
    >>> from repro.config import ClusterConfig
    >>> service = PPRService(DynamicDiGraph([(1, 0), (2, 0), (0, 1)]))
    >>> with PPRCluster(service, ClusterConfig(replicas=1)) as cluster:
    ...     answer = cluster.api.top_k(0, k=2)
    >>> answer.vertices[0]
    0
    """

    def __init__(
        self,
        service: "PPRService",
        cluster: ClusterConfig | None = None,
        config: ApiConfig | None = None,
    ) -> None:
        self.service = service
        self.gateway = ClusterGateway(service, cluster, config)

    @property
    def api(self) -> "Client":
        """An embedded typed client bound to the cluster gateway."""
        from ..api.client import Client

        return Client(self.gateway)

    def close(self) -> None:
        self.gateway.close()

    def __enter__(self) -> "PPRCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"PPRCluster(gateway={self.gateway!r})"
