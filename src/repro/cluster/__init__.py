"""Multi-process replicated serving tier behind the typed gateway.

The first layer of this system that uses more than one core for queries
end to end: N worker processes, each hosting a full
:class:`~repro.serve.service.PPRService` replica (own push engine, own
delta-CSR snapshot chain), coordinated by a
:class:`~repro.cluster.gateway.ClusterGateway` that speaks the exact
typed protocol of :class:`repro.api.Gateway` — so
:class:`~repro.api.client.Client`, :class:`~repro.api.http.HttpClient`,
and ``repro serve`` work unchanged (``repro serve <dataset> --replicas
N``).

Writes apply on the primary (which owns durability) and ship to
replicas as ordered WAL-framed deltas; reads load-balance across
replicas with per-request consistency honored via snapshot versions;
dead replicas respawn and recover from the primary's durable store.
Run ``python -m repro cluster-bench <dataset>`` for the scaling race,
and see ``docs/cluster.md`` for topology, routing, and the failure
model.
"""

from .gateway import ClusterGateway, PPRCluster, ReplicaHandle
from .replica import ReplicaSpec, build_replica_service, replica_main

__all__ = [
    "ClusterGateway",
    "PPRCluster",
    "ReplicaHandle",
    "ReplicaSpec",
    "build_replica_service",
    "replica_main",
]
