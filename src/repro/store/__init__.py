"""Durable state for the serving layer: WAL, checkpoints, crash recovery.

The maintenance machinery of this library exists to keep PPR state fresh
so it never has to be recomputed — this package makes that state survive
a process death, with the classic stream-system discipline:

* :mod:`~repro.store.wal` — a CRC-framed append-only log of every
  ingested update batch (torn tails detected and truncated);
* :mod:`~repro.store.checkpoint` — versioned ``.npz`` checkpoints of the
  graph, every resident source state, the hub index, and serve metadata;
* :class:`~repro.store.store.StateStore` — the coordinator: log before
  apply, checkpoint every N batches, compact what the checkpoint covers;
* :mod:`~repro.store.recovery` — ``recover_service()``: newest valid
  checkpoint + WAL-tail replay through the normal ingest path, yielding
  a service whose answers are bit-for-bit those of an uninterrupted run.

Enable it with ``ServeConfig(store=StoreConfig(root="..."))`` or attach a
:class:`StateStore` explicitly; see ``docs/persistence.md``.
"""

from .checkpoint import (
    Checkpoint,
    latest_checkpoint,
    read_checkpoint,
    restore_service,
    write_checkpoint,
)
from .recovery import RecoveryResult, recover, recover_service
from .store import StateStore, StoreStatus
from .wal import (
    WalRecord,
    WriteAheadLog,
    pack_payload,
    pack_record,
    scan_segment,
    truncate_torn_tail,
    unpack_payload,
    unpack_record,
)

__all__ = [
    "Checkpoint",
    "RecoveryResult",
    "StateStore",
    "StoreStatus",
    "WalRecord",
    "WriteAheadLog",
    "latest_checkpoint",
    "pack_payload",
    "pack_record",
    "read_checkpoint",
    "recover",
    "recover_service",
    "restore_service",
    "scan_segment",
    "truncate_torn_tail",
    "unpack_payload",
    "unpack_record",
    "write_checkpoint",
]
