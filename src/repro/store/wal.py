"""Write-ahead log of ingested update batches.

The durability contract of the serving layer (``docs/persistence.md``):
every batch the service acknowledges is appended here first — after the
batch fully applies (a rejected batch must not poison the log) but
before the ingest returns or a checkpoint includes it — so any state a
crash destroys can be rebuilt as ``newest checkpoint + replay of the
WAL tail``.

Format — an append-only sequence of framed records per segment file::

    frame   := header payload
    header  := magic(4s = b"RWL2") seq(uint64) epoch(uint64)
               length(uint32) crc(uint32)
    payload := (m, 3) int64 rows of (u, v, op), little-endian

``seq`` is the graph version the batch produces (version after applying);
``epoch`` is the write-authority term the frame was produced under — the
cluster tier bumps it at every primary failover, and replicas reject
frames from a stale epoch so a zombie primary's late writes cannot land
(``docs/faults.md``). ``crc`` is CRC-32 over the packed ``seq`` and
``epoch`` plus the payload, so a frame whose length field survived but
whose body (or seq/epoch) was torn mid-write is rejected. Iteration
stops at the first torn or corrupt frame — everything before it is
intact by construction (frames are written with one buffered write and,
under :attr:`~repro.config.FsyncPolicy.ALWAYS`, one fsync each).

Segments are named ``wal-<first seq>.log``. The store rotates to a fresh
segment at every checkpoint and drops segments whose records are all
covered by it — the WAL tail to replay stays bounded by the checkpoint
interval.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import chaos, obs
from ..config import FsyncPolicy
from ..errors import StoreError
from ..graph.update import EdgeOp, EdgeUpdate

PathLike = str | os.PathLike

FRAME_MAGIC = b"RWL2"
_HEADER = struct.Struct("<4sQQII")  # magic, seq, epoch, payload length, crc32
_SEQ_EPOCH = struct.Struct("<QQ")

#: Upper bound on one frame's payload (64 MiB ≈ 2.8M updates) — a length
#: field beyond it is treated as tail corruption, not an allocation request.
MAX_PAYLOAD = 64 * 1024 * 1024

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


def encode_updates(updates: Sequence[EdgeUpdate]) -> bytes:
    """Encode a batch as little-endian ``(m, 3)`` int64 rows of (u, v, op)."""
    rows = np.empty((len(updates), 3), dtype="<i8")
    for i, upd in enumerate(updates):
        rows[i, 0] = upd.u
        rows[i, 1] = upd.v
        rows[i, 2] = int(upd.op)
    return rows.tobytes()


def decode_updates(payload: bytes) -> list[EdgeUpdate]:
    """Decode :func:`encode_updates` output back into update objects."""
    if len(payload) % 24 != 0:
        raise StoreError(f"payload length {len(payload)} is not a row multiple")
    rows = np.frombuffer(payload, dtype="<i8").reshape(-1, 3)
    updates = []
    for u, v, op in rows.tolist():
        if op not in (1, -1):
            raise StoreError(f"invalid edge op {op} in WAL payload")
        updates.append(EdgeUpdate(u, v, EdgeOp(op)))
    return updates


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL frame."""

    seq: int
    updates: tuple[EdgeUpdate, ...]
    #: Write-authority term the frame was produced under (0 until the
    #: cluster tier's first failover bumps it).
    epoch: int = 0


def pack_payload(seq: int, payload: bytes, *, epoch: int = 0) -> bytes:
    """Wrap an opaque payload in the CRC frame header (magic, seq, epoch).

    The generic half of the record codec: :func:`pack_record` is this
    applied to :func:`encode_updates` output, and the shard tier
    (:mod:`repro.shard`) reuses the same framing for frontier-exchange
    messages so a damaged cross-shard frame is rejected by the same CRC
    check that rejects a torn WAL tail.
    """
    if seq < 0:
        raise StoreError(f"seq must be >= 0, got {seq}")
    if epoch < 0:
        raise StoreError(f"epoch must be >= 0, got {epoch}")
    if len(payload) > MAX_PAYLOAD:
        raise StoreError(
            f"payload of {len(payload)} bytes exceeds frame bound {MAX_PAYLOAD}"
        )
    crc = zlib.crc32(_SEQ_EPOCH.pack(seq, epoch) + payload)
    return _HEADER.pack(FRAME_MAGIC, seq, epoch, len(payload), crc) + payload


def unpack_payload(frame: bytes) -> tuple[int, int, bytes]:
    """Verify one :func:`pack_payload` frame; returns ``(seq, epoch, payload)``.

    Raises :class:`~repro.errors.StoreError` on bad magic, length
    mismatch, or CRC mismatch — a receiver must not act on a frame the
    channel damaged.
    """
    if len(frame) < _HEADER.size:
        raise StoreError(f"short frame: {len(frame)} bytes")
    magic, seq, epoch, length, crc = _HEADER.unpack_from(frame, 0)
    if magic != FRAME_MAGIC:
        raise StoreError(f"bad frame magic: {magic!r}")
    if length > MAX_PAYLOAD or _HEADER.size + length != len(frame):
        raise StoreError(
            f"frame length mismatch: header says {length}, frame has"
            f" {len(frame) - _HEADER.size} payload bytes"
        )
    payload = frame[_HEADER.size :]
    if zlib.crc32(_SEQ_EPOCH.pack(seq, epoch) + payload) != crc:
        raise StoreError(f"frame CRC mismatch at seq {seq}")
    return seq, epoch, payload


def pack_record(seq: int, updates: Sequence[EdgeUpdate], *, epoch: int = 0) -> bytes:
    """One complete CRC-framed record (header + payload) as bytes.

    The frame the WAL appends to its segments — and, reused verbatim,
    the wire format the cluster tier (:mod:`repro.cluster`) ships write
    deltas in: one durability codec, one replication codec. ``epoch`` is
    the writer's authority term; it is covered by the CRC and enforced
    by replicas (a frame from a fenced epoch is rejected, not applied).
    """
    return pack_payload(seq, encode_updates(updates), epoch=epoch)


def unpack_record(frame: bytes) -> WalRecord:
    """Decode and verify one :func:`pack_record` frame.

    Raises :class:`~repro.errors.StoreError` on bad magic, length
    mismatch, CRC mismatch, or a malformed payload — a replica must not
    apply a delta the channel damaged.
    """
    seq, epoch, payload = unpack_payload(frame)
    return WalRecord(seq=seq, updates=tuple(decode_updates(payload)), epoch=epoch)


@dataclass(frozen=True)
class SegmentScan:
    """Result of scanning one segment file."""

    path: Path
    records: tuple[WalRecord, ...]
    #: File offset just past the last intact frame.
    valid_bytes: int
    #: Whether the file ends exactly at the last intact frame.
    clean: bool

    @property
    def torn_bytes(self) -> int:
        return self.path.stat().st_size - self.valid_bytes


def scan_segment(path: PathLike) -> SegmentScan:
    """Read every intact frame of a segment, stopping at a torn tail.

    A short header, short payload, bad magic, oversized length, or CRC
    mismatch all terminate the scan — frames after the first damage are
    unreachable anyway (framing is lost).
    """
    path = Path(path)
    data = path.read_bytes()
    records: list[WalRecord] = []
    offset = 0
    while True:
        header_end = offset + _HEADER.size
        if header_end > len(data):
            break
        magic, seq, epoch, length, crc = _HEADER.unpack_from(data, offset)
        if magic != FRAME_MAGIC or length > MAX_PAYLOAD:
            break
        payload_end = header_end + length
        if payload_end > len(data):
            break
        payload = data[header_end:payload_end]
        if zlib.crc32(_SEQ_EPOCH.pack(seq, epoch) + payload) != crc:
            break
        try:
            updates = decode_updates(payload)
        except StoreError:
            break
        records.append(WalRecord(seq=seq, updates=tuple(updates), epoch=epoch))
        offset = payload_end
    return SegmentScan(
        path=path,
        records=tuple(records),
        valid_bytes=offset,
        clean=offset == len(data),
    )


def truncate_torn_tail(path: PathLike) -> int:
    """Truncate a segment at its last intact frame; return bytes dropped."""
    scan = scan_segment(path)
    dropped = scan.torn_bytes
    if dropped:
        with open(path, "r+b") as fh:
            fh.truncate(scan.valid_bytes)
    return dropped


class WriteAheadLog:
    """Append-only, segmented, CRC-framed log of update batches.

    Parameters
    ----------
    directory:
        Segment directory (created if missing).
    fsync:
        Flush discipline per :class:`~repro.config.FsyncPolicy`.
    """

    def __init__(
        self, directory: PathLike, *, fsync: FsyncPolicy = FsyncPolicy.ALWAYS
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._fh = None  # current segment file handle
        self._current: Path | None = None
        self.records_appended = 0

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def append(self, seq: int, updates: Sequence[EdgeUpdate], *, epoch: int = 0) -> Path:
        """Append one batch frame; returns the segment it landed in.

        The first append after construction or :meth:`rotate` opens a new
        segment named after ``seq``. The frame is written with a single
        buffered write + flush (+ fsync under ``ALWAYS``), so a crash can
        tear at most the frame being written.

        An I/O failure mid-append (most plausibly the fsync — the chaos
        site ``wal.fsync`` injects exactly that) rolls the frame back:
        the segment is truncated to its pre-append length before the
        typed :class:`~repro.errors.StoreError` is raised, so the
        on-disk log holds *acknowledged batches only* and the next
        append cannot leave a half-durable frame between two good ones.
        """
        frame = pack_record(seq, updates, epoch=epoch)
        if self._fh is None:
            self._current = self.directory / (
                f"{SEGMENT_PREFIX}{seq:016d}{SEGMENT_SUFFIX}"
            )
            if self._current.exists():
                # A leftover from a crash mid-write of this segment's first
                # frame (recovery truncates the torn frame, leaving the
                # file). Appending is safe iff every surviving record
                # predates ``seq``; anything else would shadow live history.
                leftover = scan_segment(self._current)
                if not leftover.clean or (
                    leftover.records and leftover.records[-1].seq >= seq
                ):
                    raise StoreError(
                        f"segment already exists with live records: {self._current}"
                    )
            self._fh = open(self._current, "ab")
        fsync = self.fsync is FsyncPolicy.ALWAYS
        offset = self._fh.tell()
        with obs.span("wal.append", seq=seq, bytes=len(frame), fsync=fsync):
            try:
                self._fh.write(frame)
                self._fh.flush()
                chaos.check("wal.fsync", seq=seq)
                if fsync:
                    os.fsync(self._fh.fileno())
            except OSError as exc:
                self._rollback(offset)
                raise StoreError(
                    f"wal append failed at seq {seq} (frame rolled back): {exc}"
                ) from exc
        self.records_appended += 1
        return self._current

    def _rollback(self, offset: int) -> None:
        """Truncate the open segment back to ``offset`` after a failed write."""
        try:
            self._fh.truncate(offset)
            self._fh.seek(offset)
        except OSError:  # pragma: no cover - disk gone entirely
            pass

    def rotate(self) -> None:
        """Close the current segment; the next append starts a fresh one."""
        self._close_segment()

    def close(self) -> None:
        self._close_segment()

    def _close_segment(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            if self.fsync in (FsyncPolicy.ALWAYS, FsyncPolicy.ROTATE):
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            self._current = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # reading / maintenance
    # ------------------------------------------------------------------ #

    def segments(self) -> list[Path]:
        """Segment files in seq order (oldest first)."""
        return sorted(
            p
            for p in self.directory.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")
            if p.is_file()
        )

    def scan(self) -> list[SegmentScan]:
        """Scan every segment (oldest first), tolerating torn tails."""
        return [scan_segment(p) for p in self.segments()]

    def iter_records(self, after_seq: int = -1) -> Iterator[WalRecord]:
        """Intact records with ``seq > after_seq``, in seq order.

        Raises :class:`StoreError` on a seq gap or regression between
        consecutive yielded records — a hole in the replay history is not
        recoverable and must not be silently skipped. An epoch regression
        (a later record stamped with an *older* write-authority term) is
        rejected the same way: it means a fenced writer's frame landed
        after the failover that fenced it, which replay must not honour.
        """
        expected = None
        epoch = None
        for scan in self.scan():
            for record in scan.records:
                if record.seq <= after_seq:
                    continue
                if expected is not None and record.seq != expected:
                    raise StoreError(
                        f"WAL sequence gap: expected {expected}, got {record.seq}"
                        f" in {scan.path.name}"
                    )
                if epoch is not None and record.epoch < epoch:
                    raise StoreError(
                        f"WAL epoch regression: {epoch} -> {record.epoch} at seq"
                        f" {record.seq} in {scan.path.name}"
                    )
                expected = record.seq + 1
                epoch = record.epoch
                yield record

    def truncate_torn_tails(self) -> int:
        """Truncate damage in every segment; returns total bytes dropped."""
        return sum(truncate_torn_tail(p) for p in self.segments())

    def drop_segments_covered_by(self, version: int) -> list[Path]:
        """Delete segments whose every record has ``seq <= version``.

        Called after a checkpoint at ``version``: those batches are now in
        the checkpoint, so their log space can be reclaimed. The open
        segment is never dropped.
        """
        dropped = []
        for scan in self.scan():
            if scan.path == self._current:
                continue
            if scan.records and scan.records[-1].seq > version:
                continue
            scan.path.unlink()
            dropped.append(scan.path)
        return dropped

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(dir={str(self.directory)!r},"
            f" segments={len(self.segments())}, fsync={self.fsync.value})"
        )
