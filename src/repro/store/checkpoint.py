"""Versioned binary checkpoints of a running :class:`~repro.serve.PPRService`.

A checkpoint is one compressed ``.npz`` (the same numpy container
``graph/io.py`` uses for edge arrays) holding everything the serving
layer maintains at a graph version:

* the dynamic graph, serialized *order-exactly*
  (:meth:`~repro.graph.digraph.DynamicDiGraph.to_arrays`) so rebuilt CSR
  snapshots — and therefore float summation order inside the vectorized
  push — are bit-identical;
* every resident :class:`~repro.core.state.PPRState` with its
  bookkeeping (convergence version, staleness counter, pending lazy-push
  seeds, query count) in LRU→MRU order;
* the hub index vectors (:meth:`~repro.core.hub_index.DynamicHubIndex.to_arrays`);
* serve metadata: graph version, ingest counters, and a fingerprint of
  the :class:`~repro.config.PPRConfig`/:class:`~repro.config.ServeConfig`
  pair (recovery refuses to resume under a different configuration —
  ε or α drift would silently break the freshness contract).

Files are named ``checkpoint-<version>.npz`` and written atomically
(tmp file + fsync + rename), so a crash mid-checkpoint leaves the
previous checkpoint untouched and the torn file unreadable-but-ignored.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import chaos
from ..config import (
    Backend,
    HubRefresh,
    PPRConfig,
    PushVariant,
    RefreshPolicy,
    ServeConfig,
    SnapshotStrategy,
)
from ..core.hub_index import DynamicHubIndex
from ..core.state import PPRState
from ..errors import StoreError
from ..graph.digraph import DynamicDiGraph
from ..serve.cache import ResidentSource
from ..serve.service import PPRService

PathLike = str | os.PathLike

#: Bumped when the npz layout changes incompatibly.
#: 2: serve-config fingerprint covers snapshot/hub-refresh knobs;
#:    deferred lazy hub-refresh seeds (``hubs_pending``) serialized.
CHECKPOINT_FORMAT = 2

_NAME_RE = re.compile(r"^checkpoint-(\d{12})\.npz$")


def checkpoint_name(version: int) -> str:
    return f"checkpoint-{version:012d}.npz"


def checkpoint_version(path: PathLike) -> int | None:
    """Graph version encoded in a checkpoint filename (None if not one)."""
    match = _NAME_RE.match(Path(path).name)
    return int(match.group(1)) if match else None


# ---------------------------------------------------------------------- #
# config (de)serialization + fingerprint
# ---------------------------------------------------------------------- #


def _ppr_config_json(config: PPRConfig) -> str:
    return json.dumps(
        {
            "alpha": config.alpha,
            "epsilon": config.epsilon,
            "variant": config.variant.value,
            "backend": config.backend.value,
            "workers": config.workers,
            "max_iterations": config.max_iterations,
        },
        sort_keys=True,
    )


def _serve_config_json(serve: ServeConfig) -> str:
    # The store config itself is deliberately not nested: a store can be
    # moved/retuned without invalidating its own checkpoints.
    return json.dumps(
        {
            "cache_capacity": serve.cache_capacity,
            "admission_batch": serve.admission_batch,
            "refresh": serve.refresh.value,
            "num_hubs": serve.num_hubs,
            "hub_refresh": serve.hub_refresh.value,
            "top_k": serve.top_k,
            "snapshot": serve.snapshot.value,
            "snapshot_overlay_threshold": serve.snapshot_overlay_threshold,
        },
        sort_keys=True,
    )


def _parse_ppr_config(payload: str) -> PPRConfig:
    data = json.loads(payload)
    data["variant"] = PushVariant(data["variant"])
    data["backend"] = Backend(data["backend"])
    return PPRConfig(**data)


def _parse_serve_config(payload: str) -> ServeConfig:
    data = json.loads(payload)
    data["refresh"] = RefreshPolicy(data["refresh"])
    data["hub_refresh"] = HubRefresh(data["hub_refresh"])
    data["snapshot"] = SnapshotStrategy(data["snapshot"])
    return ServeConfig(**data)


def config_fingerprint(config: PPRConfig, serve: ServeConfig) -> str:
    """Stable digest of the configuration a checkpoint was taken under."""
    blob = (_ppr_config_json(config) + _serve_config_json(serve)).encode()
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------- #
# writing
# ---------------------------------------------------------------------- #


def write_checkpoint(directory: PathLike, service: PPRService) -> Path:
    """Write a checkpoint of ``service`` at its current graph version.

    Returns the final path. The write is atomic: a temporary file is
    fully written and fsynced before being renamed into place.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    metrics = service.metrics()
    arrays: dict[str, np.ndarray] = {
        "format": np.int64(CHECKPOINT_FORMAT),
        "graph_version": np.int64(service.graph_version),
        "updates_ingested": np.int64(metrics.updates_ingested),
        "batches_ingested": np.int64(metrics.batches_ingested),
        "ppr_config": np.str_(_ppr_config_json(service.config)),
        "serve_config": np.str_(_serve_config_json(service.serve)),
        "fingerprint": np.str_(
            config_fingerprint(service.config, service.serve)
        ),
    }
    for key, value in service.graph.to_arrays().items():
        arrays[f"graph_{key}"] = value

    residents = service.cache.entries()  # LRU -> MRU
    arrays["sources"] = np.array([e.source for e in residents], dtype=np.int64)
    arrays["resident_meta"] = np.array(
        [(e.version, e.updates_reflected, e.queries) for e in residents],
        dtype=np.int64,
    ).reshape(-1, 3)
    arrays["resident_lengths"] = np.array(
        [len(e.state.p) for e in residents], dtype=np.int64
    )
    arrays["resident_p"] = (
        np.concatenate([e.state.p for e in residents]) if residents else np.empty(0)
    )
    arrays["resident_r"] = (
        np.concatenate([e.state.r for e in residents]) if residents else np.empty(0)
    )
    pending = [np.array(sorted(e.pending_seeds), dtype=np.int64) for e in residents]
    arrays["pending_lengths"] = np.array([len(p) for p in pending], dtype=np.int64)
    arrays["pending"] = (
        np.concatenate(pending) if pending else np.empty(0, dtype=np.int64)
    )

    arrays["has_hubs"] = np.int64(service.hub_index is not None)
    if service.hub_index is not None:
        for key, value in service.hub_index.to_arrays().items():
            arrays[f"hub_{key}"] = value
    # Deferred lazy hub-refresh seeds (empty under eager refresh): the
    # hub vectors are checkpointed mid-deferral, so recovery must know
    # which seeds the next flush has to push from.
    arrays["hubs_pending"] = np.array(
        sorted(service.hub_pending_seeds), dtype=np.int64
    )

    final = directory / checkpoint_name(service.graph_version)
    tmp = directory / (final.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    # The crash-during-checkpoint window: the tmp file is durable but the
    # atomic rename has not happened. A CRASH fault here leaves the .tmp
    # behind and the previous checkpoint authoritative — exactly what
    # recovery must tolerate (tests/test_store.py exercises this site).
    chaos.check("checkpoint.rename", version=service.graph_version)
    os.replace(tmp, final)
    return final


# ---------------------------------------------------------------------- #
# reading
# ---------------------------------------------------------------------- #


@dataclass
class Checkpoint:
    """One decoded checkpoint, ready to restore a service from."""

    path: Path
    version: int
    updates_ingested: int
    batches_ingested: int
    config: PPRConfig
    serve: ServeConfig
    fingerprint: str
    graph: DynamicDiGraph
    residents: list[ResidentSource]
    hub_arrays: dict[str, np.ndarray] | None
    hub_pending: list[int]

    @property
    def num_residents(self) -> int:
        return len(self.residents)

    @property
    def num_hubs(self) -> int:
        return len(self.hub_arrays["hubs"]) if self.hub_arrays else 0


def read_checkpoint(path: PathLike) -> Checkpoint:
    """Load and validate one checkpoint file.

    Raises :class:`StoreError` on any structural problem — unreadable
    container, unknown format, missing keys, or a fingerprint that does
    not match the embedded configuration (bit rot in the config strings).
    """
    path = Path(path)
    if not path.exists():
        raise StoreError(f"checkpoint not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
    except Exception as exc:  # zip/CRC/format damage
        raise StoreError(f"unreadable checkpoint {path.name}: {exc}") from exc
    try:
        fmt = int(arrays["format"])
        if fmt != CHECKPOINT_FORMAT:
            raise StoreError(
                f"{path.name}: unsupported checkpoint format {fmt}"
                f" (this build reads {CHECKPOINT_FORMAT})"
            )
        config = _parse_ppr_config(str(arrays["ppr_config"]))
        serve = _parse_serve_config(str(arrays["serve_config"]))
        fingerprint = str(arrays["fingerprint"])
        if fingerprint != config_fingerprint(config, serve):
            raise StoreError(f"{path.name}: configuration fingerprint mismatch")
        graph = DynamicDiGraph.from_arrays(
            {
                "vertices": arrays["graph_vertices"],
                "out_edges": arrays["graph_out_edges"],
                "in_edges": arrays["graph_in_edges"],
            }
        )
        residents: list[ResidentSource] = []
        state_offset = 0
        pending_offset = 0
        for i, source in enumerate(arrays["sources"].tolist()):
            length = int(arrays["resident_lengths"][i])
            state = PPRState.from_arrays(
                {
                    "source": np.int64(source),
                    "p": arrays["resident_p"][state_offset : state_offset + length],
                    "r": arrays["resident_r"][state_offset : state_offset + length],
                }
            )
            state_offset += length
            n_pending = int(arrays["pending_lengths"][i])
            seeds = set(
                arrays["pending"][pending_offset : pending_offset + n_pending].tolist()
            )
            pending_offset += n_pending
            version, reflected, queries = arrays["resident_meta"][i].tolist()
            residents.append(
                ResidentSource(
                    state=state,
                    version=version,
                    updates_reflected=reflected,
                    pending_seeds=seeds,
                    queries=queries,
                )
            )
        hub_arrays = None
        if int(arrays["has_hubs"]):
            hub_arrays = {
                key[len("hub_") :]: value
                for key, value in arrays.items()
                if key.startswith("hub_")
            }
        hub_pending = arrays["hubs_pending"].tolist()
        return Checkpoint(
            path=path,
            version=int(arrays["graph_version"]),
            updates_ingested=int(arrays["updates_ingested"]),
            batches_ingested=int(arrays["batches_ingested"]),
            config=config,
            serve=serve,
            fingerprint=fingerprint,
            graph=graph,
            residents=residents,
            hub_arrays=hub_arrays,
            hub_pending=hub_pending,
        )
    except StoreError:
        raise
    except Exception as exc:  # missing keys, shape mismatches, bad enums
        raise StoreError(f"corrupt checkpoint {path.name}: {exc}") from exc


def list_checkpoints(directory: PathLike) -> list[Path]:
    """Checkpoint files in ``directory``, oldest version first."""
    directory = Path(directory)
    if not directory.exists():
        return []
    found = [p for p in directory.iterdir() if checkpoint_version(p) is not None]
    return sorted(found, key=checkpoint_version)


def latest_checkpoint(directory: PathLike) -> Checkpoint | None:
    """The newest checkpoint that loads and validates, or ``None``.

    Damaged newer checkpoints are skipped (with their error preserved on
    the raised :class:`StoreError` if *every* candidate is damaged) —
    recovery falls back to an older consistent state rather than failing.
    """
    candidates = list_checkpoints(directory)
    errors: list[str] = []
    for path in reversed(candidates):
        try:
            return read_checkpoint(path)
        except StoreError as exc:
            errors.append(str(exc))
    if errors:
        raise StoreError(
            "no readable checkpoint; all candidates damaged: " + "; ".join(errors)
        )
    return None


def restore_service(checkpoint: Checkpoint) -> PPRService:
    """Materialize a :class:`PPRService` from one decoded checkpoint.

    The service comes back *exactly* as checkpointed: same graph dict
    order, resident states bit-for-bit, LRU order, hub vectors, version
    and staleness counters. No pushes run. The returned service has no
    store attached — :func:`repro.store.recovery.recover` reattaches one
    after replaying the WAL tail.
    """
    hub_index = None
    if checkpoint.hub_arrays is not None:
        hub_index = DynamicHubIndex.from_arrays(
            checkpoint.graph, checkpoint.hub_arrays, checkpoint.config
        )
    return PPRService.restore(
        graph=checkpoint.graph,
        config=checkpoint.config,
        serve=checkpoint.serve,
        residents=checkpoint.residents,
        hub_index=hub_index,
        graph_version=checkpoint.version,
        updates_ingested=checkpoint.updates_ingested,
        batches_ingested=checkpoint.batches_ingested,
        hub_pending=checkpoint.hub_pending,
    )
