"""The :class:`StateStore`: WAL + checkpoints + retention, coordinated.

One store owns one directory::

    <root>/
        wal/            wal-<first seq>.log segments (repro.store.wal)
        checkpoints/    checkpoint-<version>.npz    (repro.store.checkpoint)

and implements the durability loop of the serving layer:

* :meth:`log_batch` — called by :meth:`repro.serve.PPRService.ingest`
  once the batch has fully applied, before it is acknowledged or
  checkpointed; appends a CRC-framed WAL record.
* :meth:`maybe_checkpoint` — called after the ingest completes; every
  ``checkpoint_interval`` batches it writes a checkpoint, rotates the
  WAL to a fresh segment, drops segments fully covered by the new
  checkpoint, and prunes checkpoints beyond ``retain_checkpoints``.

Recovery (:func:`repro.store.recovery.recover`) is the inverse: newest
valid checkpoint + replay of the remaining WAL tail.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..config import StoreConfig
from ..graph.update import EdgeUpdate
from ..errors import StoreError
from .checkpoint import (
    checkpoint_version,
    list_checkpoints,
    write_checkpoint,
)
from .wal import SegmentScan, WriteAheadLog

if TYPE_CHECKING:
    from ..serve.service import PPRService

PathLike = str | os.PathLike


@dataclass(frozen=True)
class CheckpointInfo:
    """One checkpoint file as listed by :meth:`StateStore.status`."""

    path: Path
    version: int
    size_bytes: int


@dataclass(frozen=True)
class StoreStatus:
    """A point-in-time inventory of a store directory."""

    root: Path
    checkpoints: tuple[CheckpointInfo, ...]
    segments: tuple[SegmentScan, ...]

    @property
    def latest_version(self) -> int | None:
        """Newest checkpointed graph version (None for an empty store)."""
        return self.checkpoints[-1].version if self.checkpoints else None

    @property
    def wal_records(self) -> int:
        return sum(len(s.records) for s in self.segments)

    @property
    def torn_bytes(self) -> int:
        """Bytes of torn/corrupt WAL tail across segments (0 when clean)."""
        return sum(s.torn_bytes for s in self.segments)

    @property
    def replay_batches(self) -> int:
        """WAL records a recovery would replay on top of the newest checkpoint."""
        base = self.latest_version if self.latest_version is not None else -1
        return sum(
            1 for s in self.segments for r in s.records if r.seq > base
        )


class StateStore:
    """Durable state for one :class:`~repro.serve.PPRService`.

    Parameters
    ----------
    root:
        Store directory (created, with its subdirectories, if missing).
    config:
        Retention/cadence knobs; ``root`` inside it is ignored in favor of
        the explicit argument. Defaults to ``StoreConfig()``.
    """

    def __init__(self, root: PathLike, config: StoreConfig | None = None) -> None:
        self.config = config or StoreConfig()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal_dir = self.root / "wal"
        self.checkpoint_dir = self.root / "checkpoints"
        self.checkpoint_dir.mkdir(exist_ok=True)
        self.wal = WriteAheadLog(self.wal_dir, fsync=self.config.fsync)
        self._batches_since_checkpoint = 0
        self.checkpoints_written = 0
        #: Write-authority term stamped into every WAL frame; the cluster
        #: tier bumps it on the store's new owner at each failover.
        self.epoch = 0
        #: Set after an append failed mid-batch: the frame was rolled back
        #: but the acknowledged-state / durable-state invariant can no
        #: longer be trusted for *future* writes on this handle, so the
        #: store fences itself until a new owner re-attaches it.
        self.failed = False

    @classmethod
    def from_config(cls, config: StoreConfig) -> "StateStore":
        """A store rooted at ``config.root``."""
        return cls(config.root, config)

    # ------------------------------------------------------------------ #
    # the durability loop
    # ------------------------------------------------------------------ #

    def log_batch(self, seq: int, updates: list[EdgeUpdate]) -> None:
        """Append one ingest batch (producing graph version ``seq``).

        Raises :class:`~repro.errors.StoreError` if a previous append on
        this handle failed (the store is fenced — see :attr:`failed`) or
        if this append's write/fsync fails, in which case the frame is
        rolled back and the store fences itself.
        """
        if self.failed:
            raise StoreError(
                f"store at {self.root} is fenced after a failed append;"
                " recover it under a new owner before writing"
            )
        try:
            self.wal.append(seq, updates, epoch=self.epoch)
        except StoreError:
            self.failed = True
            raise
        self._batches_since_checkpoint += 1

    def maybe_checkpoint(self, service: "PPRService") -> Path | None:
        """Checkpoint when the interval has elapsed; else no-op."""
        if self._batches_since_checkpoint < self.config.checkpoint_interval:
            return None
        return self.checkpoint(service)

    def checkpoint(self, service: "PPRService") -> Path:
        """Write a checkpoint now, then compact the log and old checkpoints.

        Order matters for crash safety: the checkpoint is durably in
        place (atomic rename) *before* any WAL segment or older
        checkpoint is deleted, so every instant in time has a consistent
        recovery path.
        """
        path = write_checkpoint(self.checkpoint_dir, service)
        self.wal.rotate()
        self.wal.drop_segments_covered_by(service.graph_version)
        self._prune_checkpoints()
        self._batches_since_checkpoint = 0
        self.checkpoints_written += 1
        return path

    def _prune_checkpoints(self) -> None:
        existing = list_checkpoints(self.checkpoint_dir)
        for stale in existing[: -self.config.retain_checkpoints]:
            stale.unlink()

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def status(self) -> StoreStatus:
        """Inventory the directory (reads every WAL segment)."""
        checkpoints = tuple(
            CheckpointInfo(
                path=p,
                version=checkpoint_version(p),
                size_bytes=p.stat().st_size,
            )
            for p in list_checkpoints(self.checkpoint_dir)
        )
        return StoreStatus(
            root=self.root,
            checkpoints=checkpoints,
            segments=tuple(self.wal.scan()),
        )

    def __repr__(self) -> str:
        return (
            f"StateStore(root={str(self.root)!r},"
            f" interval={self.config.checkpoint_interval},"
            f" checkpoints_written={self.checkpoints_written})"
        )
