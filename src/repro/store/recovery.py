"""Crash recovery: newest checkpoint + WAL-tail replay → a live service.

The equivalence contract (tested in ``tests/test_store.py`` and smoked in
CI): a service recovered from a store answers :func:`certified_top_k`
queries *bit-for-bit* identically to an uninterrupted service at the same
graph version, for every source resident at the last checkpoint. Three
properties make that possible:

1. checkpoints are bit-exact — float vectors verbatim, the graph
   serialized order-exactly so rebuilt CSR snapshots are identical;
2. the WAL tail is replayed through the *normal* ingest path
   (:meth:`repro.serve.PPRService.ingest`): the same
   ``restore_invariant`` arithmetic, hub re-convergence, and pending-seed
   accounting the uninterrupted run performed;
3. the push engines canonicalize their inputs (sorted frontiers, sorted
   unique seeds), so replayed pushes see identical operand orders.
"""

from __future__ import annotations

import os
from ..obs import clock
from dataclasses import dataclass
from pathlib import Path

from ..config import PPRConfig, ServeConfig, StoreConfig
from ..errors import StoreError
from ..serve.service import PPRService
from .checkpoint import config_fingerprint, latest_checkpoint, restore_service
from .store import StateStore
from .wal import WriteAheadLog

PathLike = str | os.PathLike


@dataclass
class RecoveryResult:
    """A recovered service plus the forensics of how it got there."""

    service: PPRService
    checkpoint_path: Path
    checkpoint_version: int
    #: WAL batches replayed on top of the checkpoint.
    replayed_batches: int
    replayed_updates: int
    #: Torn/corrupt WAL bytes truncated before replay.
    torn_bytes_dropped: int
    wall_seconds: float

    def describe(self) -> str:
        return (
            f"recovered v{self.checkpoint_version} -> v{self.service.graph_version}"
            f" ({self.replayed_batches} batches / {self.replayed_updates} updates"
            f" replayed, {self.torn_bytes_dropped} torn bytes dropped,"
            f" {self.wall_seconds * 1e3:.1f} ms)"
        )


def recover(
    root: PathLike,
    *,
    config: PPRConfig | None = None,
    serve: ServeConfig | None = None,
    store_config: StoreConfig | None = None,
    attach: bool = True,
) -> RecoveryResult:
    """Rebuild the service persisted under ``root``.

    Steps: load the newest valid checkpoint (older ones are fallbacks if
    the newest is damaged), truncate any torn WAL tail, replay every WAL
    record past the checkpoint version through the normal ingest path,
    and (by default) reattach a store so the service keeps persisting —
    without writing a redundant baseline checkpoint.

    ``config``/``serve``, when given, are checked against the
    checkpoint's configuration fingerprint — resuming under a different
    ε/α/variant would silently break the freshness contract, so a
    mismatch raises :class:`StoreError`. When omitted, the persisted
    configuration is used.
    """
    root = Path(root)
    if not root.exists():
        raise StoreError(f"store directory not found: {root}")
    checkpoint = latest_checkpoint(root / "checkpoints")
    if checkpoint is None:
        raise StoreError(
            f"no checkpoint under {root} — the store never saw an attach"
            " (the WAL alone cannot rebuild the initial graph)"
        )
    if config is not None or serve is not None:
        expected = config_fingerprint(
            config or checkpoint.config, serve or checkpoint.serve
        )
        if expected != checkpoint.fingerprint:
            raise StoreError(
                "configuration mismatch: the store was written under"
                f" fingerprint {checkpoint.fingerprint[:12]}…, caller asked for"
                f" {expected[:12]}… — recover with the original configuration"
            )

    start = clock.now()
    service = restore_service(checkpoint)
    wal = WriteAheadLog(root / "wal")
    torn = wal.truncate_torn_tails()
    replayed_batches = 0
    replayed_updates = 0
    for record in wal.iter_records(after_seq=checkpoint.version):
        if record.seq != service.graph_version + 1:
            raise StoreError(
                f"WAL replay gap: checkpoint v{checkpoint.version}, next record"
                f" seq {record.seq}, service at v{service.graph_version}"
            )
        service.ingest(list(record.updates))
        replayed_batches += 1
        replayed_updates += len(record.updates)
    wal.close()

    if attach:
        store = StateStore(root, store_config or StoreConfig(root=str(root)))
        # The replayed tail is already on disk; count it toward the next
        # checkpoint so the interval is measured from the last checkpoint,
        # not from the recovery.
        store._batches_since_checkpoint = replayed_batches
        service.attach_store(store, checkpoint=False)
    wall = clock.now() - start
    return RecoveryResult(
        service=service,
        checkpoint_path=checkpoint.path,
        checkpoint_version=checkpoint.version,
        replayed_batches=replayed_batches,
        replayed_updates=replayed_updates,
        torn_bytes_dropped=torn,
        wall_seconds=wall,
    )


def recover_service(
    root: PathLike,
    *,
    config: PPRConfig | None = None,
    serve: ServeConfig | None = None,
    store_config: StoreConfig | None = None,
    attach: bool = True,
) -> PPRService:
    """:func:`recover`, returning just the live service."""
    return recover(
        root, config=config, serve=serve, store_config=store_config, attach=attach
    ).service
