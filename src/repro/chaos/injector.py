"""The process-wide fault injector behind every chaos site.

One :class:`ChaosInjector` per process (module-level ``INJECTOR``, like
:data:`repro.obs.TRACER`). With no plan installed a site probe is two
attribute checks — the production hot path stays unharmed. With a plan
installed, each site call walks the plan's faults, advances the private
visit counter of every fault that *matches* (same site, replica filter
satisfied), and fires the first fault whose window covers the visit.

Every injected fault is emitted as an :func:`repro.obs.event` span event
(``chaos.inject``) and recorded on :attr:`ChaosInjector.injected`, so a
trace shows the fault and the recovery in one tree and tests/smokes can
assert exactly which faults actually fired.

Call-site contract:

* :func:`check` — fire-and-act: ``ERROR`` raises ``OSError``, ``CRASH``
  calls ``os._exit`` (worker processes only), ``WEDGE`` blocks forever.
  For sites where those defaults are the right semantics.
* :func:`fire` — fire-and-return: the call site interprets the
  :class:`~repro.chaos.plan.Fault` itself (drop/duplicate/delay a frame,
  retire the embedded primary, ...). Returns ``None`` when nothing fires.
"""

from __future__ import annotations

import os
import time
from typing import Any

from .. import obs
from .plan import Fault, FaultKind, FaultPlan

__all__ = [
    "ChaosInjector",
    "INJECTOR",
    "check",
    "fire",
    "injected",
    "install",
    "reset",
]


class _FaultState:
    """Per-installation firing state of one scripted fault."""

    __slots__ = ("fault", "seen", "fired")

    def __init__(self, fault: Fault) -> None:
        self.fault = fault
        self.seen = 0
        self.fired = 0

    def matches(self, replica: int | None) -> bool:
        return self.fault.replica is None or self.fault.replica == replica

    def visit(self) -> bool:
        """Count one visit; True when this visit is inside the fire window."""
        self.seen += 1
        if self.fault.at <= self.seen < self.fault.at + self.fault.count:
            self.fired += 1
            return True
        return False


class ChaosInjector:
    """Deterministic fault injection for one process."""

    def __init__(self) -> None:
        self._states: list[_FaultState] = []
        self.plan: FaultPlan | None = None
        #: Replica id this process runs as (None in the coordinator).
        self.self_replica: int | None = None
        #: Every fault that actually fired: (site, Fault, context attrs).
        self.injected: list[tuple[str, Fault, dict[str, Any]]] = []

    @property
    def active(self) -> bool:
        return self.plan is not None

    def install(self, plan: FaultPlan | None, *, replica: int | None = None) -> None:
        """Adopt ``plan`` (resetting all counters); ``None`` uninstalls."""
        self.plan = plan
        self.self_replica = replica
        self._states = [_FaultState(f) for f in plan.faults] if plan else []
        self.injected = []

    def reset(self) -> None:
        self.install(None)

    def fire(self, site: str, *, replica: int | None = None, **ctx: Any) -> Fault | None:
        """Probe one site visit; returns the fault that fires, if any.

        ``replica`` is the call's replica context (a coordinator probing
        a per-replica seam passes the index); in a worker process the
        injector's own ``self_replica`` is the context. Every matching
        fault's visit counter advances exactly once per call, so plans
        stay deterministic even when several faults share a site.
        """
        if self.plan is None:
            return None
        if replica is None:
            replica = self.self_replica
        winner: Fault | None = None
        for state in self._states:
            if state.fault.site != site or not state.matches(replica):
                continue
            if state.visit() and winner is None:
                winner = state.fault
        if winner is not None:
            record = dict(ctx)
            if replica is not None:
                record.setdefault("replica", replica)
            self.injected.append((site, winner, record))
            obs.event(
                "chaos.inject", site=site, kind=winner.kind.value, **record
            )
        return winner

    def check(self, site: str, *, replica: int | None = None, **ctx: Any) -> None:
        """Probe a site and apply the default action for what fires."""
        fault = self.fire(site, replica=replica, **ctx)
        if fault is None:
            return
        if fault.kind is FaultKind.ERROR:
            raise OSError(fault.message or f"injected fault at {site}")
        if fault.kind is FaultKind.CRASH:
            # The SIGKILL analog: no atexit hooks, no finally blocks —
            # the process vanishes mid-operation, exactly like a kill -9.
            os._exit(3)
        if fault.kind is FaultKind.WEDGE:  # pragma: no cover - exits via kill
            while True:
                time.sleep(3600.0)
        # DROP/DUP/DELAY have no sensible default; sites that support
        # them use fire() and interpret the fault themselves.

    def summary(self) -> list[dict[str, Any]]:
        """JSON-safe log of every fault that fired (tests, smoke, stats)."""
        return [
            {"site": site, "kind": fault.kind.value, **attrs}
            for site, fault, attrs in self.injected
        ]

    def __repr__(self) -> str:
        plan = self.plan.name if self.plan else None
        return f"ChaosInjector(plan={plan!r}, injected={len(self.injected)})"


#: The process-wide injector every chaos site probes.
INJECTOR = ChaosInjector()


def install(plan: FaultPlan | None, *, replica: int | None = None) -> None:
    """Install ``plan`` process-wide (``None`` uninstalls)."""
    INJECTOR.install(plan, replica=replica)


def reset() -> None:
    """Remove any installed plan; tests call this between cases."""
    INJECTOR.reset()


def fire(site: str, *, replica: int | None = None, **ctx: Any) -> Fault | None:
    """Probe ``site``; the call site interprets the returned fault."""
    return INJECTOR.fire(site, replica=replica, **ctx)


def check(site: str, *, replica: int | None = None, **ctx: Any) -> None:
    """Probe ``site``, applying default fault actions (raise/crash/wedge)."""
    INJECTOR.check(site, replica=replica, **ctx)


def injected() -> list[dict[str, Any]]:
    """The faults that have fired in this process, in firing order."""
    return INJECTOR.summary()
