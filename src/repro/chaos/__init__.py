"""``repro.chaos`` — deterministic fault injection for the serving stack.

Failure is an input, not an accident: a :class:`FaultPlan` scripts
faults (pipe drops, duplicated/delayed WAL frames, fsync errors, replica
wedge/crash, primary kill) in **virtual steps** — exact visit counts at
named injection sites threaded through :mod:`repro.cluster`,
:mod:`repro.store`, and :mod:`repro.api` — so every run of the same
workload hits the same faults at the same points. The process-wide
:data:`INJECTOR` fires them; each injection is emitted as a
``chaos.inject`` span event so a trace shows fault and recovery in one
tree.

Usage::

    from repro import chaos

    plan = chaos.FaultPlan(
        faults=(
            chaos.Fault("replica.apply", chaos.FaultKind.CRASH, at=2, replica=1),
            chaos.Fault("wal.fsync", chaos.FaultKind.ERROR, at=3),
        ),
        name="kill-and-fsync",
    )
    chaos.install(plan)          # coordinator process
    ...                          # drive the workload; faults fire on schedule
    chaos.injected()             # -> what actually fired, in order
    chaos.reset()

Cluster workers receive the same plan via their
:class:`~repro.cluster.replica.ReplicaSpec` and install it with their
own replica id, so ``replica=``-scoped faults fire only in the right
process. ``repro serve --chaos plan.json`` installs a plan into a live
server; ``scripts/chaos_smoke.py`` and ``repro chaos-bench`` drive the
scripted schedules CI gates on. See ``docs/faults.md`` for the failure
matrix each fault kind exercises.
"""

from __future__ import annotations

from .injector import (
    INJECTOR,
    ChaosInjector,
    check,
    fire,
    injected,
    install,
    reset,
)
from .plan import Fault, FaultKind, FaultPlan

__all__ = [
    "INJECTOR",
    "ChaosInjector",
    "Fault",
    "FaultKind",
    "FaultPlan",
    "check",
    "fire",
    "injected",
    "install",
    "reset",
]
