"""Scripted fault schedules: *what* fails, *where*, and on *which visit*.

A :class:`FaultPlan` is a deterministic script over **virtual steps**,
not wall-clock time: every injection point in the stack (a *site*, e.g.
``wal.fsync`` or ``replica.apply``) counts its own visits, and a
:class:`Fault` fires on an exact visit number. Re-running the same
workload against the same plan injects the same faults at the same
instants — which is what makes the recovery paths of the cluster tier
(`docs/faults.md`) *testable* instead of merely plausible.

Plans are plain frozen dataclasses with a JSON round-trip, so they can
ride a :class:`~repro.cluster.replica.ReplicaSpec` into worker
processes, travel on a CLI flag (``repro serve --chaos plan.json``), or
be built inline by tests.

Sites currently threaded through the stack:

=====================  ==================================================
site                   seam (process)
=====================  ==================================================
``primary.apply``      before a write applies on the primary (coordinator)
``cluster.ship``       per-replica delta ship (coordinator; ``replica=``)
``wal.fsync``          before the WAL fsync (whoever owns the store)
``checkpoint.rename``  between checkpoint tmp-write and atomic rename
``replica.apply``      before a replica applies a shipped delta (worker)
``replica.serve``      before a replica serves a read frame (worker)
``shard.apply``        before a shard applies a write batch (shard worker)
``shard.exchange``     per frontier-exchange relay (coordinator; ``replica=``
                       carries the *requesting* shard index)
=====================  ==================================================
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigError

PathLike = str | os.PathLike


class FaultKind(enum.Enum):
    """What happens when a fault fires at its site.

    ``ERROR``
        Raise an ``OSError`` at the site (an injected I/O failure: fsync
        error, pipe error, torn rename window). The stack's normal error
        handling must contain it.
    ``CRASH``
        Die on the spot. In a worker process this is ``os._exit`` (the
        moral equivalent of SIGKILL); at the coordinator's
        ``primary.apply`` site it marks the embedded primary dead, which
        is what forces a failover.
    ``WEDGE``
        Stop making progress without dying (the SIGSTOP analog): the
        site blocks forever. Deadlines, response timeouts, and circuit
        breakers must route around it.
    ``DROP``
        Discard the action (a dropped pipe frame / lost delta). The
        receiver sees a sequence gap and must recover.
    ``DUP``
        Perform the send twice (a duplicated frame). Idempotent apply
        must absorb it.
    ``DELAY``
        Hold the frame back one virtual step, so the *next* frame
        overtakes it (reordering on a FIFO channel). The receiver sees a
        gap and must recover.
    """

    ERROR = "error"
    CRASH = "crash"
    WEDGE = "wedge"
    DROP = "drop"
    DUP = "dup"
    DELAY = "delay"


@dataclass(frozen=True)
class Fault:
    """One scripted fault: fire ``kind`` at ``site`` on visit ``at``.

    ``at`` is 1-based and counted per matching fault (each fault keeps
    its own visit counter), so two faults on the same site script
    independently. ``count`` fires the fault on that many *consecutive*
    visits. ``replica`` restricts the fault to one worker (sites that
    concern a specific replica pass the index; ``None`` matches any).
    """

    site: str
    kind: FaultKind
    at: int = 1
    count: int = 1
    replica: int | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigError("fault site must be non-empty")
        if not isinstance(self.kind, FaultKind):
            raise ConfigError(f"kind must be a FaultKind, got {self.kind!r}")
        if self.at < 1:
            raise ConfigError(f"at must be >= 1 (1-based visit), got {self.at}")
        if self.count < 1:
            raise ConfigError(f"count must be >= 1, got {self.count}")
        if self.replica is not None and self.replica < 0:
            raise ConfigError(f"replica must be >= 0, got {self.replica}")

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "site": self.site,
            "kind": self.kind.value,
            "at": self.at,
        }
        if self.count != 1:
            payload["count"] = self.count
        if self.replica is not None:
            payload["replica"] = self.replica
        if self.message:
            payload["message"] = self.message
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Fault":
        try:
            kind = FaultKind(payload["kind"])
        except (KeyError, ValueError):
            raise ConfigError(
                f"fault needs a valid 'kind', got {payload.get('kind')!r}"
            ) from None
        if "site" not in payload:
            raise ConfigError("fault needs a 'site'")
        return cls(
            site=str(payload["site"]),
            kind=kind,
            at=int(payload.get("at", 1)),
            count=int(payload.get("count", 1)),
            replica=(
                int(payload["replica"]) if payload.get("replica") is not None else None
            ),
            message=str(payload.get("message", "")),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered script of faults, shared by every process of a cluster.

    The plan itself is immutable; per-process firing state lives in the
    :class:`~repro.chaos.injector.ChaosInjector` it is installed into.
    """

    faults: tuple[Fault, ...] = ()
    name: str = "plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise ConfigError(f"faults must be Fault objects, got {fault!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict) or "faults" not in payload:
            raise ConfigError("a fault plan is an object with a 'faults' array")
        faults = payload["faults"]
        if not isinstance(faults, list):
            raise ConfigError("'faults' must be a JSON array")
        return cls(
            faults=tuple(Fault.from_dict(item) for item in faults),
            name=str(payload.get("name", "plan")),
        )

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        """Parse a plan from a JSON file (the ``--chaos`` CLI flag)."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def dump(self, path: PathLike) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan(name={self.name!r}, faults={len(self.faults)})"
