"""Configuration objects shared across the library.

:class:`PPRConfig` bundles every knob of the dynamic-PPR maintenance
pipeline: the PPR definition itself (``alpha``), the approximation quality
(``epsilon``), which push algorithm variant runs (``variant``, the paper's
Table 3), which execution backend evaluates it (``backend``), and how much
hardware parallelism the simulated engine assumes (``workers``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigError

#: Teleport probability used throughout the paper's experiments (Table 2).
DEFAULT_ALPHA = 0.15

#: Error threshold default; the paper sweeps 1e-5 .. 1e-10 (Table 2).
DEFAULT_EPSILON = 1e-5


class PushVariant(enum.Enum):
    """The four parallel-push variants of the paper's Table 3.

    ===========  ==================  =========================
    Variant      Eager propagation   Local duplicate detection
    ===========  ==================  =========================
    ``VANILLA``  no                  no
    ``EAGER``    yes                 no
    ``DUPDETECT`` no                 yes
    ``OPT``      yes                 yes
    ===========  ==================  =========================
    """

    VANILLA = "vanilla"
    EAGER = "eager"
    DUPDETECT = "dupdetect"
    OPT = "opt"

    @property
    def eager(self) -> bool:
        """Whether this variant uses eager propagation (Section 4.1)."""
        return self in (PushVariant.EAGER, PushVariant.OPT)

    @property
    def local_duplicate_detection(self) -> bool:
        """Whether this variant uses local duplicate detection (Section 4.2)."""
        return self in (PushVariant.DUPDETECT, PushVariant.OPT)


class Backend(enum.Enum):
    """Execution backend for the parallel push.

    ``PURE``
        Reference implementation with explicit per-vertex scheduling.
        Exact algorithm semantics; used by tests and small workloads.
    ``NUMPY``
        Vectorized execution (``np.add.at`` plays the role of atomic adds)
        with worker-count-sized scheduling chunks. Used by benchmarks.
    ``MULTIPROCESS``
        Real OS-process BSP execution (demonstration; the GIL prevents
        shared-memory thread parallelism in pure Python).
    """

    PURE = "pure"
    NUMPY = "numpy"
    MULTIPROCESS = "multiprocess"


class Phase(enum.Enum):
    """Push phase: positive residuals first, then negative (Algorithm 2/3)."""

    POS = 1
    NEG = -1

    def exceeds(self, residual: float, epsilon: float) -> bool:
        """The paper's ``pushCond``: is ``residual`` over threshold in this phase?"""
        if self is Phase.POS:
            return residual > epsilon
        return residual < -epsilon


@dataclass(frozen=True)
class PPRConfig:
    """Immutable configuration for dynamic PPR maintenance.

    Parameters
    ----------
    alpha:
        Teleport probability of the PPR random walk, ``0 < alpha < 1``.
    epsilon:
        Error threshold; on convergence ``|P_s(v) - pi_v(s)| <= epsilon``.
    variant:
        Parallel push variant (Table 3 of the paper).
    backend:
        Execution backend for the parallel push.
    workers:
        Degree of (simulated) hardware parallelism. For the pure/numpy
        backends this is the scheduling chunk width used to emulate
        concurrent threads; it also feeds the cost models.
    max_iterations:
        Safety bound on push iterations; exceeded only on library bugs
        (the push provably terminates), so hitting it raises.
    """

    alpha: float = DEFAULT_ALPHA
    epsilon: float = DEFAULT_EPSILON
    variant: PushVariant = PushVariant.OPT
    backend: Backend = Backend.PURE
    workers: int = 40
    max_iterations: int = 1_000_000
    extras: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not isinstance(self.variant, PushVariant):
            raise ConfigError(f"variant must be a PushVariant, got {self.variant!r}")
        if not isinstance(self.backend, Backend):
            raise ConfigError(f"backend must be a Backend, got {self.backend!r}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_iterations < 1:
            raise ConfigError(f"max_iterations must be >= 1, got {self.max_iterations}")

    def with_(self, **changes: Any) -> "PPRConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary, used in benchmark tables."""
        return (
            f"alpha={self.alpha} eps={self.epsilon:g} variant={self.variant.value}"
            f" backend={self.backend.value} workers={self.workers}"
        )
