"""Configuration objects shared across the library.

:class:`PPRConfig` bundles every knob of the dynamic-PPR maintenance
pipeline: the PPR definition itself (``alpha``), the approximation quality
(``epsilon``), which push algorithm variant runs (``variant``, the paper's
Table 3), which execution backend evaluates it (``backend``), and how much
hardware parallelism the simulated engine assumes (``workers``).
:class:`ServeConfig` bundles the knobs of the multi-query serving layer
built on top (:mod:`repro.serve`, see ``docs/serving.md``).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigError

#: Teleport probability used throughout the paper's experiments (Table 2).
DEFAULT_ALPHA = 0.15

#: Error threshold default; the paper sweeps 1e-5 .. 1e-10 (Table 2).
DEFAULT_EPSILON = 1e-5


class PushVariant(enum.Enum):
    """The four parallel-push variants of the paper's Table 3.

    ===========  ==================  =========================
    Variant      Eager propagation   Local duplicate detection
    ===========  ==================  =========================
    ``VANILLA``  no                  no
    ``EAGER``    yes                 no
    ``DUPDETECT`` no                 yes
    ``OPT``      yes                 yes
    ===========  ==================  =========================
    """

    VANILLA = "vanilla"
    EAGER = "eager"
    DUPDETECT = "dupdetect"
    OPT = "opt"

    @property
    def eager(self) -> bool:
        """Whether this variant uses eager propagation (Section 4.1)."""
        return self in (PushVariant.EAGER, PushVariant.OPT)

    @property
    def local_duplicate_detection(self) -> bool:
        """Whether this variant uses local duplicate detection (Section 4.2)."""
        return self in (PushVariant.DUPDETECT, PushVariant.OPT)


class Backend(enum.Enum):
    """Execution backend for the parallel push.

    ``PURE``
        Reference implementation with explicit per-vertex scheduling.
        Exact algorithm semantics; used by tests and small workloads.
    ``NUMPY``
        Vectorized execution (``np.add.at`` plays the role of atomic adds)
        with worker-count-sized scheduling chunks. Used by benchmarks.
    ``MULTIPROCESS``
        Real OS-process BSP execution (demonstration; the GIL prevents
        shared-memory thread parallelism in pure Python).
    """

    PURE = "pure"
    NUMPY = "numpy"
    MULTIPROCESS = "multiprocess"


class KernelMode(enum.Enum):
    """Which push-kernel implementation backs the ``NUMPY`` backend's loops.

    ``AUTO``
        Use the compiled C kernel when one can be built (or is cached),
        fall back to the vectorized numpy path otherwise. The default.
    ``COMPILED``
        Require the compiled kernel; raise
        :class:`~repro.errors.BackendError` when it is unavailable
        (no compiler, build failure). Views a compiled kernel cannot
        serve at all — e.g. the sharded tier's distributed views — still
        fall back per push.
    ``NUMPY``
        Force the pure-numpy vectorized path (the correctness oracle).

    Both kernels are bit-identical by contract; ``repro.kernels``
    enforces it with differential property tests in CI.
    """

    AUTO = "auto"
    COMPILED = "compiled"
    NUMPY = "numpy"


@dataclass(frozen=True)
class KernelConfig:
    """Push-kernel selection (see :mod:`repro.kernels`).

    Parameters
    ----------
    mode:
        Which implementation to select (see :class:`KernelMode`).
    compiler:
        C compiler executable; ``None`` defers to ``REPRO_KERNEL_CC``
        or the first of ``cc``/``gcc``/``clang`` on ``PATH``.
    cache_dir:
        Directory caching built kernel libraries; ``None`` defers to
        ``REPRO_KERNEL_CACHE`` or ``~/.cache/repro-kernels``.
    """

    mode: KernelMode = KernelMode.AUTO
    compiler: str | None = None
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.mode, KernelMode):
            raise ConfigError(f"mode must be a KernelMode, got {self.mode!r}")

    @classmethod
    def from_env(cls) -> "KernelConfig":
        """Selection from ``REPRO_KERNEL`` (``compiled|numpy|auto``)."""
        raw = os.environ.get("REPRO_KERNEL", "").strip().lower()
        if not raw:
            return cls()
        try:
            mode = KernelMode(raw)
        except ValueError:
            choices = "/".join(m.value for m in KernelMode)
            raise ConfigError(
                f"REPRO_KERNEL must be one of {choices}, got {raw!r}"
            ) from None
        return cls(mode=mode)

    def with_(self, **changes: Any) -> "KernelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


class Phase(enum.Enum):
    """Push phase: positive residuals first, then negative (Algorithm 2/3)."""

    POS = 1
    NEG = -1

    def exceeds(self, residual: float, epsilon: float) -> bool:
        """The paper's ``pushCond``: is ``residual`` over threshold in this phase?"""
        if self is Phase.POS:
            return residual > epsilon
        return residual < -epsilon


class FsyncPolicy(enum.Enum):
    """When the write-ahead log forces its bytes to stable storage.

    ``ALWAYS``
        ``fsync`` after every appended batch. A crash loses at most the
        batch being written (detected and truncated as a torn tail).
    ``ROTATE``
        ``fsync`` only when a segment is rotated out (every checkpoint)
        or the log is closed. A crash may lose the tail of the current
        segment — but never a batch already covered by a checkpoint.
    ``NEVER``
        Leave flushing to the OS page cache. Fastest; durability is only
        as good as the last checkpoint plus whatever the kernel wrote.
    """

    ALWAYS = "always"
    ROTATE = "rotate"
    NEVER = "never"


@dataclass(frozen=True)
class StoreConfig:
    """Configuration of the durable state store (:mod:`repro.store`).

    Parameters
    ----------
    root:
        Directory holding the store (``wal/`` and ``checkpoints/`` live
        under it; created on first use).
    checkpoint_interval:
        Write a checkpoint every this many ingested batches. The WAL tail
        replayed at recovery is at most this many batches long.
    retain_checkpoints:
        How many recent checkpoints to keep; older ones are pruned after
        each new checkpoint (at least 1).
    fsync:
        WAL flush discipline (see :class:`FsyncPolicy`).

    See ``docs/persistence.md`` for formats and the recovery walkthrough.
    """

    root: str = "ppr-store"
    checkpoint_interval: int = 10
    retain_checkpoints: int = 2
    fsync: FsyncPolicy = FsyncPolicy.ALWAYS

    def __post_init__(self) -> None:
        if not self.root:
            raise ConfigError("root must be a non-empty path")
        if self.checkpoint_interval < 1:
            raise ConfigError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.retain_checkpoints < 1:
            raise ConfigError(
                f"retain_checkpoints must be >= 1, got {self.retain_checkpoints}"
            )
        if not isinstance(self.fsync, FsyncPolicy):
            raise ConfigError(f"fsync must be a FsyncPolicy, got {self.fsync!r}")

    def with_(self, **changes: Any) -> "StoreConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


class SnapshotStrategy(enum.Enum):
    """How the serving layer derives the shared CSR view after a batch.

    ``REBUILD``
        Rebuild a frozen :class:`repro.graph.csr.CSRGraph` from the
        dynamic graph whenever the version moves — O(n + m) per batch,
        independent of batch size (the pre-delta behaviour).
    ``DELTA``
        Layer the batch as a row overlay on the previous snapshot
        (:class:`repro.graph.delta.DeltaCSRGraph`) and consolidate into a
        fresh base only when the overlay exceeds
        ``snapshot_overlay_threshold`` — amortized cost proportional to
        the *change*, not the graph. Bit-identical answers to ``REBUILD``
        (the overlay is order-exact; see ``docs/performance.md``).
    """

    REBUILD = "rebuild"
    DELTA = "delta"


class HubRefresh(enum.Enum):
    """When the always-resident hub tier re-converges after an ingest.

    ``EAGER``
        Every ingested batch immediately pushes all hub vectors back to
        convergence (the pre-existing behaviour) — hub queries are always
        fresh, ingest pays the hub work whether or not hubs are queried.
    ``LAZY``
        Ingest only restores the hub invariants (cheap, O(hubs * batch))
        and accumulates the touched seeds; the pushes run on the next hub
        query. Delta-sized batches skip hub work they don't need.
    """

    EAGER = "eager"
    LAZY = "lazy"


class ConsistencyLevel(enum.Enum):
    """Per-request read consistency of the gateway API (:mod:`repro.api`).

    Replaces the *global* :class:`RefreshPolicy` knob with a per-request
    contract (``RefreshPolicy`` still controls what ingest does eagerly;
    consistency controls what a read is allowed to return):

    ``FRESH``
        Refresh-before-read: the answer is ε-approximate on the latest
        snapshot version (the pre-gateway behaviour of every query).
    ``BOUNDED``
        The answer may lag the latest snapshot by at most ``s`` versions
        (``Consistency.bounded(s)``); a resident state within the bound
        is served as-is, a staler one is refreshed first.
    ``ANY``
        Serve whatever resident state exists, however stale; only a cold
        source (no resident state at all) pays a push.
    """

    FRESH = "fresh"
    BOUNDED = "bounded"
    ANY = "any"


@dataclass(frozen=True)
class ObsConfig:
    """Configuration of the observability layer (:mod:`repro.obs`).

    Parameters
    ----------
    enabled:
        Master switch for distributed tracing. Off (the default) the
        whole span machinery collapses to a couple of attribute checks
        per request; the per-stage latency histograms and the slow-query
        log stay on regardless (they are counters, not traces).
    sample_rate:
        Fraction of ingress requests that mint a trace, decided once at
        the front door with a deterministic accumulator (exactly this
        fraction samples, no RNG). ``1.0`` traces everything.
    ring_capacity:
        Finished spans retained in the in-process ring buffer that backs
        ``GET /v1/trace/<id>``; older spans fall off the end.
    slowlog_capacity:
        Entries retained in the slow-query ring (``GET /v1/slow``).
    slowlog_threshold_ms:
        Requests at least this slow are recorded in the slow-query log.
    export_path:
        Append every finished span as one JSON line to this file (the
        structured event sink; ``repro trace export`` turns it into a
        Chrome ``trace_event`` file). ``None`` disables the sink.

    See ``docs/observability.md`` for the trace model and span taxonomy.
    """

    enabled: bool = False
    sample_rate: float = 1.0
    ring_capacity: int = 4096
    slowlog_capacity: int = 256
    slowlog_threshold_ms: float = 50.0
    export_path: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ConfigError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )
        if self.ring_capacity < 1:
            raise ConfigError(
                f"ring_capacity must be >= 1, got {self.ring_capacity}"
            )
        if self.slowlog_capacity < 1:
            raise ConfigError(
                f"slowlog_capacity must be >= 1, got {self.slowlog_capacity}"
            )
        if self.slowlog_threshold_ms < 0:
            raise ConfigError(
                f"slowlog_threshold_ms must be >= 0, got {self.slowlog_threshold_ms}"
            )

    def with_(self, **changes: Any) -> "ObsConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ApiConfig:
    """Configuration of the typed gateway API (:mod:`repro.api`).

    Parameters
    ----------
    host / port:
        Bind address of the HTTP front-end (``repro serve``); port ``0``
        asks the OS for an ephemeral port (tests do this).
    coalesce_reads:
        Whether :meth:`repro.api.Gateway.submit_many` groups consecutive
        same-shaped top-k reads between writes into one batched engine
        call (deduplicating repeated sources); see ``docs/api.md``.
    max_batch:
        Maximum reads coalesced into one engine batch.
    default_consistency:
        Consistency applied when a request does not name one.
    staleness_bound:
        Version bound used when ``default_consistency`` is ``BOUNDED``.
    admission_queue:
        Capacity of the gateway's bounded admission queue; ``0`` (the
        default) disables admission control entirely. When enabled, a
        request is shed with :class:`~repro.errors.OverloadError` (HTTP
        429) once the in-flight depth crosses its priority class's
        threshold — ``ANY`` reads shed first, then ``BOUNDED``, then
        ``FRESH`` reads and writes; admin ops are never shed. See
        ``docs/load.md``.
    obs:
        Observability configuration (:class:`ObsConfig`). A gateway built
        with ``obs.enabled`` (or an ``export_path``) installs it as the
        process-wide tracer; the default (disabled) leaves whatever is
        already configured alone.
    """

    host: str = "127.0.0.1"
    port: int = 8707
    coalesce_reads: bool = True
    max_batch: int = 256
    default_consistency: ConsistencyLevel = ConsistencyLevel.FRESH
    staleness_bound: int = 0
    admission_queue: int = 0
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.admission_queue < 0:
            raise ConfigError(
                f"admission_queue must be >= 0, got {self.admission_queue}"
            )
        if not isinstance(self.default_consistency, ConsistencyLevel):
            raise ConfigError(
                "default_consistency must be a ConsistencyLevel,"
                f" got {self.default_consistency!r}"
            )
        if self.staleness_bound < 0:
            raise ConfigError(
                f"staleness_bound must be >= 0, got {self.staleness_bound}"
            )
        if not isinstance(self.obs, ObsConfig):
            raise ConfigError(f"obs must be an ObsConfig, got {self.obs!r}")

    def with_(self, **changes: Any) -> "ApiConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


class PlacementPolicy(enum.Enum):
    """How the cluster tier routes a read to a replica (:mod:`repro.cluster`).

    ``HASHED``
        A source is always served by ``source % replicas``. Each replica's
        resident cache holds a stable partition of the source space, so
        per-source maintenance (lazy refreshes, cold admissions) runs on
        exactly one replica — the work partitioning the scale-out exists
        for.
    ``ROUND_ROBIN``
        Reads rotate across replicas regardless of source. Spreads load
        evenly under skew, at the cost of every replica warming (and
        refreshing) every hot source.
    """

    HASHED = "hashed"
    ROUND_ROBIN = "round_robin"


class CatchUpPolicy(enum.Enum):
    """How a FRESH read treats a replica that may lag the primary.

    ``PIPELINED``
        Rely on channel ordering: write deltas and reads travel the same
        FIFO pipe, so by the time a replica serves a read it has applied
        every delta shipped before it. No extra round trip; reads queue
        behind in-flight deltas.
    ``BARRIER``
        Before dispatching, send an explicit sync and wait for the
        replica to acknowledge the primary's head version. Costs a round
        trip but surfaces a wedged replica *before* the read is committed
        to it.
    """

    PIPELINED = "pipelined"
    BARRIER = "barrier"


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of the replicated serving tier (:mod:`repro.cluster`).

    Parameters
    ----------
    replicas:
        Worker processes, each hosting a full replica of the serving
        engine. Reads are load-balanced across them; writes apply on the
        primary and ship to every replica as ordered deltas.
    placement:
        Read-routing policy (see :class:`PlacementPolicy`).
    catch_up:
        FRESH-read catch-up discipline (see :class:`CatchUpPolicy`).
    max_respawns:
        How many times a crashed replica may be respawned before the
        cluster gives up and raises (guards against a poison batch
        crash-looping a worker).
    start_method:
        :mod:`multiprocessing` start method (``fork`` is the fast path on
        Linux; ``spawn`` re-imports the library per worker).
    spawn_timeout_s / response_timeout_s:
        How long to wait for a worker's hello handshake / a dispatched
        read before declaring the replica dead.
    hedge_reads:
        Dispatch idempotent non-FRESH single reads to a second replica
        as well and take the first answer — latency insurance against a
        slow or wedged owner, at the cost of duplicated read work.
    shared_memory:
        Bootstrap replicas from a named shared-memory snapshot
        (:mod:`repro.graph.shm`) instead of pickling the full graph
        dump through each worker's pipe. Workers attach the published
        segment by name — zero-copy, so spawn cost stays O(1) in the
        graph size. Disable to force the legacy pipe bootstrap (e.g. on
        hosts without ``/dev/shm``).
    breaker_failures / breaker_cooldown:
        Per-replica circuit breaker: consecutive failures before the
        replica is ejected from the read rotation, and denied requests
        before a half-open probe is allowed
        (:class:`repro.api.resilience.CircuitBreaker`).

    See ``docs/cluster.md`` for topology and ``docs/faults.md`` for the
    failure model.
    """

    replicas: int = 2
    placement: PlacementPolicy = PlacementPolicy.HASHED
    catch_up: CatchUpPolicy = CatchUpPolicy.PIPELINED
    max_respawns: int = 3
    start_method: str = "fork"
    spawn_timeout_s: float = 60.0
    response_timeout_s: float = 300.0
    hedge_reads: bool = False
    shared_memory: bool = True
    breaker_failures: int = 3
    breaker_cooldown: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.replicas <= 64:
            raise ConfigError(f"replicas must be in [1, 64], got {self.replicas}")
        if not isinstance(self.placement, PlacementPolicy):
            raise ConfigError(
                f"placement must be a PlacementPolicy, got {self.placement!r}"
            )
        if not isinstance(self.catch_up, CatchUpPolicy):
            raise ConfigError(
                f"catch_up must be a CatchUpPolicy, got {self.catch_up!r}"
            )
        if self.max_respawns < 0:
            raise ConfigError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.start_method not in ("fork", "spawn", "forkserver"):
            raise ConfigError(
                "start_method must be one of fork/spawn/forkserver,"
                f" got {self.start_method!r}"
            )
        if self.spawn_timeout_s <= 0 or self.response_timeout_s <= 0:
            raise ConfigError("cluster timeouts must be > 0")
        if self.breaker_failures < 1:
            raise ConfigError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_cooldown < 1:
            raise ConfigError(
                f"breaker_cooldown must be >= 1, got {self.breaker_cooldown}"
            )

    def with_(self, **changes: Any) -> "ClusterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


class PartitionerKind(enum.Enum):
    """Vertex placement strategy of the sharded tier (:mod:`repro.shard`).

    ``HASH``
        Stateless splitmix64 hash of the vertex id mod the shard count.
        Balanced to within a few percent even on Zipf-distributed ids,
        and repartition-free: a vertex's owner never changes as the
        graph grows.
    ``DEGREE``
        Degree-aware greedy placement built from a seed graph (heaviest
        in-degree vertices assigned first to the least-loaded shard),
        with the hash rule as fallback for vertices unseen at build
        time. Still repartition-free — the table is static.
    """

    HASH = "hash"
    DEGREE = "degree"


@dataclass(frozen=True)
class ShardConfig:
    """Configuration of the partitioned serving tier (:mod:`repro.shard`).

    Parameters
    ----------
    shards:
        Worker processes, each *owning* a vertex slice of the dynamic
        graph: its in-adjacency rows, the PPR states of its resident
        sources, and (when a store is attached) its own WAL segment
        directory and checkpoints. Unlike :class:`ClusterConfig`
        replicas, shards partition writes and memory, not just reads.
    partitioner:
        Vertex placement strategy (see :class:`PartitionerKind`).
    max_respawns:
        How many times a crashed shard may be respawned before the
        gateway gives up and raises.
    start_method:
        :mod:`multiprocessing` start method (``fork`` is the fast path
        on Linux).
    spawn_timeout_s / response_timeout_s:
        How long to wait for a worker's hello handshake / a dispatched
        frame before declaring the shard dead.
    history_frames:
        Bound on the in-memory ring of recent write frames the
        coordinator keeps for catching up a respawned shard without a
        store (a storeless gateway keeps the full history instead).
    shared_memory:
        Publish the seed graph snapshot as a named shared-memory
        segment (:mod:`repro.graph.shm`) that every shard worker
        attaches and slices locally, instead of pickling the full dump
        through each worker's pipe. Disable to force the legacy pipe
        bootstrap.

    See ``docs/sharding.md`` for placement, the frontier-exchange
    protocol, and the recovery manifest.
    """

    shards: int = 2
    partitioner: PartitionerKind = PartitionerKind.HASH
    max_respawns: int = 3
    start_method: str = "fork"
    spawn_timeout_s: float = 60.0
    response_timeout_s: float = 300.0
    history_frames: int = 512
    shared_memory: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.shards <= 64:
            raise ConfigError(f"shards must be in [1, 64], got {self.shards}")
        if not isinstance(self.partitioner, PartitionerKind):
            raise ConfigError(
                f"partitioner must be a PartitionerKind, got {self.partitioner!r}"
            )
        if self.max_respawns < 0:
            raise ConfigError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.start_method not in ("fork", "spawn", "forkserver"):
            raise ConfigError(
                "start_method must be one of fork/spawn/forkserver,"
                f" got {self.start_method!r}"
            )
        if self.spawn_timeout_s <= 0 or self.response_timeout_s <= 0:
            raise ConfigError("shard timeouts must be > 0")
        if self.history_frames < 1:
            raise ConfigError(
                f"history_frames must be >= 1, got {self.history_frames}"
            )

    def with_(self, **changes: Any) -> "ShardConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


class RefreshPolicy(enum.Enum):
    """When the serving layer re-converges resident PPR states.

    ``EAGER``
        Every :meth:`repro.serve.PPRService.ingest` immediately pushes all
        resident sources back to convergence. Queries are always fresh and
        cheap, ingest bears the full maintenance cost.
    ``LAZY``
        Ingest only restores the invariant (cheap, O(residents * batch));
        the push for a source is deferred until that source is queried.
        Amortizes maintenance over the query mix — sources nobody asks
        about never pay for a push.
    """

    EAGER = "eager"
    LAZY = "lazy"


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of the multi-query serving layer (:mod:`repro.serve`).

    Parameters
    ----------
    cache_capacity:
        Maximum number of resident per-source PPR states. When a cold
        source is admitted past capacity the least-recently-queried
        resident is evicted.
    admission_batch:
        Cold sources admitted per vectorized push batch; a batch shares
        one CSR snapshot so admission cost amortizes across sources.
    refresh:
        Re-convergence policy for resident states (see
        :class:`RefreshPolicy`).
    num_hubs:
        Size of the always-resident :class:`repro.core.hub_index.DynamicHubIndex`
        tier maintained alongside the query cache; ``0`` disables it.
    hub_refresh:
        When the hub tier re-converges after an ingest (see
        :class:`HubRefresh`); irrelevant when ``num_hubs`` is 0.
    top_k:
        Default ranking depth returned by queries.
    snapshot:
        How the per-version shared CSR view is derived (see
        :class:`SnapshotStrategy`). ``DELTA`` keeps ingest cost
        proportional to batch size; answers are bit-identical either way.
    snapshot_overlay_threshold:
        ``DELTA`` only: consolidate the overlay into a fresh frozen base
        once it holds more than this fraction of the base's edges
        (see ``docs/performance.md`` for tuning guidance).
    store:
        Durable-state-store configuration (:class:`StoreConfig`); ``None``
        keeps the service purely in-memory. When set, the service attaches
        a :class:`repro.store.StateStore` at construction and persists
        every ingested batch (see ``docs/persistence.md``).

    See ``docs/serving.md`` for the serving-layer design rationale.
    """

    cache_capacity: int = 64
    admission_batch: int = 8
    refresh: RefreshPolicy = RefreshPolicy.LAZY
    num_hubs: int = 0
    hub_refresh: HubRefresh = HubRefresh.EAGER
    top_k: int = 10
    snapshot: SnapshotStrategy = SnapshotStrategy.DELTA
    snapshot_overlay_threshold: float = 0.25
    store: "StoreConfig | None" = None

    def __post_init__(self) -> None:
        if self.cache_capacity < 1:
            raise ConfigError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.admission_batch < 1:
            raise ConfigError(
                f"admission_batch must be >= 1, got {self.admission_batch}"
            )
        if not isinstance(self.refresh, RefreshPolicy):
            raise ConfigError(f"refresh must be a RefreshPolicy, got {self.refresh!r}")
        if self.num_hubs < 0:
            raise ConfigError(f"num_hubs must be >= 0, got {self.num_hubs}")
        if not isinstance(self.hub_refresh, HubRefresh):
            raise ConfigError(
                f"hub_refresh must be a HubRefresh, got {self.hub_refresh!r}"
            )
        if self.top_k < 1:
            raise ConfigError(f"top_k must be >= 1, got {self.top_k}")
        if not isinstance(self.snapshot, SnapshotStrategy):
            raise ConfigError(
                f"snapshot must be a SnapshotStrategy, got {self.snapshot!r}"
            )
        if not 0.0 < self.snapshot_overlay_threshold:
            raise ConfigError(
                "snapshot_overlay_threshold must be > 0,"
                f" got {self.snapshot_overlay_threshold}"
            )
        if self.store is not None and not isinstance(self.store, StoreConfig):
            raise ConfigError(f"store must be a StoreConfig, got {self.store!r}")

    def with_(self, **changes: Any) -> "ServeConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class PPRConfig:
    """Immutable configuration for dynamic PPR maintenance.

    Parameters
    ----------
    alpha:
        Teleport probability of the PPR random walk, ``0 < alpha < 1``.
    epsilon:
        Error threshold; on convergence ``|P_s(v) - pi_v(s)| <= epsilon``.
    variant:
        Parallel push variant (Table 3 of the paper).
    backend:
        Execution backend for the parallel push.
    workers:
        Degree of (simulated) hardware parallelism. For the pure/numpy
        backends this is the scheduling chunk width used to emulate
        concurrent threads; it also feeds the cost models.
    max_iterations:
        Safety bound on push iterations; exceeded only on library bugs
        (the push provably terminates), so hitting it raises.
    kernel:
        Push-kernel selection for the ``NUMPY`` backend's inner loops
        (:class:`KernelConfig`); ``None`` (the default) reads
        ``REPRO_KERNEL`` from the environment at push time. Answers are
        bit-identical either way — this knob only trades speed.
    """

    alpha: float = DEFAULT_ALPHA
    epsilon: float = DEFAULT_EPSILON
    variant: PushVariant = PushVariant.OPT
    backend: Backend = Backend.PURE
    workers: int = 40
    max_iterations: int = 1_000_000
    kernel: "KernelConfig | None" = None
    extras: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not isinstance(self.variant, PushVariant):
            raise ConfigError(f"variant must be a PushVariant, got {self.variant!r}")
        if not isinstance(self.backend, Backend):
            raise ConfigError(f"backend must be a Backend, got {self.backend!r}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_iterations < 1:
            raise ConfigError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.kernel is not None and not isinstance(self.kernel, KernelConfig):
            raise ConfigError(f"kernel must be a KernelConfig, got {self.kernel!r}")

    def with_(self, **changes: Any) -> "PPRConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary, used in benchmark tables."""
        kernel = f" kernel={self.kernel.mode.value}" if self.kernel else ""
        return (
            f"alpha={self.alpha} eps={self.epsilon:g} variant={self.variant.value}"
            f" backend={self.backend.value} workers={self.workers}{kernel}"
        )
