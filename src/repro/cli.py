"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the paper-dataset analogs and their scaling.
``figure <fig4..fig10> [--dataset D] [--slides N]``
    Regenerate one evaluation figure's table.
``ablation <loss|batching|frontier> [--dataset D]``
    Run one ablation study.
``track <dataset> [--slides N] [--epsilon E]``
    Stream sliding-window slides through a tracker and report per-slide
    operation counts, simulated latency, and the certified top-5.
``serve-bench <dataset> [--sources N] [--slides N] [--queries N]``
    Benchmark the multi-query serving layer (:mod:`repro.serve`) against
    per-query from-scratch recomputation; see ``docs/serving.md``.
``ingest-bench <dataset> [--slides N] [--sources N] [--tiny]``
    Race delta-CSR snapshots against per-batch full rebuilds on the
    ingest hot path (Fig-8 batch-size sweep, queries included); exits
    nonzero unless the delta path wins with bit-identical answers.
    ``--tiny`` runs the single-batch-size CI smoke; see
    ``docs/performance.md``.
``store-checkpoint <dataset> --root DIR [--slides N] [--sources N]``
    Stream a workload through a *persisted* service (WAL + checkpoints
    under ``--root``) and record its served top-k answers for later
    verification; see ``docs/persistence.md``.
``store-inspect --root DIR``
    List a store's checkpoints and WAL segments (torn tails included).
``store-recover --root DIR [--verify]``
    Recover a service from a store and serve from it; ``--verify`` checks
    the answers bit-for-bit against the ones ``store-checkpoint`` served.
``serve <dataset> [--host H] [--port P] [--hubs N] [--replicas N]``
    Run the typed-gateway HTTP front-end (:mod:`repro.api.http`) over a
    deterministic dataset-analog service: ``POST /v1/query``,
    ``POST /v1/ingest``, ``GET /v1/stats``, ``GET /v1/healthz``
    (liveness), ``GET /v1/readyz`` (readiness — 503 while degraded).
    With ``--replicas N`` the gateway is the replicated cluster tier
    (:mod:`repro.cluster`): N worker processes serve reads, writes ship
    as ordered deltas, and a dead primary fails over to the
    most-caught-up replica. With ``--shards N`` it is the *partitioned*
    shard tier (:mod:`repro.shard`): N worker processes each own a
    vertex slice of the graph and its PPR state, writes apply on every
    shard, and cross-shard pushes exchange frontier rows through the
    coordinator. ``--store DIR`` persists ingest through a
    WAL+checkpoint store (per-shard stores plus a recovery manifest
    under ``--shards``); ``--chaos PLAN.json`` arms a deterministic
    fault-injection plan (:mod:`repro.chaos`, see ``docs/faults.md``).
    ``--kernel compiled|numpy|auto`` selects the push kernel
    (:mod:`repro.kernels`) for every process of the tier and fails fast
    when ``compiled`` is forced on a host that cannot build one.
    SIGTERM/SIGINT shut down gracefully — stop accepting, drain
    admitted requests, checkpoint if dirty, join replicas — bounded by
    ``--drain-timeout``. ``--trace`` turns on end-to-end request tracing
    (:mod:`repro.obs`) at ``--trace-sample`` rate, queryable via
    ``GET /v1/trace/<id>`` and ``GET /v1/slow``; ``--trace-export``
    additionally appends every finished span to a JSONL file for
    ``repro trace export``. See ``docs/api.md``, ``docs/cluster.md``,
    and ``docs/observability.md``.
``obs-bench [dataset] [--tiny]``
    Race identical resident-read bursts with tracing disabled vs enabled
    at 1% sampling; exits nonzero if sampled tracing costs >= 3% (bar
    waived in ``--tiny`` mode and on 1-core runners). See
    ``docs/observability.md``.
``trace export --input SPANS.jsonl --out TRACE.json [--trace-id ID]``
    Convert a span JSONL sink (``serve --trace-export``) into the Chrome
    ``trace_event`` format loadable in ``chrome://tracing`` / Perfetto.
``gateway-bench <dataset> [--tiny]``
    Race one mixed read/write request trace through the gateway's
    read-coalescing scheduler vs per-request dispatch; exits nonzero
    unless coalescing wins >= 2x with bit-identical answers. ``--tiny``
    is the CI smoke mode.
``cluster-bench <dataset> [--replicas N] [--tiny]``
    Race one read-heavy trace through the replicated cluster tier vs the
    single-process gateway; exits nonzero unless every answer is
    bit-identical and within its staleness contract — and, with enough
    cores to host the replicas, unless the cluster wins >= 2.5x.
    ``--tiny`` is the CI smoke mode. See ``docs/cluster.md``.
``shard-bench [dataset] [--shards N] [--tiny]``
    Race one mixed read/write trace through the partitioned shard tier
    (:mod:`repro.shard`) vs the single-process gateway; exits nonzero
    unless every answer is bit-identical and, at 4 shards, unless the
    largest shard's resident graph bytes stay <= ~65% of the
    single-process baseline (the ingest-throughput bar additionally
    needs >= 4 cores). ``--tiny`` is the CI smoke mode. See
    ``docs/sharding.md``.
``chaos-bench <dataset> [--replicas N] [--tiny]``
    Drive a deterministic write/read trace through the replicated
    cluster while a scripted :mod:`repro.chaos` fault plan drops a
    replication frame and crashes the primary mid-trace; exits nonzero
    unless every acked write survives the failover, every ANY read
    answers, nothing hangs past the deadline, and post-heal FRESH
    answers are bit-identical to a single-process oracle. ``--tiny``
    is the CI smoke mode. See ``docs/faults.md``.
``kernel-bench [--dataset D] [--tiny]``
    Race the compiled push kernel (:mod:`repro.kernels`) against the
    numpy oracle on a single-thread one-slide push, time shared-memory
    replica bootstrap as the snapshot grows, and replay a certified
    top-k differential trace; exits nonzero on any bitwise mismatch or
    (when a compiler is present) a speedup below 5x. ``--tiny`` is the
    CI smoke mode. See ``docs/performance.md``.
``load-bench <dataset> [--tiny]``
    Open-loop goodput knee curve: measure closed-loop saturation, then
    replay Zipf multi-tenant traffic at fractions of it up to 2x through
    a bounded admission queue vs an unprotected unbounded queue; exits
    nonzero unless goodput plateaus under overload (>= 70% of peak at
    2x, waived in ``--tiny`` mode and on starved runners) with
    ANY-consistency reads shed first. See ``docs/load.md``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .bench.ablations import (
    ablation_batching,
    ablation_frontier_generation,
    ablation_parallel_loss,
)
from .bench.figures import (
    fig4_optimizations,
    fig5_throughput,
    fig6_epsilon,
    fig7_source_degree,
    fig8_batch_size,
    fig9_resources,
    fig10_scalability,
)
from .bench.serving import serving_benchmark
from .bench.workloads import WorkloadSpec, default_config, prepare_workload
from .config import Backend
from .core.certify import certified_top_k, convergence_report
from .core.tracker import DynamicPPRTracker
from .graph.datasets import DATASETS
from .parallel.cost_model import CPUCostModel
from .utils.tables import format_table


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            f"{spec.paper_vertices:,} / {spec.paper_edges:,}",
            f"{spec.num_vertices:,} / {spec.num_edges:,}",
            "directed" if spec.directed else "undirected",
            f"{spec.scale_factor:,.0f}x",
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            ["dataset", "paper n / m", "analog n / m", "kind", "scale"],
            rows,
            title="Paper-dataset analogs",
        )
    )
    return 0


_FIGURES = {
    "fig4": lambda a: fig4_optimizations(datasets=(a.dataset,), num_slides=a.slides),
    "fig5": lambda a: fig5_throughput(datasets=(a.dataset,), num_slides=a.slides),
    "fig6": lambda a: fig6_epsilon(dataset=a.dataset, num_slides=a.slides),
    "fig7": lambda a: fig7_source_degree(dataset=a.dataset, num_slides=a.slides),
    "fig8": lambda a: fig8_batch_size(dataset=a.dataset, num_slides=a.slides),
    "fig9": lambda a: fig9_resources(dataset=a.dataset, num_slides=a.slides),
    "fig10": lambda a: fig10_scalability(dataset=a.dataset, num_slides=a.slides),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    print(_FIGURES[args.name](args).table())
    return 0


_ABLATIONS = {
    "loss": lambda a: ablation_parallel_loss(dataset=a.dataset),
    "batching": lambda a: ablation_batching(dataset=a.dataset),
    "frontier": lambda a: ablation_frontier_generation(dataset=a.dataset),
}


def _cmd_ablation(args: argparse.Namespace) -> int:
    print(_ABLATIONS[args.name](args).table())
    return 0


def _cmd_track(args: argparse.Namespace) -> int:
    prepared = prepare_workload(WorkloadSpec(dataset=args.dataset))
    config = default_config(epsilon=args.epsilon).with_(
        backend=Backend.NUMPY, workers=args.workers
    )
    graph = prepared.initial_graph()
    tracker = DynamicPPRTracker(graph, prepared.source, config)
    model = CPUCostModel(workers=args.workers)
    print(f"workload: {prepared.describe()}")
    print(f"config:   {config.describe()}")
    window = prepared.new_window()
    for slide in window.slides(args.slides):
        batch = tracker.apply_batch(list(slide.updates))
        latency = model.parallel_latency(batch.push, num_updates=len(slide.updates))
        report = convergence_report(tracker.state, batch.push)
        print(
            f"slide {slide.step}: {len(slide.updates)} updates -> {report}"
            f" | simulated {latency * 1e3:.3f} ms"
        )
    print("\ncertified top-5:")
    for entry in certified_top_k(tracker.state, 5):
        mark = "certified" if entry.position_certified else "uncertain"
        print(f"  v{entry.vertex:<8d} {entry.estimate:.8f}  [{mark}]")
    return 0


#: Name of the served-answer transcript ``store-checkpoint`` leaves next
#: to the store, consumed by ``store-recover --verify``.
TOPK_TRANSCRIPT = "served_topk.txt"


def _topk_lines(service, sources: Sequence[int], k: int) -> list[str]:
    """Served certified-top-k answers as exact, diffable text lines.

    Floats are rendered with ``repr`` (shortest round-trip form), so two
    services produce identical lines iff their answers are bit-identical.
    """
    lines = []
    for s in sources:
        for rank, entry in enumerate(service.query(int(s), k).entries):
            lines.append(f"{s} {rank} {entry.vertex} {entry.estimate!r}")
    return lines


def _cmd_store_checkpoint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench.recovery import persisted_workload_run

    service, mix = persisted_workload_run(
        args.dataset,
        args.root,
        num_slides=args.slides,
        num_sources=args.sources,
        checkpoint_interval=args.interval,
        epsilon=args.epsilon,
        workers=args.workers,
    )
    # Deliberately no final checkpoint: with slides % interval != 0 the WAL
    # keeps a tail past the last checkpoint, so a recover from this store
    # exercises the full checkpoint + replay path.
    store = service.store
    verify = mix[: min(5, len(mix))]
    lines = _topk_lines(service, verify, args.k)
    transcript = Path(args.root) / TOPK_TRANSCRIPT
    transcript.write_text("\n".join(lines) + "\n")
    status = store.status()
    print(f"persisted {args.dataset}: version {service.graph_version},"
          f" {len(service.resident_sources())} resident sources,"
          f" {len(service.hubs)} hubs")
    print(f"checkpoints: {[c.version for c in status.checkpoints]}"
          f" | wal records: {status.wal_records}"
          f" | replay on recover: {status.replay_batches}")
    print(f"served top-{args.k} transcript: {transcript}"
          f" ({len(verify)} sources)")
    store.close()
    return 0


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .store.checkpoint import checkpoint_version, list_checkpoints
    from .store.wal import SEGMENT_PREFIX, SEGMENT_SUFFIX, scan_segment

    root = Path(args.root)
    if not root.exists():
        print(f"store directory not found: {root}", file=sys.stderr)
        return 1
    checkpoint_rows = [
        [p.name, str(checkpoint_version(p)), f"{p.stat().st_size:,}"]
        for p in list_checkpoints(root / "checkpoints")
    ]
    print(
        format_table(
            ["checkpoint", "version", "bytes"],
            checkpoint_rows or [["(none)", "-", "-"]],
            title=f"Checkpoints — {root}",
        )
    )
    print()
    wal_dir = root / "wal"
    segment_rows = []
    for path in sorted(wal_dir.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")):
        scan = scan_segment(path)
        seqs = [r.seq for r in scan.records]
        span = f"{seqs[0]}..{seqs[-1]}" if seqs else "-"
        segment_rows.append(
            [
                path.name,
                str(len(scan.records)),
                span,
                "clean" if scan.clean else f"TORN ({scan.torn_bytes} bytes)",
            ]
        )
    print(
        format_table(
            ["segment", "records", "seqs", "tail"],
            segment_rows or [["(none)", "-", "-", "-"]],
            title="WAL segments",
        )
    )
    return 0


def _cmd_store_recover(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .errors import StoreError
    from .store.recovery import recover

    try:
        result = recover(args.root, attach=False)
    except StoreError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    service = result.service
    print(result.describe())
    print(f"resident sources: {service.resident_sources()}")
    transcript = Path(args.root) / TOPK_TRANSCRIPT
    if not transcript.exists():
        sources = service.resident_sources()[-5:]
        for line in _topk_lines(service, sources, args.k):
            print(line)
        if args.verify:
            print(f"nothing to verify against ({transcript} missing)", file=sys.stderr)
            return 1
        return 0
    recorded = transcript.read_text().splitlines()
    sources = list(dict.fromkeys(int(line.split()[0]) for line in recorded))
    # Serve at the transcript's own depth — a --k differing from the one
    # store-checkpoint used must not masquerade as an answer mismatch.
    k = max(int(line.split()[1]) for line in recorded) + 1
    served = _topk_lines(service, sources, k)
    for line in served:
        print(line)
    if args.verify:
        if served == recorded:
            print(f"verify: OK — {len(served)} answer rows bit-identical")
            return 0
        diffs = sum(1 for a, b in zip(served, recorded) if a != b)
        diffs += abs(len(served) - len(recorded))
        print(f"verify: MISMATCH — {diffs} row(s) differ", file=sys.stderr)
        return 1
    return 0


def _cmd_ingest_bench(args: argparse.Namespace) -> int:
    from .bench.ingest import ingest_benchmark

    if args.tiny:
        # CI smoke: one small batch size, few slides — asserts the delta
        # path beats the rebuild path with bit-identical answers, without
        # the full sweep's runtime.
        fractions: tuple[float, ...] = (0.001,)
        slides = min(args.slides, 3)
        bar = 1.0
    else:
        fractions = (0.01, 0.001, 0.0001)
        slides = args.slides
        bar = 3.0
    result = ingest_benchmark(
        args.dataset,
        batch_fractions=fractions,
        num_slides=slides,
        num_sources=args.sources,
        k=args.k,
        epsilon=args.epsilon,
        workers=args.workers,
    )
    print(result.table())
    row = result.smallest_batch_row
    ok = result.all_match and row.speedup >= bar
    print(
        f"smallest batch ({row.batch_size}): {row.speedup:.1f}x"
        f" (bar {bar:.0f}x) — answers"
        f" {'bit-identical' if result.all_match else 'MISMATCH'}"
    )
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading
    import time

    from . import chaos
    from .api.gateway import Gateway
    from .api.http import GatewayRequestHandler, make_server
    from .bench.gateway import workload_service
    from .chaos import FaultPlan
    from .cluster import ClusterGateway
    from .config import ApiConfig, ClusterConfig, ObsConfig, StoreConfig
    from .kernels import describe
    from .store.store import StateStore

    if args.kernel is not None:
        # Environment, not config: replica and shard workers inherit it,
        # so one flag selects the kernel in every process of the tier.
        import os

        os.environ["REPRO_KERNEL"] = args.kernel
    kernel_info = describe()
    if kernel_info["backend"] == "unavailable":
        print(f"kernel:   {kernel_info['reason']}", file=sys.stderr)
        return 2
    if args.shards > 0 and args.replicas > 0:
        print(
            "--shards and --replicas are different scaling tiers (write"
            " partitioning vs read replication); run one per process,"
            " stacking them is future work (see docs/sharding.md)",
            file=sys.stderr,
        )
        return 2
    if args.shards > 0 and args.hubs > 0:
        print(
            "the sharded tier does not support the hub tier"
            " (a hub vector is global state with no owning shard);"
            " drop --hubs or --shards",
            file=sys.stderr,
        )
        return 2
    service, prepared = workload_service(
        args.dataset,
        epsilon=args.epsilon,
        workers=args.workers,
        cache_capacity=args.cache,
        num_hubs=args.hubs,
        top_k=args.k,
    )
    if args.store is not None and args.shards == 0:
        store = StateStore(args.store, StoreConfig(root=args.store))
        service.attach_store(store)
        print(f"store:    {args.store} (WAL + checkpoints)")
    if args.chaos is not None:
        plan = FaultPlan.load(args.chaos)
        chaos.install(plan)
        print(f"chaos:    {plan.name or args.chaos} ({len(plan)} faults armed)")
    obs_config = ObsConfig(
        enabled=args.trace or args.trace_export is not None,
        sample_rate=args.trace_sample,
        slowlog_threshold_ms=args.slow_threshold,
        export_path=args.trace_export,
    )
    api_config = ApiConfig(host=args.host, port=args.port, obs=obs_config)
    cluster = None
    shards_gw = None
    if args.shards > 0:
        from .config import ShardConfig
        from .shard import ShardedGateway

        # Each shard persists under --store/shard-NN/ with a coordinator
        # manifest; the fault plan installed above rides the shard specs.
        shards_gw = ShardedGateway(
            service.graph,
            ShardConfig(shards=args.shards),
            api_config,
            ppr=service.config,
            serve=service.serve.with_(store=None),
            store_root=args.store,
        )
        gateway = shards_gw
        if args.store is not None:
            print(f"store:    {args.store} (per-shard WAL + checkpoints,"
                  " coordinator manifest)")
    elif args.replicas > 0:
        cluster = ClusterGateway(
            service, ClusterConfig(replicas=args.replicas), api_config
        )
        gateway = cluster
    else:
        gateway = Gateway(service, api_config)
    if args.verbose:
        GatewayRequestHandler.log_traffic = True
    server = make_server(gateway)

    # Graceful shutdown: SIGTERM (orchestrators) and SIGINT both stop
    # accepting connections, then drain in-flight work, flush/checkpoint
    # the store, and join the replicas — all bounded by --drain-timeout.
    # server.shutdown() blocks until serve_forever exits, so the handler
    # fires it from a helper thread rather than the serving main thread.
    stop_signal: list[str] = []

    def _request_stop(signum: int, _frame: object) -> None:
        if stop_signal:  # second signal: let the default disposition kill us
            signal.signal(signum, signal.SIG_DFL)
            signal.raise_signal(signum)
            return
        stop_signal.append(signal.Signals(signum).name)
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(f"workload: {prepared.describe()}")
    print(f"service:  {service}")
    print(f"kernel:   {kernel_info['backend']} ({kernel_info['reason']})")
    if cluster is not None:
        print(f"cluster:  {cluster}")
    if shards_gw is not None:
        print(f"shards:   {shards_gw}")
    print(f"listening on {server.url} "
          "(POST /v1/query /v1/ingest, GET /v1/stats /v1/healthz /v1/readyz)")
    if obs_config.enabled:
        print(f"tracing:  sampling {obs_config.sample_rate:.0%} of requests"
              f" (GET /v1/trace/<id>, GET /v1/slow)"
              + (f", spans -> {obs_config.export_path}"
                 if obs_config.export_path else ""))
    try:
        server.serve_forever()
    finally:
        deadline = time.monotonic() + args.drain_timeout
        print(f"\nshutting down ({stop_signal[0] if stop_signal else 'exit'}):"
              f" draining for up to {args.drain_timeout:.0f}s")
        server.server_close()
        admission = getattr(gateway, "admission", None)
        if admission is not None:
            while admission.depth > 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            if admission.depth:
                print(f"drain:    {admission.depth} request(s) abandoned")
        if service.store is not None and not service.store.failed:
            if service.store._batches_since_checkpoint > 0:
                service.store.checkpoint(service)
                print(f"store:    checkpointed at v{service.graph_version}")
            service.store.close()
        if cluster is not None:
            cluster.close(
                deadline_s=max(0.5, deadline - time.monotonic())
            )
        if shards_gw is not None:
            if args.store is not None and shards_gw._batches_since_checkpoint:
                from .api.requests import CheckpointNow

                result = shards_gw.submit(CheckpointNow())
                if result.error is None:
                    print(f"store:    checkpointed all shards at"
                          f" v{shards_gw._head}")
            shards_gw.close(
                deadline_s=max(0.5, deadline - time.monotonic())
            )
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 0


def _cmd_gateway_bench(args: argparse.Namespace) -> int:
    from .bench.gateway import gateway_benchmark

    if args.tiny:
        # CI smoke: a shorter trace with the same heavy-tailed shape —
        # asserts coalescing beats per-request dispatch with bit-identical
        # answers, without the full trace's runtime.
        slides, requests, sources = 2, 96, 24
    else:
        slides, requests, sources = args.slides, args.requests, args.sources
    result = gateway_benchmark(
        args.dataset,
        num_sources=sources,
        num_slides=slides,
        requests_per_slide=requests,
        k=args.k,
        epsilon=args.epsilon,
        workers=args.workers,
    )
    print(result.table())
    bar = 2.0
    ok = result.matched and result.speedup >= bar
    print(
        f"read-coalescing: {result.speedup:.1f}x over per-request dispatch"
        f" (bar {bar:.0f}x) — answers"
        f" {'bit-identical' if result.matched else 'MISMATCH'}"
    )
    return 0 if ok else 1


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    from .bench.cluster import available_cores, cluster_benchmark

    if args.tiny:
        # CI smoke: fewer replicas, a shorter trace with the same shape —
        # asserts the full replication machinery (spawn, delta shipping,
        # partitioned reads, drain) with bit-identical answers, without
        # demanding cores the runner may not have.
        replicas, slides, requests, sources = 2, 2, 96, 24
    else:
        replicas, slides, requests, sources = (
            args.replicas, args.slides, args.requests, args.sources
        )
    result = cluster_benchmark(
        args.dataset,
        replicas=replicas,
        num_sources=sources,
        num_slides=slides,
        requests_per_slide=requests,
        k=args.k,
        epsilon=args.epsilon,
        workers=args.workers,
    )
    print(result.table())
    ok = result.matched and result.bounded_ok
    bar = 2.5
    if not args.tiny and available_cores() >= replicas:
        ok = ok and result.speedup >= bar
        verdict = f"{result.speedup:.1f}x over single-process (bar {bar}x)"
    else:
        verdict = (
            f"{result.speedup:.1f}x over single-process"
            f" (bar waived: {'tiny mode' if args.tiny else 'too few cores'})"
        )
    print(
        f"replicated serving: {verdict} — answers"
        f" {'bit-identical' if result.matched else 'MISMATCH'},"
        f" contracts {'honored' if result.bounded_ok else 'VIOLATED'}"
    )
    return 0 if ok else 1


def _cmd_shard_bench(args: argparse.Namespace) -> int:
    from .bench.cluster import available_cores
    from .bench.shard import shard_benchmark

    if args.tiny:
        # CI smoke: 2 shards, short trace — the full partitioned
        # machinery (slicing, frontier exchange, merge) fires either
        # way; the memory and throughput bars need 4 shards and 4 cores
        # so they are measured but waived.
        shards, slides, requests, sources = 2, 2, 64, 24
    else:
        shards, slides, requests, sources = (
            args.shards, args.slides, args.requests, args.sources
        )
    result = shard_benchmark(
        args.dataset,
        shards=shards,
        num_sources=sources,
        num_slides=slides,
        requests_per_slide=requests,
        k=args.k,
        epsilon=args.epsilon,
        workers=args.workers,
    )
    print(result.table())
    ok = result.matched and result.bounded_ok
    mem_bar = 0.65
    if not args.tiny and shards >= 4:
        ok = ok and result.memory_ratio <= mem_bar
        mem_verdict = (
            f"{result.memory_ratio:.0%} of baseline (bar <= {mem_bar:.0%})"
        )
    else:
        mem_verdict = (
            f"{result.memory_ratio:.0%} of baseline (bar waived:"
            f" {'tiny mode' if args.tiny else 'fewer than 4 shards'})"
        )
    bar = 1.5
    if not args.tiny and available_cores() >= shards:
        ok = ok and result.ingest_speedup >= bar
        ingest_verdict = f"{result.ingest_speedup:.2f}x ingest (bar {bar}x)"
    else:
        ingest_verdict = (
            f"{result.ingest_speedup:.2f}x ingest (bar waived:"
            f" {'tiny mode' if args.tiny else 'too few cores'})"
        )
    print(
        f"sharded serving: per-shard graph {mem_verdict} —"
        f" {ingest_verdict} — answers"
        f" {'bit-identical' if result.matched else 'MISMATCH'},"
        f" contracts {'honored' if result.bounded_ok else 'VIOLATED'}"
    )
    return 0 if ok else 1


def _cmd_chaos_bench(args: argparse.Namespace) -> int:
    from .bench.chaos import chaos_benchmark

    if args.tiny:
        # CI smoke: 2 replicas, a shorter trace with the same fault
        # schedule — the full failover machinery (drop, gap-kill,
        # rebuild, primary crash, promotion, post-heal bit-identity)
        # fires either way; only the trace length shrinks.
        replicas, writes, reads, sources, probes = 2, 6, 4, 12, 4
    else:
        replicas, writes, reads, sources, probes = (
            args.replicas, args.writes, args.reads, args.sources, args.probes
        )
    result = chaos_benchmark(
        args.dataset,
        replicas=replicas,
        writes=writes,
        reads_per_write=reads,
        kill_at_write=max(2, writes // 2),
        num_sources=sources,
        probes=probes,
        k=args.k,
        epsilon=args.epsilon,
        workers=args.workers,
    )
    print(result.table())
    ok = result.passed(deadline_s=args.deadline)
    print(
        "chaos: "
        + (
            "survived — zero acked-write loss, ANY served throughout,"
            " post-heal bit-identical"
            if ok
            else "FAILED — see table above"
        )
    )
    return 0 if ok else 1


def _cmd_load_bench(args: argparse.Namespace) -> int:
    from .bench.cluster import available_cores
    from .bench.load import load_benchmark

    if args.tiny:
        # CI smoke: short runs, coarse sweep — asserts the whole pipeline
        # (trace generation, virtual-time replay, both arms, shedding
        # order) without the full sweep's runtime. The plateau bar is
        # waived: on a 1-core starved runner the saturation estimate is
        # too noisy to hold a 70% line against.
        duration_s, fractions = 1.0, (0.5, 1.0, 2.0)
    else:
        duration_s, fractions = args.duration, (0.25, 0.5, 1.0, 1.5, 2.0)
    result = load_benchmark(
        args.dataset,
        num_sources=args.sources,
        duration_s=duration_s,
        slo_ms=args.slo_ms,
        queue_capacity=args.queue,
        fractions=fractions,
        k=args.k,
        epsilon=args.epsilon,
        workers=args.workers,
        seed=args.seed,
    )
    print(result.table())
    bar = 0.7
    ok = result.any_shed_first
    shed_verdict = (
        "ANY-first" if result.any_shed_first else "PRIORITY ORDER VIOLATED"
    )
    if not args.tiny and available_cores() > 1:
        ok = ok and result.plateau_ratio >= bar
        verdict = (
            f"{result.plateau_ratio:.0%} of peak goodput retained at 2x"
            f" (bar {bar:.0%})"
        )
    else:
        verdict = (
            f"{result.plateau_ratio:.0%} of peak goodput retained at 2x"
            f" (bar waived: {'tiny mode' if args.tiny else 'too few cores'})"
        )
    print(
        f"overload behavior: {verdict} — shedding {shed_verdict},"
        f" unprotected arm {result.unprotected_at_2x:,.0f}/s"
        f" vs {result.goodput_at_2x:,.0f}/s with admission"
    )
    return 0 if ok else 1


def _cmd_obs_bench(args: argparse.Namespace) -> int:
    from .bench.cluster import available_cores
    from .bench.obs import obs_benchmark

    if args.tiny:
        # CI smoke: fewer, smaller rounds — asserts the whole measurement
        # pipeline (interleaved arms, tracer reconfiguration, best-of)
        # without the full run's time. The bar is waived: at this scale
        # round noise swamps the microsecond effect under test.
        sources, queries, rounds = 16, 128, 3
    else:
        sources, queries, rounds = 32, 512, 5
    result = obs_benchmark(
        args.dataset,
        num_sources=sources,
        queries_per_round=queries,
        rounds=rounds,
        sample_rate=args.sample,
        k=args.k,
        epsilon=args.epsilon,
        workers=args.workers,
    )
    print(result.table())
    bar = 3.0
    ok = True
    if not args.tiny and available_cores() > 1:
        ok = result.overhead_pct < bar
        verdict = f"{result.overhead_pct:+.2f}% (bar {bar:.0f}%)"
    else:
        verdict = (
            f"{result.overhead_pct:+.2f}% (bar waived:"
            f" {'tiny mode' if args.tiny else 'too few cores'})"
        )
    print(f"sampled tracing overhead: {verdict}")
    return 0 if ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs.export import export_chrome_trace, read_jsonl

    if not Path(args.input).exists():
        print(f"span sink not found: {args.input}", file=sys.stderr)
        return 1
    spans = read_jsonl(args.input)
    if args.trace_id:
        spans = [s for s in spans if s.get("trace_id") == args.trace_id]
        if not spans:
            print(f"no spans for trace {args.trace_id}", file=sys.stderr)
            return 1
    count = export_chrome_trace(spans, args.out)
    traces = len({s.get("trace_id") for s in spans})
    print(f"wrote {count} events ({traces} trace(s)) to {args.out}"
          " — load in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_kernel_bench(args: argparse.Namespace) -> int:
    from .bench.kernel import SPEEDUP_BAR, kernel_benchmark
    from .kernels import describe

    info = describe()
    print(f"kernel:   {info['backend']} ({info['reason']})")
    result = kernel_benchmark(args.dataset, tiny=args.tiny)
    print(result.table())
    if not (result.push_matched and result.certified_matched):
        return 1
    if result.compiled_available and result.speedup < SPEEDUP_BAR:
        print(
            f"speedup {result.speedup:.1f}x below the {SPEEDUP_BAR:.0f}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    result = serving_benchmark(
        args.dataset,
        num_sources=args.sources,
        num_slides=args.slides,
        queries_per_slide=args.queries,
        k=args.k,
        epsilon=args.epsilon,
        workers=args.workers,
    )
    print(result.table())
    print()
    print(result.metrics.describe())
    return 0 if result.topk_matched else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel Personalized PageRank on Dynamic Graphs (VLDB'17) CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset analogs").set_defaults(
        func=_cmd_datasets
    )

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("name", choices=sorted(_FIGURES))
    fig.add_argument("--dataset", default="youtube", choices=sorted(DATASETS))
    fig.add_argument("--slides", type=int, default=2)
    fig.set_defaults(func=_cmd_figure)

    abl = sub.add_parser("ablation", help="run one ablation study")
    abl.add_argument("name", choices=sorted(_ABLATIONS))
    abl.add_argument("--dataset", default="youtube", choices=sorted(DATASETS))
    abl.set_defaults(func=_cmd_ablation)

    track = sub.add_parser("track", help="stream a workload through a tracker")
    track.add_argument("dataset", choices=sorted(DATASETS))
    track.add_argument("--slides", type=int, default=3)
    track.add_argument("--epsilon", type=float, default=1e-5)
    track.add_argument("--workers", type=int, default=40)
    track.set_defaults(func=_cmd_track)

    serve = sub.add_parser(
        "serve-bench", help="benchmark the multi-query serving layer"
    )
    serve.add_argument("dataset", choices=sorted(DATASETS))
    serve.add_argument("--sources", type=int, default=64)
    serve.add_argument("--slides", type=int, default=4)
    serve.add_argument("--queries", type=int, default=256)
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--epsilon", type=float, default=1e-5)
    serve.add_argument("--workers", type=int, default=40)
    serve.set_defaults(func=_cmd_serve_bench)

    ingest = sub.add_parser(
        "ingest-bench",
        help="race delta-CSR snapshots against per-batch full rebuilds",
    )
    ingest.add_argument("dataset", choices=sorted(DATASETS))
    ingest.add_argument("--slides", type=int, default=5)
    ingest.add_argument("--sources", type=int, default=4)
    ingest.add_argument("--k", type=int, default=10)
    ingest.add_argument("--epsilon", type=float, default=1e-5)
    ingest.add_argument("--workers", type=int, default=40)
    ingest.add_argument(
        "--tiny",
        action="store_true",
        help="single small batch size, few slides (the CI smoke mode)",
    )
    ingest.set_defaults(func=_cmd_ingest_bench)

    serve_http = sub.add_parser(
        "serve", help="run the typed-gateway HTTP front-end"
    )
    serve_http.add_argument("dataset", choices=sorted(DATASETS))
    serve_http.add_argument("--host", default="127.0.0.1")
    serve_http.add_argument("--port", type=int, default=8707)
    serve_http.add_argument("--cache", type=int, default=64)
    serve_http.add_argument("--hubs", type=int, default=0)
    serve_http.add_argument("--k", type=int, default=10)
    serve_http.add_argument("--epsilon", type=float, default=1e-5)
    serve_http.add_argument("--workers", type=int, default=40)
    serve_http.add_argument(
        "--trace", action="store_true",
        help="sample end-to-end request traces (GET /v1/trace/<id>)",
    )
    serve_http.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="fraction of requests to trace when --trace is on (default 1.0)",
    )
    serve_http.add_argument(
        "--trace-export", default=None, metavar="PATH",
        help="append finished spans to a JSONL file (implies tracing on)",
    )
    serve_http.add_argument(
        "--slow-threshold", type=float, default=50.0, metavar="MS",
        help="slow-query log threshold in milliseconds (default 50)",
    )
    serve_http.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="serve through N replica worker processes (0 = single-process)",
    )
    serve_http.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition the graph across N shard worker processes"
        " (0 = unsharded; exclusive with --replicas)",
    )
    serve_http.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist ingest through a WAL+checkpoint store at DIR",
    )
    serve_http.add_argument(
        "--chaos", default=None, metavar="PLAN.json",
        help="arm a deterministic fault-injection plan (repro.chaos)",
    )
    serve_http.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="S",
        help="graceful-shutdown budget: drain, checkpoint, join replicas",
    )
    serve_http.add_argument(
        "--kernel",
        default=None,
        choices=("auto", "compiled", "numpy"),
        help="push-kernel selection (default: REPRO_KERNEL env, else auto);"
        " 'compiled' fails fast when no C kernel can be built",
    )
    serve_http.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_http.set_defaults(func=_cmd_serve)

    knb = sub.add_parser(
        "kernel-bench",
        help="race the compiled push kernel against the numpy oracle",
    )
    knb.add_argument(
        "--dataset",
        default="twitter",
        choices=sorted(DATASETS),
        help="dataset analog for the single-thread push race",
    )
    knb.add_argument(
        "--tiny",
        action="store_true",
        help="small graph, few rounds (the CI smoke mode)",
    )
    knb.set_defaults(func=_cmd_kernel_bench)

    clb = sub.add_parser(
        "cluster-bench",
        help="race the replicated cluster tier against the single-process gateway",
    )
    clb.add_argument("dataset", choices=sorted(DATASETS))
    clb.add_argument("--replicas", type=int, default=4)
    clb.add_argument("--slides", type=int, default=3)
    clb.add_argument("--requests", type=int, default=256, help="reads per slide")
    clb.add_argument("--sources", type=int, default=48)
    clb.add_argument("--k", type=int, default=10)
    clb.add_argument("--epsilon", type=float, default=1e-5)
    clb.add_argument("--workers", type=int, default=40)
    clb.add_argument(
        "--tiny",
        action="store_true",
        help="2 replicas, short trace, no speedup bar (the CI smoke mode)",
    )
    clb.set_defaults(func=_cmd_cluster_bench)

    shb = sub.add_parser(
        "shard-bench",
        help="race the partitioned shard tier against the single-process gateway",
    )
    shb.add_argument(
        "dataset", nargs="?", default="youtube", choices=sorted(DATASETS)
    )
    shb.add_argument("--shards", type=int, default=4)
    shb.add_argument("--slides", type=int, default=3)
    shb.add_argument("--requests", type=int, default=128, help="reads per slide")
    shb.add_argument("--sources", type=int, default=48)
    shb.add_argument("--k", type=int, default=10)
    shb.add_argument("--epsilon", type=float, default=1e-5)
    shb.add_argument("--workers", type=int, default=40)
    shb.add_argument(
        "--tiny",
        action="store_true",
        help="2 shards, short trace, memory/speedup bars waived (the CI smoke mode)",
    )
    shb.set_defaults(func=_cmd_shard_bench)

    chb = sub.add_parser(
        "chaos-bench",
        help="scripted fault plan vs the cluster: failover with zero acked-write loss",
    )
    chb.add_argument("dataset", choices=sorted(DATASETS))
    chb.add_argument("--replicas", type=int, default=3)
    chb.add_argument("--writes", type=int, default=10)
    chb.add_argument("--reads", type=int, default=6, help="ANY reads per write")
    chb.add_argument("--sources", type=int, default=24)
    chb.add_argument("--probes", type=int, default=6,
                     help="untouched sources for the post-heal oracle check")
    chb.add_argument("--k", type=int, default=10)
    chb.add_argument("--epsilon", type=float, default=1e-5)
    chb.add_argument("--workers", type=int, default=40)
    chb.add_argument("--deadline", type=float, default=5.0,
                     help="per-read hang bar in seconds")
    chb.add_argument(
        "--tiny",
        action="store_true",
        help="2 replicas, short trace, same fault schedule (the CI smoke mode)",
    )
    chb.set_defaults(func=_cmd_chaos_bench)

    gwb = sub.add_parser(
        "gateway-bench",
        help="race gateway read-coalescing against per-request dispatch",
    )
    gwb.add_argument("dataset", choices=sorted(DATASETS))
    gwb.add_argument("--slides", type=int, default=3)
    gwb.add_argument("--requests", type=int, default=256, help="reads per slide")
    gwb.add_argument("--sources", type=int, default=48)
    gwb.add_argument("--k", type=int, default=10)
    gwb.add_argument("--epsilon", type=float, default=1e-5)
    gwb.add_argument("--workers", type=int, default=40)
    gwb.add_argument(
        "--tiny",
        action="store_true",
        help="short trace, same shape (the CI smoke mode)",
    )
    gwb.set_defaults(func=_cmd_gateway_bench)

    ldb = sub.add_parser(
        "load-bench",
        help="open-loop goodput knee: admission control vs unprotected overload",
    )
    ldb.add_argument("dataset", choices=sorted(DATASETS))
    ldb.add_argument("--sources", type=int, default=48)
    ldb.add_argument(
        "--duration", type=float, default=4.0, help="seconds of traffic per rate"
    )
    ldb.add_argument(
        "--slo-ms", type=float, default=100.0, help="latency SLO (and deadline)"
    )
    ldb.add_argument(
        "--queue", type=int, default=8, help="admission queue capacity"
    )
    ldb.add_argument("--k", type=int, default=10)
    ldb.add_argument("--epsilon", type=float, default=1e-5)
    ldb.add_argument("--workers", type=int, default=40)
    ldb.add_argument("--seed", type=int, default=17)
    ldb.add_argument(
        "--tiny",
        action="store_true",
        help="short runs, coarse sweep, no plateau bar (the CI smoke mode)",
    )
    ldb.set_defaults(func=_cmd_load_bench)

    ckpt = sub.add_parser(
        "store-checkpoint",
        help="stream a workload through a persisted (WAL+checkpoint) service",
    )
    ckpt.add_argument("dataset", choices=sorted(DATASETS))
    ckpt.add_argument("--root", required=True, help="store directory")
    ckpt.add_argument("--slides", type=int, default=4)
    ckpt.add_argument("--sources", type=int, default=16)
    ckpt.add_argument("--interval", type=int, default=3, help="checkpoint every N batches")
    ckpt.add_argument("--k", type=int, default=5)
    ckpt.add_argument("--epsilon", type=float, default=1e-5)
    ckpt.add_argument("--workers", type=int, default=40)
    ckpt.set_defaults(func=_cmd_store_checkpoint)

    inspect = sub.add_parser(
        "store-inspect", help="list a store's checkpoints and WAL segments"
    )
    inspect.add_argument("--root", required=True, help="store directory")
    inspect.set_defaults(func=_cmd_store_inspect)

    recover_p = sub.add_parser(
        "store-recover", help="recover a service from a store and serve from it"
    )
    recover_p.add_argument("--root", required=True, help="store directory")
    recover_p.add_argument(
        "--k",
        type=int,
        default=5,
        help="ranking depth when no transcript exists (else the transcript's)",
    )
    recover_p.add_argument(
        "--verify",
        action="store_true",
        help="compare answers bit-for-bit against the store-checkpoint transcript",
    )
    recover_p.set_defaults(func=_cmd_store_recover)

    obsb = sub.add_parser(
        "obs-bench",
        help="measure sampled-tracing overhead on the resident-read fast path",
    )
    obsb.add_argument(
        "dataset", nargs="?", default="youtube", choices=sorted(DATASETS)
    )
    obsb.add_argument(
        "--sample", type=float, default=0.01, metavar="RATE",
        help="trace sample rate for the sampled arm (default 0.01)",
    )
    obsb.add_argument("--k", type=int, default=10)
    obsb.add_argument("--epsilon", type=float, default=1e-5)
    obsb.add_argument("--workers", type=int, default=40)
    obsb.add_argument(
        "--tiny",
        action="store_true",
        help="small interleaved rounds, no overhead bar (the CI smoke mode)",
    )
    obsb.set_defaults(func=_cmd_obs_bench)

    trace_p = sub.add_parser(
        "trace", help="work with span sinks written by serve --trace-export"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    trace_export = trace_sub.add_parser(
        "export", help="convert a span JSONL sink to Chrome trace_event JSON"
    )
    trace_export.add_argument(
        "--input", required=True, help="span JSONL sink (serve --trace-export)"
    )
    trace_export.add_argument(
        "--out", required=True, help="output Chrome trace_event JSON path"
    )
    trace_export.add_argument(
        "--trace-id", default=None, help="export only this trace's spans"
    )
    trace_export.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
