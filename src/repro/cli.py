"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the paper-dataset analogs and their scaling.
``figure <fig4..fig10> [--dataset D] [--slides N]``
    Regenerate one evaluation figure's table.
``ablation <loss|batching|frontier> [--dataset D]``
    Run one ablation study.
``track <dataset> [--slides N] [--epsilon E]``
    Stream sliding-window slides through a tracker and report per-slide
    operation counts, simulated latency, and the certified top-5.
``serve-bench <dataset> [--sources N] [--slides N] [--queries N]``
    Benchmark the multi-query serving layer (:mod:`repro.serve`) against
    per-query from-scratch recomputation; see ``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .bench.ablations import (
    ablation_batching,
    ablation_frontier_generation,
    ablation_parallel_loss,
)
from .bench.figures import (
    fig4_optimizations,
    fig5_throughput,
    fig6_epsilon,
    fig7_source_degree,
    fig8_batch_size,
    fig9_resources,
    fig10_scalability,
)
from .bench.serving import serving_benchmark
from .bench.workloads import WorkloadSpec, default_config, prepare_workload
from .config import Backend
from .core.certify import certified_top_k, convergence_report
from .core.tracker import DynamicPPRTracker
from .graph.datasets import DATASETS
from .parallel.cost_model import CPUCostModel
from .utils.tables import format_table


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            f"{spec.paper_vertices:,} / {spec.paper_edges:,}",
            f"{spec.num_vertices:,} / {spec.num_edges:,}",
            "directed" if spec.directed else "undirected",
            f"{spec.scale_factor:,.0f}x",
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            ["dataset", "paper n / m", "analog n / m", "kind", "scale"],
            rows,
            title="Paper-dataset analogs",
        )
    )
    return 0


_FIGURES = {
    "fig4": lambda a: fig4_optimizations(datasets=(a.dataset,), num_slides=a.slides),
    "fig5": lambda a: fig5_throughput(datasets=(a.dataset,), num_slides=a.slides),
    "fig6": lambda a: fig6_epsilon(dataset=a.dataset, num_slides=a.slides),
    "fig7": lambda a: fig7_source_degree(dataset=a.dataset, num_slides=a.slides),
    "fig8": lambda a: fig8_batch_size(dataset=a.dataset, num_slides=a.slides),
    "fig9": lambda a: fig9_resources(dataset=a.dataset, num_slides=a.slides),
    "fig10": lambda a: fig10_scalability(dataset=a.dataset, num_slides=a.slides),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    print(_FIGURES[args.name](args).table())
    return 0


_ABLATIONS = {
    "loss": lambda a: ablation_parallel_loss(dataset=a.dataset),
    "batching": lambda a: ablation_batching(dataset=a.dataset),
    "frontier": lambda a: ablation_frontier_generation(dataset=a.dataset),
}


def _cmd_ablation(args: argparse.Namespace) -> int:
    print(_ABLATIONS[args.name](args).table())
    return 0


def _cmd_track(args: argparse.Namespace) -> int:
    prepared = prepare_workload(WorkloadSpec(dataset=args.dataset))
    config = default_config(epsilon=args.epsilon).with_(
        backend=Backend.NUMPY, workers=args.workers
    )
    graph = prepared.initial_graph()
    tracker = DynamicPPRTracker(graph, prepared.source, config)
    model = CPUCostModel(workers=args.workers)
    print(f"workload: {prepared.describe()}")
    print(f"config:   {config.describe()}")
    window = prepared.new_window()
    for slide in window.slides(args.slides):
        batch = tracker.apply_batch(list(slide.updates))
        latency = model.parallel_latency(batch.push, num_updates=len(slide.updates))
        report = convergence_report(tracker.state, batch.push)
        print(
            f"slide {slide.step}: {len(slide.updates)} updates -> {report}"
            f" | simulated {latency * 1e3:.3f} ms"
        )
    print("\ncertified top-5:")
    for entry in certified_top_k(tracker.state, 5):
        mark = "certified" if entry.position_certified else "uncertain"
        print(f"  v{entry.vertex:<8d} {entry.estimate:.8f}  [{mark}]")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    result = serving_benchmark(
        args.dataset,
        num_sources=args.sources,
        num_slides=args.slides,
        queries_per_slide=args.queries,
        k=args.k,
        epsilon=args.epsilon,
        workers=args.workers,
    )
    print(result.table())
    print()
    print(result.metrics.describe())
    return 0 if result.topk_matched else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel Personalized PageRank on Dynamic Graphs (VLDB'17) CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset analogs").set_defaults(
        func=_cmd_datasets
    )

    fig = sub.add_parser("figure", help="regenerate one evaluation figure")
    fig.add_argument("name", choices=sorted(_FIGURES))
    fig.add_argument("--dataset", default="youtube", choices=sorted(DATASETS))
    fig.add_argument("--slides", type=int, default=2)
    fig.set_defaults(func=_cmd_figure)

    abl = sub.add_parser("ablation", help="run one ablation study")
    abl.add_argument("name", choices=sorted(_ABLATIONS))
    abl.add_argument("--dataset", default="youtube", choices=sorted(DATASETS))
    abl.set_defaults(func=_cmd_ablation)

    track = sub.add_parser("track", help="stream a workload through a tracker")
    track.add_argument("dataset", choices=sorted(DATASETS))
    track.add_argument("--slides", type=int, default=3)
    track.add_argument("--epsilon", type=float, default=1e-5)
    track.add_argument("--workers", type=int, default=40)
    track.set_defaults(func=_cmd_track)

    serve = sub.add_parser(
        "serve-bench", help="benchmark the multi-query serving layer"
    )
    serve.add_argument("dataset", choices=sorted(DATASETS))
    serve.add_argument("--sources", type=int, default=64)
    serve.add_argument("--slides", type=int, default=4)
    serve.add_argument("--queries", type=int, default=256)
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--epsilon", type=float, default=1e-5)
    serve.add_argument("--workers", type=int, default=40)
    serve.set_defaults(func=_cmd_serve_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
