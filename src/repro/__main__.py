"""CLI entry point: ``python -m repro <command>``.

Dispatches to :func:`repro.cli.main`. Available commands: ``datasets``,
``figure``, ``ablation``, ``track``, ``serve-bench``, and the durable
store trio ``store-checkpoint`` / ``store-inspect`` / ``store-recover`` —
run ``python -m repro --help`` for details, and see the README's
quickstart for example invocations.
"""

import sys

from .cli import main

sys.exit(main())
