"""The multi-query PPR serving layer (:class:`PPRService`).

This is the piece the paper's maintenance machinery exists to feed
(Section 6's who-to-follow and hub-index integrations): one maintained
dynamic graph, many personalization sources answered from maintained
state. The service owns

* one :class:`~repro.graph.digraph.DynamicDiGraph` — every stream update
  is applied to it exactly once;
* a *versioned* CSR snapshot shared by every push that version triggers
  (resident refreshes, cold admissions, hub re-convergence) — advanced
  per batch as a :class:`~repro.graph.delta.DeltaCSRGraph` overlay under
  the default :attr:`~repro.config.SnapshotStrategy.DELTA` strategy
  (O(batch) per ingest, amortized consolidation), or rebuilt lazily at
  most once per batch under ``REBUILD``;
* a :class:`~repro.serve.cache.SourceCache` of resident per-source states
  with LRU eviction;
* an :class:`~repro.serve.pool.AdmissionPool` that admits cold sources in
  batched vectorized pushes;
* optionally a :class:`~repro.core.hub_index.DynamicHubIndex` tier that is
  always resident and re-converged eagerly at ingest.

Freshness contract: under the default FRESH consistency every answer is
ε-approximate on the *latest* graph version — a lazy refresh pushes the
queried source to convergence before answering, seeded only by the
vertices updates touched since that source last converged. Per-request
BOUNDED/ANY contracts (``max_staleness``) may serve the resident state
as-is; the answer's ``snapshot_version`` reports the version it is
actually ε-approximate on. The recorded *staleness* of a query is how
many ingested updates the state was behind when the query arrived (what
the answer's age would have been had we served without refreshing).

The service is the *engine* behind the typed gateway API
(:mod:`repro.api`): the public methods here are thin compatibility
shims that build typed requests and delegate through :attr:`PPRService.gateway`,
while the ``_execute_*`` methods are the engine the gateway drives.

See ``docs/serving.md`` for the design rationale, ``docs/api.md`` for
the gateway protocol, and ``examples/serving_demo.py`` for a runnable
walkthrough.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from .. import obs
from ..config import (
    Backend,
    HubRefresh,
    PPRConfig,
    RefreshPolicy,
    ServeConfig,
    SnapshotStrategy,
)
from ..core.certify import CertifiedEntry, certified_top_k, error_bound
from ..core.hub_index import DynamicHubIndex
from ..core.invariant import restore_invariant
from ..core.push_parallel import parallel_local_push
from ..core.state import PPRState
from ..core.stats import PushStats
from ..obs import clock
from ..errors import ConfigError, VertexError
from ..graph.csr import CSRGraph
from ..graph.delta import CSRView, DeltaCSRGraph
from ..graph.digraph import DynamicDiGraph
from ..graph.stream import WindowSlide
from ..graph.update import EdgeUpdate
from .cache import ResidentSource, SourceCache
from .pool import AdmissionPool

if TYPE_CHECKING:  # repro.store / repro.api import repro.serve; keep runtime one-way
    from ..api.client import Client
    from ..api.gateway import Gateway
    from ..store.store import StateStore


@dataclass(frozen=True)
class ServedQuery:
    """One answered query: the ranking plus serving metadata."""

    source: int
    entries: list[CertifiedEntry]
    #: Graph/snapshot version the answer is ε-approximate on.
    snapshot_version: int
    #: Ingested updates the resident state was behind at query arrival
    #: (0 for cold admissions and eagerly-refreshed states).
    staleness_updates: int
    #: Whether the source had to be admitted (from-scratch push) to answer.
    cold: bool
    wall_time: float

    @property
    def vertices(self) -> list[int]:
        """Ranked vertex ids, best first."""
        return [entry.vertex for entry in self.entries]


@dataclass(frozen=True)
class ServedScore:
    """One answered point-score lookup plus serving metadata."""

    source: int
    target: int
    estimate: float
    #: Rigorous bound: |estimate - true PPR| <= error_bound.
    error_bound: float
    snapshot_version: int
    staleness_updates: int
    cold: bool
    wall_time: float


@dataclass
class ServiceMetrics:
    """Aggregate serving counters, with percentile staleness.

    Per-query samples (staleness, wall time) are kept in bounded
    buffers — once :attr:`MAX_SAMPLES` is reached the oldest half is
    dropped, so percentiles and the wall-clock query rate describe the
    recent window while the scalar counters remain lifetime totals.
    """

    #: Retained per-query samples; a long-running service must not grow
    #: its metrics memory with every query it ever answered.
    MAX_SAMPLES = 100_000

    queries: int = 0
    cold_admissions: int = 0
    admission_batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    resident: int = 0
    snapshot_rebuilds: int = 0
    snapshot_delta_applies: int = 0
    snapshot_consolidations: int = 0
    updates_ingested: int = 0
    batches_ingested: int = 0
    staleness_samples: list[int] = field(default_factory=list, repr=False)
    query_seconds: list[float] = field(default_factory=list, repr=False)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def record_query(self, staleness: int, seconds: float) -> None:
        """Count one answered query, trimming sample buffers when full."""
        self.queries += 1
        self.staleness_samples.append(staleness)
        self.query_seconds.append(seconds)
        if len(self.staleness_samples) > self.MAX_SAMPLES:
            del self.staleness_samples[: self.MAX_SAMPLES // 2]
        if len(self.query_seconds) > self.MAX_SAMPLES:
            del self.query_seconds[: self.MAX_SAMPLES // 2]

    def staleness_percentile(self, q: float) -> float:
        """The ``q``-th percentile of per-query arrival staleness.

        Returns ``0.0`` with no recorded queries — a fresh or restored
        service must report clean zeros, not NaN, on its stats surface.
        """
        if not self.staleness_samples:
            return 0.0
        return float(np.percentile(np.asarray(self.staleness_samples), q))

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of per-query wall time, in seconds."""
        if not self.query_seconds:
            return 0.0
        return float(np.percentile(np.asarray(self.query_seconds), q))

    @property
    def queries_per_second(self) -> float:
        total = sum(self.query_seconds)
        return len(self.query_seconds) / total if total > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-safe structured snapshot (the ``/v1/stats`` payload).

        Every value is a plain int/float — the sample buffers themselves
        stay private; percentiles summarize them.
        """
        return {
            "queries": self.queries,
            "queries_per_second": self.queries_per_second,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "resident": self.resident,
            "cold_admissions": self.cold_admissions,
            "admission_batches": self.admission_batches,
            "updates_ingested": self.updates_ingested,
            "batches_ingested": self.batches_ingested,
            "snapshot_rebuilds": self.snapshot_rebuilds,
            "snapshot_delta_applies": self.snapshot_delta_applies,
            "snapshot_consolidations": self.snapshot_consolidations,
            "staleness_p50": self.staleness_percentile(50),
            "staleness_p99": self.staleness_percentile(99),
            "latency_p50_s": self.latency_percentile(50),
            "latency_p99_s": self.latency_percentile(99),
            "latency_p999_s": self.latency_percentile(99.9),
        }

    def describe(self) -> str:
        """Multi-line human-readable summary (CLI / demo output)."""
        return "\n".join(
            [
                f"queries:            {self.queries}"
                f" ({self.queries_per_second:,.0f}/s wall)",
                f"cache:              {self.cache_hits} hits /"
                f" {self.cache_misses} misses ({self.hit_rate:.0%} hit rate),"
                f" {self.evictions} evictions, {self.resident} resident",
                f"cold admissions:    {self.cold_admissions}"
                f" in {self.admission_batches} batches",
                f"updates ingested:   {self.updates_ingested}"
                f" in {self.batches_ingested} batches,"
                f" {self.snapshot_rebuilds} snapshot rebuilds",
                f"delta snapshots:    {self.snapshot_delta_applies} applied,"
                f" {self.snapshot_consolidations} consolidations",
                f"staleness (updates): p50={self.staleness_percentile(50):.0f}"
                f" p99={self.staleness_percentile(99):.0f}",
            ]
        )


class PPRService:
    """Serve many concurrent PPR top-k queries from maintained state.

    Parameters
    ----------
    graph:
        The dynamic graph. The service takes ownership: all further
        mutations must flow through :meth:`ingest` so resident states and
        the hub index stay invariant-consistent.
    config:
        Push configuration shared by every resident source and hub.
        Defaults to the vectorized backend — the serving layer exists to
        batch work, which is what that backend is for.
    serve:
        Serving-layer knobs (:class:`repro.config.ServeConfig`). When
        ``serve.store`` is set, a :class:`repro.store.StateStore` is
        attached at construction (writing a baseline checkpoint) and every
        ingested batch is persisted — see ``docs/persistence.md``.
    hubs:
        Explicit hub vertex ids for the always-resident hub tier;
        overrides ``serve.num_hubs`` auto-selection.
    store:
        An explicit :class:`repro.store.StateStore` to attach (overrides
        ``serve.store``); ``None`` with no ``serve.store`` keeps the
        service purely in-memory.

    Examples
    --------
    >>> from repro.graph import DynamicDiGraph, insertions
    >>> g = DynamicDiGraph([(1, 0), (2, 0), (2, 1), (0, 2)])
    >>> service = PPRService(g)
    >>> service.query(0, k=2).vertices[0]
    0
    >>> _ = service.ingest(insertions([(1, 2)]))
    >>> service.query(0, k=2).snapshot_version
    1
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        config: PPRConfig | None = None,
        serve: ServeConfig | None = None,
        *,
        hubs: Sequence[int] | None = None,
        store: "StateStore | None" = None,
    ) -> None:
        self.config = config or PPRConfig(backend=Backend.NUMPY)
        self.serve = serve or ServeConfig()
        self.graph = graph
        self.cache = SourceCache.from_config(self.serve)
        self.pool = AdmissionPool.from_config(self.config, self.serve)
        self.hub_index: DynamicHubIndex | None = None
        if hubs is not None or self.serve.num_hubs > 0:
            self.hub_index = DynamicHubIndex(
                graph,
                hubs=hubs,
                num_hubs=max(self.serve.num_hubs, 1),
                config=self.config,
            )
        self.graph_version = 0
        self._csr: CSRView | None = None
        self._csr_version = -1
        #: Attached shared-memory bundle (shm-bootstrapped replicas only):
        #: pins the mapping for as long as this service hands out views.
        self._shm_bundle = None
        self._hub_pending: set[int] = set()
        self._metrics = ServiceMetrics()
        self._gateway: "Gateway | None" = None
        self.store: "StateStore | None" = None
        if store is None and self.serve.store is not None:
            from ..store.store import StateStore  # runtime import: no cycle

            store = StateStore.from_config(self.serve.store)
        if store is not None:
            self.attach_store(store)

    # ------------------------------------------------------------------ #
    # gateway seam
    # ------------------------------------------------------------------ #

    @property
    def gateway(self) -> "Gateway":
        """The typed request/response gateway fronting this engine.

        The single public seam of the serving layer (:mod:`repro.api`):
        the legacy convenience methods below (:meth:`query`,
        :meth:`ingest`, …) are thin shims that build typed requests and
        delegate here, so every operation — embedded or over HTTP —
        flows through one validation/scheduling path.
        """
        if self._gateway is None:
            from ..api.gateway import Gateway  # runtime import: no cycle

            self._gateway = Gateway(self)
        return self._gateway

    @property
    def api(self) -> "Client":
        """An embedded :class:`repro.api.Client` bound to this engine."""
        from ..api.client import Client  # runtime import: no cycle

        return Client(self.gateway)

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #

    def attach_store(self, store: "StateStore", *, checkpoint: bool = True) -> None:
        """Persist every future ingest through ``store``.

        By default a baseline checkpoint of the *current* state is written
        immediately, so the store can always recover without replaying
        history it never saw (the WAL only covers post-attach batches).
        """
        self.store = store
        if checkpoint:
            store.checkpoint(self)

    def detach_store(self) -> "StateStore | None":
        """Stop persisting; returns the previously attached store."""
        store, self.store = self.store, None
        return store

    @classmethod
    def restore(
        cls,
        *,
        graph: DynamicDiGraph,
        config: PPRConfig,
        serve: ServeConfig,
        residents: Sequence[ResidentSource],
        hub_index: DynamicHubIndex | None,
        graph_version: int,
        updates_ingested: int,
        batches_ingested: int,
        hub_pending: Sequence[int] = (),
    ) -> "PPRService":
        """Rebuild a service from checkpointed state, running no pushes.

        The restoration path of :mod:`repro.store`: ``residents`` are
        installed as-is in the given (LRU→MRU) order, ``hub_index`` is
        adopted without re-convergence (``hub_pending`` restores any
        deferred lazy-refresh seeds), and the version/staleness
        counters resume where the checkpoint left them. Lifetime query
        metrics (hits, admissions, …) restart at zero — they are
        observability, not state.
        """
        serve_inert = serve.with_(num_hubs=0, store=None)
        service = cls(graph, config, serve_inert)
        service.serve = serve
        service.hub_index = hub_index
        service._hub_pending = set(int(v) for v in hub_pending)
        service.graph_version = graph_version
        service._metrics.updates_ingested = updates_ingested
        service._metrics.batches_ingested = batches_ingested
        for entry in residents:
            service.cache.put(entry)
        service.cache.hits = 0
        service.cache.misses = 0
        service.cache.evictions = 0
        return service

    @classmethod
    def from_graph_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        config: PPRConfig | None = None,
        serve: ServeConfig | None = None,
        hubs: Sequence[int] | None = None,
        graph_version: int = 0,
    ) -> "PPRService":
        """Build a fresh replica of a service from order-exact graph arrays.

        The replica-bootstrap path of the cluster tier
        (:mod:`repro.cluster`): ``arrays`` come from the primary's
        :meth:`~repro.graph.digraph.DynamicDiGraph.to_arrays`, whose
        order-exact round trip guarantees the rebuilt graph's adjacency
        iteration — and therefore every CSR snapshot and vectorized push
        this service runs — is bit-identical to the primary's. The new
        service starts at ``graph_version`` with an empty resident cache;
        passing the primary's ``hubs`` rebuilds (and re-converges) the
        same hub tier.
        """
        service = cls(
            DynamicDiGraph.from_arrays(arrays), config, serve, hubs=hubs
        )
        service.graph_version = graph_version
        return service

    @classmethod
    def from_shared_snapshot(
        cls,
        descriptor: dict,
        *,
        config: PPRConfig | None = None,
        serve: ServeConfig | None = None,
        hubs: Sequence[int] | None = None,
        graph_version: int = 0,
    ) -> "PPRService":
        """Build a replica by *attaching* a published shared-memory snapshot.

        The zero-copy sibling of :meth:`from_graph_arrays`: ``descriptor``
        names a :class:`~repro.graph.shm.SharedArrayBundle` published by
        the coordinator (order-exact graph arrays, plus — when present —
        the consolidated CSR arrays of the same version). The graph is
        built *lazily* (scalars from the bundle's meta, adjacency dicts
        deferred) and the CSR is installed directly over the shared
        arrays, so bootstrap cost is independent of the graph size:
        nothing is copied until an ingest or a dict-walking code path
        actually needs the adjacency. Answers remain bit-identical to a
        :meth:`from_graph_arrays` replica — the shared CSR is the same
        order-exact consolidation a local rebuild would produce.

        The attached bundle is pinned on the service (``_shm_bundle``) so
        the mapping outlives every numpy view handed out.
        """
        from ..graph.shm import SharedArrayBundle

        bundle = SharedArrayBundle.attach(descriptor)
        arrays = bundle.arrays()
        meta = bundle.meta
        graph = DynamicDiGraph.from_arrays(
            arrays,
            lazy=True,
            num_edges=meta.get("num_edges"),
            max_vertex=meta.get("max_vertex"),
        )
        service = cls(graph, config, serve, hubs=hubs)
        service.graph_version = graph_version
        if "csr_indptr" in arrays:
            service.set_snapshot(
                CSRGraph(
                    arrays["csr_indptr"],
                    arrays["csr_indices"],
                    arrays["csr_dout"],
                )
            )
        service._shm_bundle = bundle
        return service

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #

    def _snapshot(self) -> CSRView | None:
        """The shared CSR view of the current graph version (lazy rebuild).

        Under :attr:`~repro.config.SnapshotStrategy.DELTA` the view is
        normally advanced incrementally by :meth:`ingest`
        (:meth:`_advance_snapshot`); the full rebuild here is the cold
        start and the fallback when the version chain was broken.
        """
        if self.config.backend is Backend.PURE:
            return None
        if self._csr is None or self._csr_version != self.graph_version:
            with obs.span("snapshot.rebuild", version=self.graph_version):
                csr = CSRGraph.from_digraph(self.graph)
                if self.serve.snapshot is SnapshotStrategy.DELTA:
                    self._csr = DeltaCSRGraph.wrap(csr)
                else:
                    self._csr = csr
                self._csr_version = self.graph_version
                self._metrics.snapshot_rebuilds += 1
        return self._csr

    def _advance_snapshot(self, updates: Sequence[EdgeUpdate]) -> bool:
        """Derive the new version's view from the previous one, if possible.

        The delta hot path: when the cached view covers the *previous*
        version, layer this batch's row overlay on it (O(batch), not
        O(m)) and consolidate once the overlay outgrows
        ``serve.snapshot_overlay_threshold``. Returns whether the view
        now covers the current version.
        """
        if (
            self.serve.snapshot is not SnapshotStrategy.DELTA
            or self.config.backend is Backend.PURE
            or self._csr is None
            or self._csr_version != self.graph_version - 1
        ):
            return False
        with obs.span("snapshot.advance", updates=len(updates)) as span:
            view = self._csr
            if not isinstance(view, DeltaCSRGraph):
                view = DeltaCSRGraph.wrap(view)
            view = view.apply_updates(self.graph, updates)
            if view.should_consolidate(self.serve.snapshot_overlay_threshold):
                view = view.consolidated()
                self._metrics.snapshot_consolidations += 1
                span.set(consolidated=True)
            else:
                self._metrics.snapshot_delta_applies += 1
            self._csr = view
            self._csr_version = self.graph_version
        return True

    def shared_snapshot_arrays(self) -> dict[str, np.ndarray]:
        """The current version's CSR as flat arrays for shm publication.

        A delta overlay view is consolidated first (the consolidation is
        order-exact, so a replica pushing on these arrays stays
        bit-identical to one that rebuilt its own snapshot) and the
        consolidated view is kept as this service's snapshot — the work
        is not thrown away. Returns ``{}`` under the pure backend, which
        keeps no CSR.
        """
        view = self._snapshot()
        if view is None:
            return {}
        if isinstance(view, DeltaCSRGraph):
            flat = view.consolidate()
            self._csr = (
                DeltaCSRGraph.wrap(flat)
                if self.serve.snapshot is SnapshotStrategy.DELTA
                else flat
            )
            view = flat
        return {
            "csr_indptr": view.indptr,
            "csr_indices": view.indices,
            "csr_dout": view.dout,
        }

    def set_snapshot(self, csr: CSRView) -> None:
        """Install an externally-built snapshot of the *current* version.

        The sliding-window harness builds snapshots straight from its
        window edge arrays (:meth:`repro.graph.stream.SlidingWindow.snapshot`
        or, incrementally,
        :meth:`~repro.graph.stream.SlidingWindow.delta_snapshot`);
        installing them here spares the service its own O(n + m) rebuild.
        Accepts a frozen :class:`~repro.graph.csr.CSRGraph` or a
        :class:`~repro.graph.delta.DeltaCSRGraph` overlay view.
        """
        csr.ensure_covers(self.graph.capacity)
        self._csr = csr
        self._csr_version = self.graph_version

    @property
    def snapshot_version(self) -> int:
        """Version of the currently-cached snapshot (-1 before the first)."""
        return self._csr_version

    # ------------------------------------------------------------------ #
    # ingest path
    # ------------------------------------------------------------------ #

    def ingest(
        self,
        updates: Sequence[EdgeUpdate] | WindowSlide,
        *,
        snapshot: CSRGraph | None = None,
    ) -> dict[int, PushStats]:
        """Apply one update batch (compatibility shim over the gateway).

        Builds an :class:`~repro.api.requests.IngestBatch` and delegates
        through :attr:`gateway`; see :meth:`_execute_ingest` for the
        engine semantics and durability contract. Returns the push traces
        of the pushes the ingest ran.
        """
        from ..api.requests import IngestBatch

        if isinstance(updates, WindowSlide):
            updates = list(updates.updates)
        result = self.gateway.execute(
            IngestBatch(updates=tuple(updates), snapshot=snapshot)
        )
        return dict(result.traces)

    def _execute_ingest(
        self,
        updates: Sequence[EdgeUpdate],
        *,
        snapshot: CSRGraph | None = None,
    ) -> dict[int, PushStats]:
        """Apply one update batch and restore every maintained consumer.

        The graph is mutated exactly once per update; the invariant repair
        then fans out to every resident source and every hub vector.
        Under :attr:`~repro.config.RefreshPolicy.LAZY` resident pushes are
        deferred to the next query of each source; under ``EAGER`` they
        run now, sharing one snapshot. The hub tier re-converges according
        to ``serve.hub_refresh``: eagerly here, or (``LAZY``) deferred to
        the next hub query with the touched seeds accumulated. Returns the
        push traces of the pushes that ran.

        ``snapshot`` may supply a pre-built CSR view of the graph *after*
        this batch (see :meth:`set_snapshot`).

        With a store attached, the batch is appended to the write-ahead
        log as soon as it has fully applied — before it is acknowledged
        to the caller and before any checkpoint can include it — so a
        batch the graph *rejects* (e.g. deleting an absent edge) never
        poisons the log, while every acknowledged batch is durable. A
        checkpoint may be written after the ingest completes (every
        ``StoreConfig.checkpoint_interval`` batches).
        """
        updates = list(updates)
        with obs.span("engine.ingest", updates=len(updates)):
            touched: list[int] = []
            residents = self.cache.entries()
            for update in updates:
                self.graph.apply(update)
                for entry in residents:
                    restore_invariant(
                        entry.state, self.graph, update, self.config.alpha
                    )
                if self.hub_index is not None:
                    self.hub_index.restore_applied(update)
                touched.append(update.u)
            touched_set = set(touched)
            for entry in residents:
                entry.pending_seeds.update(touched_set)
            if self.store is not None:
                self.store.log_batch(self.graph_version + 1, updates)
            self.graph_version += 1
            self._metrics.updates_ingested += len(updates)
            self._metrics.batches_ingested += 1
            if snapshot is not None:
                self.set_snapshot(snapshot)
            else:
                self._advance_snapshot(updates)

            traces: dict[int, PushStats] = {}
            if self.hub_index is not None:
                if self.serve.hub_refresh is HubRefresh.EAGER:
                    with obs.span("hub.reconverge", touched=len(touched)):
                        traces.update(
                            self.hub_index.reconverge(
                                touched, snapshot=self._snapshot()
                            )
                        )
                else:
                    self._hub_pending.update(touched_set)
            if self.serve.refresh is RefreshPolicy.EAGER:
                for entry in residents:
                    traces[entry.source] = self._refresh(entry)
            if self.store is not None:
                self.store.maybe_checkpoint(self)
            return traces

    def _refresh(self, entry: ResidentSource) -> PushStats:
        """Push one resident back to convergence on the current version."""
        with obs.span("push.refresh", source=entry.source) as span:
            stats = parallel_local_push(
                entry.state,
                self.graph,
                self.config,
                seeds=entry.pending_seeds,
                csr=self._snapshot(),
            )
            span.set(iterations=stats.num_iterations)
        entry.mark_converged(self.graph_version, self._metrics.updates_ingested)
        return stats

    # ------------------------------------------------------------------ #
    # query path
    # ------------------------------------------------------------------ #

    def query(
        self,
        source: int,
        k: int | None = None,
        *,
        max_staleness: int | None = 0,
    ) -> ServedQuery:
        """Answer one top-k query (compatibility shim over the gateway).

        Builds a :class:`~repro.api.requests.TopKQuery` at the matching
        consistency (``max_staleness=0`` → FRESH, ``s`` → BOUNDED(s),
        ``None`` → ANY) and delegates through :attr:`gateway`; see
        :meth:`_execute_query` for the engine semantics.
        """
        from ..api.requests import TopKQuery, consistency_for

        result = self.gateway.execute(
            TopKQuery(
                source=source, k=k, consistency=consistency_for(max_staleness)
            )
        )
        assert result.served is not None  # embedded execution always attaches it
        return result.served

    def _resident(
        self, source: int, max_staleness: int | None
    ) -> tuple[ResidentSource, int, bool]:
        """The resident entry serving ``source`` under a staleness contract.

        Returns ``(entry, arrival_staleness, cold)``. Cold sources are
        admitted (always fresh); resident ones are refreshed only when
        their version lag exceeds ``max_staleness`` (``None`` = never,
        the ANY contract).
        """
        entry = self.cache.get(source)
        cold = entry is None
        if entry is None:
            staleness = 0
            entry = self._admit(source)
        else:
            staleness = self._metrics.updates_ingested - entry.updates_reflected
            behind = self.graph_version - entry.version
            if behind > 0 and max_staleness is not None and behind > max_staleness:
                self._refresh(entry)
        return entry, staleness, cold

    def _execute_query(
        self,
        source: int,
        k: int | None = None,
        *,
        max_staleness: int | None = 0,
    ) -> ServedQuery:
        """Answer one top-k query, ε-fresh up to the staleness contract.

        Under the default contract (``max_staleness=0``, FRESH) the
        answer is ε-approximate on the *latest* graph version: resident
        sources are refreshed in place if stale; cold sources are
        admitted through the pool — together with any other pending
        admission requests, so their from-scratch pushes share one
        snapshot. A looser contract (BOUNDED/ANY) may serve the resident
        state as-is; the answer's ``snapshot_version`` then reports the
        version it is actually ε-approximate on.
        """
        k = self.serve.top_k if k is None else k
        start = clock.now()
        with obs.span("engine.query", source=source, k=k) as span:
            entry, staleness, cold = self._resident(source, max_staleness)
            with obs.span("topk.certify", source=source, k=k):
                answer = certified_top_k(entry.state, k)
            span.set(cold=cold, staleness=staleness)
        entry.queries += 1
        wall = clock.now() - start
        self._metrics.record_query(staleness, wall)
        return ServedQuery(
            source=source,
            entries=answer,
            snapshot_version=entry.version,
            staleness_updates=staleness,
            cold=cold,
            wall_time=wall,
        )

    def _execute_score(
        self,
        source: int,
        target: int,
        *,
        max_staleness: int | None = 0,
    ) -> ServedScore:
        """One point score: ``target``'s value in ``source``'s PPR vector.

        Same residency/consistency mechanics as :meth:`_execute_query`,
        but the answer is a single estimate with its rigorous error
        bound instead of a ranking. Unknown targets raise
        :class:`~repro.errors.VertexError` (a query cannot register a
        vertex it only *scores*; sources, as in :meth:`_execute_query`,
        are registered on demand).
        """
        start = clock.now()
        if not self.graph.has_vertex(target):
            raise VertexError(target)
        entry, staleness, cold = self._resident(source, max_staleness)
        entry.queries += 1
        wall = clock.now() - start
        self._metrics.record_query(staleness, wall)
        return ServedScore(
            source=source,
            target=target,
            estimate=entry.state.estimate(target),
            error_bound=error_bound(entry.state),
            snapshot_version=entry.version,
            staleness_updates=staleness,
            cold=cold,
            wall_time=wall,
        )

    def query_many(
        self,
        sources: Sequence[int],
        k: int | None = None,
        *,
        max_staleness: int | None = 0,
    ) -> list[ServedQuery]:
        """Answer a query batch (compatibility shim over the gateway)."""
        from ..api.requests import BatchQuery, consistency_for

        result = self.gateway.execute(
            BatchQuery(
                sources=tuple(sources),
                k=k,
                consistency=consistency_for(max_staleness),
            )
        )
        return [r.served for r in result.results]

    def _execute_query_many(
        self,
        sources: Sequence[int],
        k: int | None = None,
        *,
        max_staleness: int | None = 0,
    ) -> list[ServedQuery]:
        """Answer a batch of queries, admitting all cold sources together.

        Cold sources across the whole batch are pushed in admission-pool
        batches before any answer is produced, so one snapshot serves
        every from-scratch push; the per-query ``cold`` flag still marks
        which answers required an admission.
        """
        cold = {s for s in sources if s not in self.cache}
        for s in dict.fromkeys(sources):
            if s in cold:
                self.pool.request(s)
        if cold or self.pool.pending:
            # The drain admits *every* pending request, including earlier
            # prefetches — register all of them before snapshotting.
            with obs.span("push.admit", pending=len(self.pool.pending)):
                self._ensure_vertices(self.pool.pending)
                self._install(self.pool.drain(self.graph, self._snapshot()))
        answers = []
        for s in sources:
            answer = self._execute_query(s, k, max_staleness=max_staleness)
            if s in cold:
                # This admission answered its first query: flag it cold,
                # and reclassify the pre-installed lookup as the miss it
                # semantically was. (If the entry was already evicted by a
                # wider-than-cache cold batch, the inner query re-admitted
                # it and counted the miss itself.)
                cold.discard(s)
                if not answer.cold:
                    self.cache.hits -= 1
                    self.cache.misses += 1
                    answer = replace(answer, cold=True)
            answers.append(answer)
        return answers

    def _ensure_vertices(self, sources: Sequence[int]) -> None:
        """Register unknown source ids (new users) before admission.

        Growing the id space invalidates the cached snapshot even though
        the graph version is unchanged — its arrays are capacity-sized.
        """
        grew = False
        for s in sources:
            if not self.graph.has_vertex(s):
                self.graph.add_vertex(s)
                grew = True
        if not grew:
            return
        if (
            self._csr is not None
            and self._csr_version == self.graph_version
            and self.serve.snapshot is SnapshotStrategy.DELTA
        ):
            # Registering vertices adds no adjacency: pad the overlay's
            # dense arrays instead of invalidating the whole snapshot.
            view = self._csr
            if not isinstance(view, DeltaCSRGraph):
                view = DeltaCSRGraph.wrap(view)
            self._csr = view.with_capacity(self.graph.capacity)
        else:
            self._csr_version = -1

    def _admit(self, source: int) -> ResidentSource:
        """Admit ``source`` now, batching in other pending requests."""
        self.pool.request(source)
        batch = [source] + [s for s in self.pool.pending if s != source]
        batch = batch[: self.pool.batch_size]
        with obs.span("push.admit", source=source, batch=len(batch)):
            self._ensure_vertices(batch)
            admitted = self.pool.admit(self.graph, self._snapshot(), batch)
        # Install the queried source last (MRU) so that an admission batch
        # wider than the cache cannot evict it before it answers.
        target = admitted.pop(source)
        self._install(admitted)
        self._install({source: target})
        resident = self.cache.peek(source)
        assert resident is not None  # just installed as MRU
        return resident

    def _install(self, admitted: dict[int, PPRState]) -> None:
        for state in admitted.values():
            self.cache.put(
                ResidentSource(
                    state=state,
                    version=self.graph_version,
                    updates_reflected=self._metrics.updates_ingested,
                )
            )

    def prefetch(self, source: int) -> None:
        """Request admission of ``source`` (compatibility shim)."""
        from ..api.requests import Prefetch

        self.gateway.execute(Prefetch(sources=(source,)))

    def _execute_prefetch(self, source: int) -> None:
        """Request admission of ``source`` without answering a query.

        The from-scratch push runs with the next admission batch — either
        a later cold query's or an explicit batch-query drain.
        """
        if source not in self.cache:
            self.pool.request(source)

    # ------------------------------------------------------------------ #
    # hub tier passthrough
    # ------------------------------------------------------------------ #

    @property
    def hubs(self) -> list[int]:
        """Hub ids of the always-resident tier ([] when disabled)."""
        return self.hub_index.hubs if self.hub_index is not None else []

    @property
    def hub_pending_seeds(self) -> set[int]:
        """Seeds awaiting a deferred hub re-convergence (LAZY hub refresh)."""
        return set(self._hub_pending)

    def _flush_hubs(self) -> dict[int, PushStats]:
        """Run any deferred hub re-convergence (LAZY ``hub_refresh``).

        Ingest restored every hub invariant already, so pushing from the
        accumulated touched seeds brings each hub vector to the same
        ε-converged state an eager refresh would have reached.
        """
        if self.hub_index is None or not self._hub_pending:
            return {}
        seeds = sorted(self._hub_pending)
        self._hub_pending.clear()
        return self.hub_index.reconverge(seeds, snapshot=self._snapshot())

    def hub_scores(self, v: int) -> dict[int, float]:
        """``v``'s contribution to every hub (requires the hub tier)."""
        if self.hub_index is None:
            raise ConfigError("hub tier disabled: set ServeConfig.num_hubs > 0")
        self._flush_hubs()
        return self.hub_index.hub_scores(v)

    def rank_for_hub(self, hub: int, k: int) -> list[CertifiedEntry]:
        """Certified top-k contributors of ``hub`` (compatibility shim)."""
        from ..api.requests import HubQuery

        result = self.gateway.execute(HubQuery(hub=hub, k=k))
        return list(result.entries)

    def _execute_rank_for_hub(self, hub: int, k: int | None) -> list[CertifiedEntry]:
        """Certified top-k contributors of ``hub`` (requires the hub tier)."""
        if self.hub_index is None:
            raise ConfigError("hub tier disabled: set ServeConfig.num_hubs > 0")
        self._flush_hubs()
        return self.hub_index.rank_for_hub(hub, self.serve.top_k if k is None else k)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def is_resident(self, source: int) -> bool:
        return source in self.cache

    def resident_sources(self) -> list[int]:
        """Resident source ids, least recently queried first."""
        return self.cache.sources()

    def metrics(self) -> ServiceMetrics:
        """A snapshot of the aggregate serving counters."""
        self._metrics.cache_hits = self.cache.hits
        self._metrics.cache_misses = self.cache.misses
        self._metrics.evictions = self.cache.evictions
        self._metrics.resident = len(self.cache)
        self._metrics.cold_admissions = self.pool.admissions
        self._metrics.admission_batches = self.pool.batches
        return self._metrics

    def __repr__(self) -> str:
        return (
            f"PPRService(resident={len(self.cache)}/{self.cache.capacity},"
            f" version={self.graph_version}, n={self.graph.num_vertices},"
            f" m={self.graph.num_edges}, hubs={len(self.hubs)})"
        )
