"""Multi-query PPR serving layer atop maintained dynamic-PPR state.

The paper's maintenance machinery only pays off when many queries are
served from the maintained state (Section 6). This package is that layer:

* :class:`~repro.serve.service.PPRService` — one dynamic graph, versioned
  CSR snapshots, many sources served ε-fresh;
* :class:`~repro.serve.cache.SourceCache` — LRU pool of resident
  per-source states;
* :class:`~repro.serve.pool.AdmissionPool` — batched from-scratch pushes
  admitting cold sources.

Run ``python -m repro serve-bench <dataset>`` for the serving benchmark,
and see ``docs/serving.md`` for the design.
"""

from .cache import ResidentSource, SourceCache
from .pool import AdmissionPool
from .service import PPRService, ServedQuery, ServedScore, ServiceMetrics

__all__ = [
    "AdmissionPool",
    "PPRService",
    "ResidentSource",
    "ServedQuery",
    "ServedScore",
    "ServiceMetrics",
    "SourceCache",
]
