"""Batched admission of cold sources into the serving pool.

A cold query (source not resident in the :class:`~repro.serve.cache.SourceCache`)
needs a from-scratch push — the expensive operation the serving layer
exists to avoid repeating. :class:`AdmissionPool` makes that cost
batch-shaped: cold sources queue up and are admitted
``admission_batch`` at a time, every push in the batch running the
vectorized engine against *one shared CSR snapshot*. On the paper's
workloads the snapshot build is a significant fraction of a single
from-scratch push, so batching amortizes it to near zero per source
(the same trick :class:`~repro.core.hub_index.DynamicHubIndex` uses for
its hub vectors).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..config import PPRConfig, ServeConfig
from ..core.push_parallel import parallel_local_push
from ..core.state import PPRState
from ..core.stats import PushStats
from ..graph.delta import CSRView
from ..graph.digraph import DynamicDiGraph


class AdmissionPool:
    """Queue cold sources and admit them via batched from-scratch pushes.

    Parameters
    ----------
    config:
        Push configuration shared by every admission (the serving layer
        passes its own, so admitted states match resident ones).
    batch_size:
        Maximum sources admitted per :meth:`admit` batch; requests beyond
        it stay queued for the next batch.
    """

    def __init__(self, config: PPRConfig, batch_size: int = 8) -> None:
        self.config = config
        self.batch_size = max(1, batch_size)
        self._pending: list[int] = []
        self.admissions = 0
        self.batches = 0
        self.push_stats = PushStats()

    @classmethod
    def from_config(cls, ppr: PPRConfig, serve: ServeConfig) -> "AdmissionPool":
        return cls(ppr, batch_size=serve.admission_batch)

    # ------------------------------------------------------------------ #
    # queueing
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> list[int]:
        """Sources queued but not yet admitted (FIFO order)."""
        return list(self._pending)

    def request(self, source: int) -> None:
        """Queue ``source`` for admission (idempotent while pending)."""
        if source not in self._pending:
            self._pending.append(source)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def admit(
        self,
        graph: DynamicDiGraph,
        snapshot: CSRView | None,
        sources: Sequence[int] | None = None,
    ) -> dict[int, PPRState]:
        """Push the given (or all pending) cold sources from scratch.

        Every push in the batch shares ``snapshot`` (a CSR view of
        ``graph``; ``None`` only for the pure backend). Returns the
        freshly-converged state per source; admitted sources are removed
        from the pending queue.
        """
        batch = list(sources) if sources is not None else self._pending[: self.batch_size]
        admitted: dict[int, PPRState] = {}
        for source in batch:
            if not graph.has_vertex(source):
                graph.add_vertex(source)
        if snapshot is not None:
            snapshot.ensure_covers(graph.capacity)
        for source in batch:
            state = PPRState.initial(source, graph.capacity)
            stats = parallel_local_push(
                state, graph, self.config, seeds=[source], csr=snapshot
            )
            self.push_stats.merge(stats)
            admitted[source] = state
            self.admissions += 1
            if source in self._pending:
                self._pending.remove(source)
        if admitted:
            self.batches += 1
        return admitted

    def drain(
        self, graph: DynamicDiGraph, snapshot: CSRView | None
    ) -> dict[int, PPRState]:
        """Admit *everything* pending, in as many batches as needed."""
        admitted: dict[int, PPRState] = {}
        while self._pending:
            admitted.update(self.admit(graph, snapshot))
        return admitted

    def __repr__(self) -> str:
        return (
            f"AdmissionPool(pending={len(self._pending)},"
            f" admitted={self.admissions}, batches={self.batches})"
        )
