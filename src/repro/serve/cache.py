"""LRU pool of resident per-source PPR states.

The serving layer keeps one maintained :class:`~repro.core.state.PPRState`
per *resident* source — the working set of the query mix. Residency is
bounded by :attr:`repro.config.ServeConfig.cache_capacity`; admitting a
cold source past capacity evicts the least-recently-queried resident
(classic LRU, the policy who-to-follow style workloads reward because
query popularity is heavy-tailed).

Each resident carries maintenance bookkeeping alongside its state: the
snapshot version it was last converged at, the seed vertices touched by
updates since then (the push frontier a lazy refresh starts from), and
usage counters feeding :class:`repro.serve.service.ServiceMetrics`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..config import ServeConfig
from ..core.state import PPRState
from ..errors import ConfigError


@dataclass
class ResidentSource:
    """One cached source: its PPR state plus maintenance bookkeeping."""

    state: PPRState
    #: Snapshot version the state was last pushed to convergence at.
    version: int
    #: Count of ingested updates reflected at that convergence (staleness
    #: is measured against the service's running total).
    updates_reflected: int
    #: Vertices whose residual changed since the last push — the seeds of
    #: the next lazy refresh. A set: bounded by the distinct vertices
    #: touched, however many updates accumulate between pushes.
    pending_seeds: set[int] = field(default_factory=set)
    queries: int = 0

    @property
    def source(self) -> int:
        return self.state.source

    def mark_converged(self, version: int, updates_reflected: int) -> None:
        """Record a completed push: state is ε-fresh as of ``version``."""
        self.version = version
        self.updates_reflected = updates_reflected
        self.pending_seeds.clear()


class SourceCache:
    """LRU-evicting map from source vertex to :class:`ResidentSource`.

    ``get`` is a *use*: it moves the entry to the most-recently-used
    position. Iteration (:meth:`entries`, :meth:`sources`) is in eviction
    order — least recently used first — and does not perturb recency.

    Examples
    --------
    >>> from repro.core.state import PPRState
    >>> cache = SourceCache(capacity=2)
    >>> for s in (1, 2):
    ...     _ = cache.put(ResidentSource(PPRState.initial(s), 0, 0))
    >>> cache.get(1).source        # 1 becomes most-recently-used
    1
    >>> [e.source for e in cache.put(ResidentSource(PPRState.initial(3), 0, 0))]
    [2]
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[int, ResidentSource]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def from_config(cls, config: ServeConfig) -> "SourceCache":
        return cls(config.cache_capacity)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def get(self, source: int) -> ResidentSource | None:
        """The resident entry for ``source`` (marking it used), or None."""
        entry = self._entries.get(source)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(source)
        self.hits += 1
        return entry

    def peek(self, source: int) -> ResidentSource | None:
        """Lookup without touching recency or hit/miss counters."""
        return self._entries.get(source)

    def __contains__(self, source: int) -> bool:
        return source in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # admission / eviction
    # ------------------------------------------------------------------ #

    def put(self, entry: ResidentSource) -> list[ResidentSource]:
        """Admit ``entry`` as most-recently-used; return any evictees.

        Re-admitting a resident source replaces its entry in place (and
        marks it used). At most one entry is evicted per call, but the
        return type is a list so callers can treat it uniformly.
        """
        source = entry.source
        if source in self._entries:
            self._entries[source] = entry
            self._entries.move_to_end(source)
            return []
        evicted: list[ResidentSource] = []
        while len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
            self.evictions += 1
            evicted.append(victim)
        self._entries[source] = entry
        return evicted

    def evict(self, source: int) -> ResidentSource | None:
        """Explicitly drop one resident (None when not resident)."""
        entry = self._entries.pop(source, None)
        if entry is not None:
            self.evictions += 1
        return entry

    # ------------------------------------------------------------------ #
    # iteration (LRU -> MRU, recency-preserving)
    # ------------------------------------------------------------------ #

    def sources(self) -> list[int]:
        """Resident source ids, least recently used first."""
        return list(self._entries)

    def entries(self) -> list[ResidentSource]:
        """Resident entries, least recently used first."""
        return list(self._entries.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"SourceCache(resident={len(self._entries)}/{self.capacity},"
            f" hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
